#!/usr/bin/env bash
# Shard-tier gates: runs the shard bench, which ingests a fixture video
# into both a monolithic store and a sharded set, asserts bit-identical
# results across scan / monolithic / sharded paths, and prints attach
# and ingest timings. This script gates the numbers:
#
#   (a) sharded recall@10 == monolithic recall@10 (exhaustive probe)
#   (b) cold sharded attach <= $SKETCHQL_SHARD_ATTACH_FRAC_MAX of the
#       monolithic full-load time (default 0.10)
#   (c) parallel ingest >= $SKETCHQL_SHARD_INGEST_SPEEDUP_MIN x the
#       single-thread ingest (default 2) — enforced only when the
#       machine has >= 2 CPUs; on a single-CPU host a parallel pool
#       cannot beat one worker, so the gate degrades to a no-regression
#       check (multi <= single / $SKETCHQL_SHARD_INGEST_NOREG, default
#       0.8, i.e. at most 25% slower than serial).
#
# Writes BENCH_shard.json.
#
#   scripts/bench_shard.sh                              # full samples
#   SKETCHQL_BENCH_QUICK=1 scripts/bench_shard.sh       # fast smoke run
set -euo pipefail
cd "$(dirname "$0")/.."

ATTACH_FRAC_MAX="${SKETCHQL_SHARD_ATTACH_FRAC_MAX:-0.10}"
INGEST_SPEEDUP_MIN="${SKETCHQL_SHARD_INGEST_SPEEDUP_MIN:-2}"
INGEST_NOREG="${SKETCHQL_SHARD_INGEST_NOREG:-0.8}"
OUT_JSON="${SKETCHQL_SHARD_BENCH_JSON:-BENCH_shard.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

echo "== shard bench (cold attach, parallel ingest, recall parity)"
cargo bench -p sketchql-bench --bench shard -- shard_attach | tee "$log"

echo
awk -v fracmax="$ATTACH_FRAC_MAX" -v speedmin="$INGEST_SPEEDUP_MIN" \
    -v noreg="$INGEST_NOREG" -v out="$OUT_JSON" \
    -v quick="${SKETCHQL_BENCH_QUICK:-0}" '
    /^BENCH shard_attach\// && /median_ns=/ {
        id = $2
        sub(/^shard_attach\//, "", id)
        for (i = 3; i <= NF; i++)
            if ($i ~ /^median_ns=/) { sub(/^median_ns=/, "", $i); med[id] = $i }
    }
    /^SHARD shard_recall/ {
        for (i = 3; i <= NF; i++) {
            if ($i ~ /^sharded_recall_at_10=/)    { sub(/^sharded_recall_at_10=/, "", $i); srec = $i }
            if ($i ~ /^monolithic_recall_at_10=/) { sub(/^monolithic_recall_at_10=/, "", $i); mrec = $i }
            if ($i ~ /^shards=/)                  { sub(/^shards=/, "", $i); shards = $i }
        }
    }
    /^SHARD shard_ingest/ {
        for (i = 3; i <= NF; i++) {
            if ($i ~ /^single_thread_ns=/) { sub(/^single_thread_ns=/, "", $i); single = $i }
            if ($i ~ /^multi_thread_ns=/)  { sub(/^multi_thread_ns=/, "", $i); multi = $i }
            if ($i ~ /^cpus=/)             { sub(/^cpus=/, "", $i); cpus = $i }
        }
    }
    END {
        if (!("attach_sharded" in med) || !("full_load_monolithic" in med) || med["full_load_monolithic"] <= 0) {
            print "missing shard_attach/{attach_sharded,full_load_monolithic} medians"
            exit 2
        }
        if (srec == "" || mrec == "") { print "missing SHARD shard_recall line"; exit 2 }
        if (single == "" || multi == "" || multi <= 0) { print "missing SHARD shard_ingest line"; exit 2 }
        frac = med["attach_sharded"] / med["full_load_monolithic"]
        ingest_speedup = single / multi
        printf "attach (sharded, cold): %.2f ms\n", med["attach_sharded"] / 1e6
        printf "full load (monolithic): %.2f ms\n", med["full_load_monolithic"] / 1e6
        printf "attach fraction: %.4f (bar: <=%s)\n", frac, fracmax
        printf "recall@10: sharded %.3f vs monolithic %.3f over %s shards (bar: equal)\n", srec, mrec, shards
        if (cpus + 0 >= 2)
            printf "ingest speedup: %.2fx on %s cpus (bar: >=%sx)\n", ingest_speedup, cpus, speedmin
        else
            printf "ingest speedup: %.2fx on %s cpu (single-CPU host; bar: >=%s no-regression)\n", ingest_speedup, cpus, noreg
        printf "{\n" \
               "  \"bench\": \"shard\",\n" \
               "  \"quick\": %s,\n" \
               "  \"attach_sharded_ns\": %.0f,\n" \
               "  \"full_load_monolithic_ns\": %.0f,\n" \
               "  \"attach_fraction\": %.5f,\n" \
               "  \"max_attach_fraction\": %s,\n" \
               "  \"sharded_recall_at_10\": %s,\n" \
               "  \"monolithic_recall_at_10\": %s,\n" \
               "  \"ingest_single_thread_ns\": %.0f,\n" \
               "  \"ingest_multi_thread_ns\": %.0f,\n" \
               "  \"ingest_speedup\": %.3f,\n" \
               "  \"cpus\": %s\n" \
               "}\n", (quick != 0) ? "true" : "false", \
               med["attach_sharded"], med["full_load_monolithic"], frac, fracmax, \
               srec, mrec, single, multi, ingest_speedup, cpus > out
        printf "wrote %s\n", out
        ok_recall = (srec + 0.0 == mrec + 0.0)
        ok_attach = (frac <= fracmax + 0.0)
        if (cpus + 0 >= 2)
            ok_ingest = (ingest_speedup >= speedmin + 0.0)
        else
            ok_ingest = (ingest_speedup >= noreg + 0.0)
        if (!ok_recall) print "FAIL: sharded recall != monolithic recall"
        if (!ok_attach) print "FAIL: sharded attach exceeds the fraction bar"
        if (!ok_ingest) print "FAIL: parallel ingest too slow"
        exit (ok_recall && ok_attach && ok_ingest) ? 0 : 1
    }
' "$log"
