//! Property-based tests for assignment optimality, Kalman sanity, and
//! tracker robustness under arbitrary detection streams.

use proptest::prelude::*;
use sketchql_tracker::{hungarian, track_detections, Detection, KalmanBoxTracker, TrackerConfig};
use sketchql_trajectory::{BBox, ObjectClass};

fn arb_cost(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(0.0f32..10.0, m), n)
}

fn arb_detection() -> impl Strategy<Value = Detection> {
    (
        0.0f32..1280.0,
        0.0f32..720.0,
        5.0f32..120.0,
        5.0f32..120.0,
        0.05f32..1.0,
        prop::bool::ANY,
    )
        .prop_map(|(cx, cy, w, h, score, car)| Detection {
            bbox: BBox::new(cx, cy, w, h),
            class: if car {
                ObjectClass::Car
            } else {
                ObjectClass::Person
            },
            score,
        })
}

proptest! {
    #[test]
    fn hungarian_never_exceeds_identity_assignment(cost in arb_cost(5, 5)) {
        let (pairs, _, _) = hungarian::assign(&cost, f32::INFINITY);
        let ours: f32 = pairs.iter().map(|&(r, c)| cost[r][c]).sum();
        let identity: f32 = (0..5).map(|i| cost[i][i]).sum();
        prop_assert!(ours <= identity + 1e-3, "{ours} > identity {identity}");
    }

    #[test]
    fn hungarian_assignment_is_a_matching(cost in arb_cost(4, 7)) {
        let (pairs, unmatched_rows, unmatched_cols) = hungarian::assign(&cost, f32::INFINITY);
        let rows: std::collections::HashSet<_> = pairs.iter().map(|p| p.0).collect();
        let cols: std::collections::HashSet<_> = pairs.iter().map(|p| p.1).collect();
        prop_assert_eq!(rows.len(), pairs.len(), "duplicate rows");
        prop_assert_eq!(cols.len(), pairs.len(), "duplicate cols");
        prop_assert_eq!(pairs.len() + unmatched_rows.len(), 4);
        prop_assert_eq!(pairs.len() + unmatched_cols.len(), 7);
    }

    #[test]
    fn hungarian_max_cost_is_respected(cost in arb_cost(4, 4), thresh in 0.0f32..10.0) {
        let (pairs, _, _) = hungarian::assign(&cost, thresh);
        for &(r, c) in &pairs {
            prop_assert!(cost[r][c] <= thresh);
        }
    }

    #[test]
    fn kalman_stays_finite_under_random_measurements(
        boxes in prop::collection::vec((0.0f32..1000.0, 0.0f32..1000.0, 1.0f32..200.0, 1.0f32..200.0), 1..40)
    ) {
        let first = BBox::new(boxes[0].0, boxes[0].1, boxes[0].2, boxes[0].3);
        let mut kf = KalmanBoxTracker::new(&first);
        for &(cx, cy, w, h) in &boxes[1..] {
            kf.predict();
            kf.update(&BBox::new(cx, cy, w, h));
            let b = kf.bbox();
            prop_assert!(b.cx.is_finite() && b.cy.is_finite() && b.w.is_finite() && b.h.is_finite());
            prop_assert!(b.w >= 0.0 && b.h >= 0.0);
        }
    }

    #[test]
    fn kalman_update_moves_toward_measurement(
        start_x in 0.0f32..500.0,
        target_x in 0.0f32..500.0,
    ) {
        prop_assume!((start_x - target_x).abs() > 1.0);
        let mut kf = KalmanBoxTracker::new(&BBox::new(start_x, 100.0, 40.0, 20.0));
        kf.predict();
        kf.update(&BBox::new(target_x, 100.0, 40.0, 20.0));
        let after = kf.bbox().cx;
        // Strictly between prior and measurement.
        let lo = start_x.min(target_x) - 1e-3;
        let hi = start_x.max(target_x) + 1e-3;
        prop_assert!((lo..=hi).contains(&after), "estimate {after} outside [{lo}, {hi}]");
        prop_assert!((after - target_x).abs() < (start_x - target_x).abs());
    }

    #[test]
    fn tracker_never_panics_and_outputs_are_wellformed(
        frames in prop::collection::vec(prop::collection::vec(arb_detection(), 0..6), 1..60)
    ) {
        let tracks = track_detections(&frames, TrackerConfig::default(), 1);
        let mut seen_ids = std::collections::HashSet::new();
        for t in &tracks {
            prop_assert!(seen_ids.insert(t.id), "duplicate track id {}", t.id);
            prop_assert!(!t.is_empty());
            // Strictly increasing frames within a track.
            let fs: Vec<u32> = t.points().iter().map(|p| p.frame).collect();
            prop_assert!(fs.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(*fs.last().unwrap() < frames.len() as u32);
        }
    }

    #[test]
    fn tracker_track_count_bounded_by_high_conf_detections(
        frames in prop::collection::vec(prop::collection::vec(arb_detection(), 0..5), 1..40)
    ) {
        let cfg = TrackerConfig::default();
        let tracks = track_detections(&frames, cfg, 1);
        let high_dets: usize = frames
            .iter()
            .flatten()
            .filter(|d| d.score >= cfg.init_thresh)
            .count();
        prop_assert!(tracks.len() <= high_dets, "{} tracks from {high_dets} inits", tracks.len());
    }
}
