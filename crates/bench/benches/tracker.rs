//! T5 — preprocessing throughput: detector simulation + ByteTrack tracking
//! per video length, plus the Hungarian-assignment microbenchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketchql_bench::bench_video;
use sketchql_bench::harness::Harness;
use sketchql_tracker::{hungarian, track_detections, DetectorConfig, DetectorSim, TrackerConfig};
use std::hint::black_box;

fn bench_tracker(h: &mut Harness) {
    let mut group = h.group("preprocess");
    group.sample_size(10);
    for events_per_kind in [1usize, 2] {
        let video = bench_video(events_per_kind, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let sim = DetectorSim::new(DetectorConfig::default());
        let det_frames = sim.detect_clip(&video.truth, video.frames, &mut rng);
        group.bench(format!("bytetrack/{}", video.frames), |b| {
            b.iter(|| black_box(track_detections(&det_frames, TrackerConfig::default(), 8)))
        });
        group.bench(format!("detector_sim/{}", video.frames), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                black_box(sim.detect_clip(&video.truth, video.frames, &mut rng))
            })
        });
    }
    group.finish();

    let mut group = h.group("hungarian");
    for n in [4usize, 16, 48] {
        let mut rng = StdRng::seed_from_u64(3);
        let cost: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        group.bench(n, |b| {
            b.iter(|| black_box(hungarian::assign(&cost, f32::INFINITY)))
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_tracker(&mut h);
}
