//! Index-backed search correctness: the store path must report
//! bit-identical scores to the full scan, recall everything when the
//! probe is exhaustive, and fall back whenever the store cannot serve
//! the query.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::cancel::CancelToken;
use sketchql::matcher::{Matcher, MatcherConfig};
use sketchql::similarity::LearnedSimilarity;
use sketchql::training::{train, TrainingConfig};
use sketchql::vstore::{index_fingerprint, ingest, model_fingerprint, IngestConfig};
use sketchql::VideoIndex;
use sketchql_datasets::{generate_video, query_clip, EventKind, SceneFamily, VideoConfig};

fn tiny_model() -> sketchql::training::TrainedModel {
    let mut cfg = TrainingConfig::tiny();
    cfg.steps = 8;
    train(cfg)
}

fn test_index(seed: u64) -> VideoIndex {
    let cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind: 1,
        distractors: 2,
        fps: 30.0,
    };
    VideoIndex::from_truth(&generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed)))
}

fn matcher(model: &sketchql::training::TrainedModel) -> Matcher<LearnedSimilarity> {
    Matcher::with_config(model.similarity(), MatcherConfig::default())
}

/// Single-object query kinds (multi-object queries always fall back).
const SINGLE_OBJECT: &[EventKind] = &[
    EventKind::LeftTurn,
    EventKind::StopAndGo,
    EventKind::LaneChange,
];

#[test]
fn exhaustive_probe_matches_full_scan_exactly() {
    let model = tiny_model();
    let index = test_index(11);
    let m = matcher(&model);
    let spans: Vec<u32> = SINGLE_OBJECT
        .iter()
        .map(|&k| query_clip(k).span())
        .collect();
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &spans);
    let mut store = ingest(&m.sim, &index, "v", &ingest_cfg);
    assert!(!store.store.is_empty(), "ingest produced no vectors");
    // Probe every list: the candidate set is the whole store, so the
    // result must be byte-identical to the scan, not merely high-recall.
    store.nprobe = store.nlist();

    for &kind in SINGLE_OBJECT {
        let query = query_clip(kind);
        let scan = m.search(&index, &query).unwrap();
        let via_store = m
            .search_with_store(&index, &store, &query, &CancelToken::none())
            .unwrap();
        assert!(via_store.from_store, "{kind:?} unexpectedly fell back");
        assert!(via_store.probed > 0);
        assert_eq!(
            via_store.moments, scan,
            "{kind:?}: store path diverged from full scan"
        );
        // Scores must match at the bit level, not approximately.
        for (a, b) in via_store.moments.iter().zip(&scan) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
}

#[test]
fn narrow_probe_scores_are_still_bit_identical() {
    let model = tiny_model();
    let index = test_index(12);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let mut store = ingest(&m.sim, &index, "v", &ingest_cfg);
    store.nprobe = 1;

    let scan = m.search(&index, &query).unwrap();
    let via_store = m
        .search_with_store(&index, &store, &query, &CancelToken::none())
        .unwrap();
    assert!(via_store.from_store);
    // A narrow probe may omit moments, but anything it reports must carry
    // the exact scan score for that (window, track) pair.
    for a in &via_store.moments {
        if let Some(b) = scan
            .iter()
            .find(|b| (b.start, b.end, &b.track_ids) == (a.start, a.end, &a.track_ids))
        {
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "score drifted: {a:?}");
        }
    }
}

#[test]
fn model_mismatch_falls_back_to_scan() {
    let model = tiny_model();
    let index = test_index(13);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let store = ingest(&m.sim, &index, "v", &ingest_cfg);

    // A model trained two more steps embeds differently; its fingerprint
    // must differ and the store must refuse to serve it.
    let mut cfg2 = TrainingConfig::tiny();
    cfg2.steps = 10;
    let other = train(cfg2);
    let m2 = matcher(&other);
    assert_ne!(model_fingerprint(&m.sim), model_fingerprint(&m2.sim));
    let r = m2
        .search_with_store(&index, &store, &query, &CancelToken::none())
        .unwrap();
    assert!(!r.from_store, "mismatched model must fall back");
    assert_eq!(r.moments, m2.search(&index, &query).unwrap());
}

#[test]
fn index_mismatch_and_config_mismatch_fall_back() {
    let model = tiny_model();
    let index = test_index(14);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let store = ingest(&m.sim, &index, "v", &ingest_cfg);

    // Different video contents → different index fingerprint → fallback.
    let other_index = test_index(15);
    assert_ne!(index_fingerprint(&index), index_fingerprint(&other_index));
    let r = m
        .search_with_store(&other_index, &store, &query, &CancelToken::none())
        .unwrap();
    assert!(!r.from_store);

    // A matcher with a different stride cannot reuse the store's grid.
    let mut strided = matcher(&model);
    strided.config.stride_frac = 0.5;
    let r = strided
        .search_with_store(&index, &store, &query, &CancelToken::none())
        .unwrap();
    assert!(!r.from_store);

    // A query span whose window lengths were never ingested → fallback.
    let unseen = query_clip(EventKind::UTurn);
    if IngestConfig::from_matcher(&m.config, &[unseen.span()]).window_lens != ingest_cfg.window_lens
    {
        let r = m
            .search_with_store(&index, &store, &unseen, &CancelToken::none())
            .unwrap();
        assert!(!r.from_store);
    }
}

#[test]
fn multi_object_query_falls_back() {
    let model = tiny_model();
    let index = test_index(16);
    let m = matcher(&model);
    let query = query_clip(EventKind::PerpendicularCrossing);
    assert!(query.num_objects() > 1);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let store = ingest(&m.sim, &index, "v", &ingest_cfg);
    let r = m
        .search_with_store(&index, &store, &query, &CancelToken::none())
        .unwrap();
    assert!(!r.from_store, "multi-object queries must fall back");
    assert_eq!(r.moments, m.search(&index, &query).unwrap());
}

#[test]
fn store_round_trips_through_disk_and_still_matches_scan() {
    let model = tiny_model();
    let index = test_index(17);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let built = ingest(&m.sim, &index, "disk", &ingest_cfg);

    let dir = std::env::temp_dir().join(format!("skql-vstore-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("disk.skstore");
    built.save(&path).unwrap();
    let mut loaded = sketchql::vstore::DatasetStore::open(&path).unwrap();
    assert_eq!(loaded.dataset(), "disk");
    loaded.nprobe = loaded.nlist();

    let scan = m.search(&index, &query).unwrap();
    let r = m
        .search_with_store(&index, &loaded, &query, &CancelToken::none())
        .unwrap();
    assert!(r.from_store);
    assert_eq!(r.moments, scan, "reloaded store diverged from scan");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancelled_store_search_reports_cancelled() {
    let model = tiny_model();
    let index = test_index(18);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let store = ingest(&m.sim, &index, "v", &ingest_cfg);
    let cancel = CancelToken::new();
    cancel.cancel();
    let err = m
        .search_with_store(&index, &store, &query, &cancel)
        .unwrap_err();
    assert!(matches!(
        err,
        sketchql::matcher::MatchError::Cancelled(sketchql::cancel::CancelReason::Cancelled)
    ));
}
