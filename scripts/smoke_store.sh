#!/usr/bin/env bash
# End-to-end CLI smoke for the persistent embedding store: generate a
# video, train a throwaway model, `ingest` the video into a store
# directory, then restart from disk with `serve --store-dir` and verify
# over the wire that the dataset is index-backed (store hits in stats,
# "store" in the listing) and that queries answer. This proves the
# ingest → restart → serve round trip needs no re-embedding at startup.
#
#   scripts/smoke_store.sh                      # uses target/release
#   SKETCHQL_CLI=target/debug/sketchql-cli scripts/smoke_store.sh
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${SKETCHQL_CLI:-target/release/sketchql-cli}"
ADDR="${SKETCHQL_SMOKE_ADDR:-127.0.0.1:17879}"
if [ ! -x "$CLI" ]; then
    echo "missing $CLI (run cargo build --release first)" >&2
    exit 2
fi

work="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== store smoke: fixtures"
"$CLI" generate --out "$work/video.json" --events 1 --distractors 2 --seed 3 >/dev/null
"$CLI" train --out "$work/model.json" --steps 20 >/dev/null

echo "== store smoke: offline ingest"
"$CLI" ingest --video "$work/video.json" --model "$work/model.json" \
    --dataset traffic --store-dir "$work/stores" --oracle-tracks \
    | tee "$work/ingest.out"
grep -q "wrote store" "$work/ingest.out" || { echo "ingest wrote nothing" >&2; exit 1; }
ls "$work/stores/"*.skstore >/dev/null

echo "== store smoke: local query answers from the store"
"$CLI" query --video "$work/video.json" --model "$work/model.json" \
    --event left_turn --oracle-tracks --store-dir "$work/stores" \
    | tee "$work/local.out"
grep -q "store: index-backed" "$work/local.out" \
    || { echo "local query did not use the store" >&2; exit 1; }

echo "== store smoke: serve --store-dir on $ADDR"
"$CLI" serve --model "$work/model.json" --videos "traffic=$work/video.json" \
    --store-dir "$work/stores" --addr "$ADDR" --workers 2 --oracle-tracks \
    >"$work/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    grep -q "serving on" "$work/serve.log" 2>/dev/null && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log" >&2; exit 1; }
    sleep 0.1
done
grep -q 'store: dataset "traffic" is index-backed' "$work/serve.log" \
    || { echo "serve did not warm-load the store" >&2; cat "$work/serve.log" >&2; exit 1; }

# Startup must validate headers only — payloads (checksum, ANN build)
# are deferred to the first probe. The serve banner reports the attach
# wall time; gate it so an accidental eager full load fails the smoke.
attach_ms="$(sed -n 's/^store: attached .* in \([0-9.]*\) ms.*/\1/p' "$work/serve.log")"
[ -n "$attach_ms" ] || { echo "serve did not report store attach time" >&2; cat "$work/serve.log" >&2; exit 1; }
max_ms="${SKETCHQL_STORE_ATTACH_MS_MAX:-1500}"
awk -v got="$attach_ms" -v max="$max_ms" 'BEGIN { exit (got + 0 <= max + 0) ? 0 : 1 }' \
    || { echo "store attach took ${attach_ms} ms (bar: <=${max_ms} ms); startup is not header-only" >&2; exit 1; }
echo "store attach: ${attach_ms} ms (bar: <=${max_ms} ms)"

echo "== store smoke: wire round trip"
"$CLI" client --addr "$ADDR" --action list | tee "$work/list.out"
grep -q "store" "$work/list.out" || { echo "dataset not listed as store-backed" >&2; exit 1; }
"$CLI" client --addr "$ADDR" --action query \
    --dataset traffic --event left_turn --top-k 3 --deadline-ms 30000 \
    | tee "$work/query.out"
grep -q "^1 " "$work/query.out" || { echo "query returned no moments" >&2; exit 1; }
"$CLI" client --addr "$ADDR" --action stats | tee "$work/stats.out"
hits="$(awk '/^store hits/ { print $3 }' "$work/stats.out")"
[ "${hits:-0}" -ge 1 ] || { echo "expected >=1 store hit, got ${hits:-none}" >&2; exit 1; }
"$CLI" client --addr "$ADDR" --action shutdown

for _ in $(seq 1 50); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "serve did not exit after wire shutdown" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
serve_pid=""

echo "ok: store smoke passed"
