//! Experiment harness: regenerates every figure/scenario of the demo paper
//! and the research-paper-shaped evaluation tables (see DESIGN.md §4 and
//! EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release --bin experiments -- all
//! cargo run --release --bin experiments -- f1 t1 t5
//! ```
//!
//! Experiments: `f1 q1 q2 t1 t2 t3 t4 t5 a1` (or `all`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::prelude::*;
use sketchql::training::{evaluate_pairs, train};
use sketchql::{ClassicalSimilarity, Matcher, RetrievedMoment, Similarity, VideoIndex};
use sketchql_datasets::{
    evaluate_retrieval, generate_video, query_clip, EventAnnotation, EventKind, PredictedMoment,
    RetrievalReport, SceneFamily, VideoConfig,
};
use sketchql_nn::{EncoderConfig, Pooling};
use sketchql_simulator::{
    Camera, CameraRig, PairGenerator, RandomSceneSampler, Scene3D, ShakeConfig,
};
use sketchql_tracker::{DetectorConfig, TrackerConfig};
use sketchql_trajectory::{Clip, DistanceKind, Point3};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| run_all || args.iter().any(|a| a == name);

    println!("SketchQL experiment harness");
    println!("===========================\n");

    if want("f1") {
        exp_f1();
    }
    if want("q1") {
        exp_q1();
    }
    if want("q2") {
        exp_q2();
    }
    if want("t1") {
        exp_t1();
    }
    if want("t2") {
        exp_t2();
    }
    if want("t3") {
        exp_t3();
    }
    if want("t4") {
        exp_t4();
    }
    if want("t5") {
        exp_t5();
    }
    if want("a1") {
        exp_a1();
    }
    if args.iter().any(|a| a == "probe") {
        exp_probe();
    }
}

/// Fast quality probe used during development (not part of the paper
/// tables): learned-model F1 on four queries over one oracle-track video.
fn exp_probe() {
    println!("PROBE. learned-model F1, one video, oracle tracks");
    let model = sketchql_suite::demo_model();
    let video = generate_video(
        VideoConfig::standard(SceneFamily::UrbanIntersection),
        101,
        &mut StdRng::seed_from_u64(101),
    );
    let idx = VideoIndex::from_truth(&video);
    for kind in [
        EventKind::LeftTurn,
        EventKind::RightTurn,
        EventKind::UTurn,
        EventKind::PerpendicularCrossing,
    ] {
        let truth = video.events_of(kind);
        let results = search_with(&model, None, &idx, &query_clip(kind));
        let rep = eval_against(&results, &truth);
        let top: Vec<String> = results
            .iter()
            .take(3)
            .map(|m| format!("[{}..{} {:.3}]", m.start, m.end, m.score))
            .collect();
        println!(
            "  {:<24} F1 {:.2}  P@k {:.2}  rec {:.2}  {}",
            kind.name(),
            rep.f1,
            rep.precision_at_k,
            rep.recall,
            top.join(" ")
        );
    }
}

// ---------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------

fn moments_to_preds(ms: &[RetrievedMoment]) -> Vec<PredictedMoment> {
    ms.iter()
        .map(|m| PredictedMoment {
            start: m.start,
            end: m.end,
            score: m.score,
        })
        .collect()
}

fn eval_against(results: &[RetrievedMoment], truth: &[&EventAnnotation]) -> RetrievalReport {
    evaluate_retrieval(&moments_to_preds(results), truth)
}

/// The classical baselines compared in the tables.
fn baseline_kinds() -> Vec<DistanceKind> {
    vec![
        DistanceKind::Euclidean,
        DistanceKind::EuclideanVelocity,
        DistanceKind::Dtw,
        DistanceKind::Frechet,
        DistanceKind::Hausdorff,
        DistanceKind::Lcss,
        DistanceKind::Erp,
    ]
}

fn search_with(
    model: &TrainedModel,
    method: Option<DistanceKind>,
    index: &VideoIndex,
    query: &Clip,
) -> Vec<RetrievedMoment> {
    match method {
        None => Matcher::new(model.similarity())
            .search(index, query)
            .expect("experiment queries embed"),
        Some(kind) => Matcher::new(ClassicalSimilarity::new(kind))
            .search(index, query)
            .expect("classical prepare is infallible"),
    }
}

/// The methods compared in T1/T3: the learned similarity, the classical
/// trajectory distances, and the hand-written expert rules.
enum Method {
    Learned,
    Classical(DistanceKind),
    ExpertRules,
}

impl Method {
    fn name(&self) -> String {
        match self {
            Method::Learned => "sketchql".into(),
            Method::Classical(k) => k.name().into(),
            Method::ExpertRules => "rules".into(),
        }
    }

    fn search(
        &self,
        model: &TrainedModel,
        index: &VideoIndex,
        kind: EventKind,
    ) -> Vec<RetrievedMoment> {
        match self {
            Method::Learned => search_with(model, None, index, &query_clip(kind)),
            Method::Classical(k) => search_with(model, Some(*k), index, &query_clip(kind)),
            Method::ExpertRules => sketchql::evaluate_rule(
                index,
                &sketchql::expert_rule(kind),
                &sketchql::RuleSearchConfig::default(),
            ),
        }
    }
}

// ---------------------------------------------------------------------
// F1 — Figure 1: diverse left-turn behaviours under one query
// ---------------------------------------------------------------------

/// Records one isolated left-turn (or control) clip from a camera at the
/// requested distance.
fn isolated_event_clip(kind: EventKind, cam_dist: f32, angle_deg: Option<f32>, seed: u64) -> Clip {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scene = Scene3D::new(30.0);
    let center = sketchql_trajectory::Point2::ZERO;
    let participants = match (kind, angle_deg) {
        (EventKind::LeftTurn, Some(deg)) => {
            use rand::Rng;
            let heading = rng.gen_range(0.0..std::f32::consts::TAU);
            vec![(
                sketchql_simulator::Agent::sample(sketchql_trajectory::ObjectClass::Car, &mut rng),
                sketchql_simulator::templates::left_turn(
                    center - sketchql_trajectory::Point2::new(heading.cos(), heading.sin()) * 10.0,
                    heading,
                    8.0,
                    deg.to_radians(),
                ),
            )]
        }
        _ => kind.instantiate(center, &mut rng),
    };
    for (agent, script) in participants {
        scene = scene.with_object(agent, script);
    }
    // Keep resampling azimuth until every object stays visible.
    loop {
        let cam = Camera::sample_around(Point3::ZERO, cam_dist * 0.95, cam_dist * 1.05, &mut rng);
        let mut rig = CameraRig::new(cam, ShakeConfig::default());
        let clip = scene.record(&mut rig, &mut rng);
        if clip.objects.iter().all(|t| t.len() >= 20) {
            return clip;
        }
    }
}

fn exp_f1() {
    println!("F1. Figure-1 reproduction: one left-turn sketch vs diverse left-turn variants");
    println!("------------------------------------------------------------------------------");
    println!("Variants: near/far camera x acute/right/obtuse turn angle, random headings.");
    println!("Controls: right turns and stop-and-go (must score lower).\n");

    let model = sketchql_suite::demo_model();
    let learned = model.similarity();
    let query = query_clip(EventKind::LeftTurn);
    let q_learned = learned.prepare(&query).expect("query embeds");
    let dtw = ClassicalSimilarity::new(DistanceKind::Dtw);
    let q_dtw = dtw
        .prepare(&query)
        .expect("classical prepare is infallible");

    let buckets: Vec<(&str, f32, Option<f32>)> = vec![
        ("near + acute (55°)", 28.0, Some(55.0)),
        ("near + right (90°)", 28.0, Some(90.0)),
        ("near + obtuse (125°)", 28.0, Some(125.0)),
        ("far  + acute (55°)", 65.0, Some(55.0)),
        ("far  + right (90°)", 65.0, Some(90.0)),
        ("far  + obtuse (125°)", 65.0, Some(125.0)),
    ];
    let controls: Vec<(&str, EventKind)> = vec![
        ("control: right turn", EventKind::RightTurn),
        ("control: stop-and-go", EventKind::StopAndGo),
    ];
    const REPS: u64 = 8;

    println!("{:<22} | {:>10} | {:>10}", "variant", "sketchql", "dtw");
    println!("{}", "-".repeat(50));
    let mut lt_learned = Vec::new();
    let mut lt_dtw = Vec::new();
    for (label, dist, angle) in &buckets {
        let mut s_l = 0.0;
        let mut s_d = 0.0;
        for r in 0..REPS {
            let clip = isolated_event_clip(EventKind::LeftTurn, *dist, *angle, 100 + r);
            s_l += learned.score(&q_learned, &clip);
            s_d += dtw.score(&q_dtw, &clip);
        }
        s_l /= REPS as f32;
        s_d /= REPS as f32;
        lt_learned.push(s_l);
        lt_dtw.push(s_d);
        println!("{label:<22} | {s_l:>10.3} | {s_d:>10.3}");
    }
    let mut ctl_learned = Vec::new();
    let mut ctl_dtw = Vec::new();
    for (label, kind) in &controls {
        let mut s_l = 0.0;
        let mut s_d = 0.0;
        for r in 0..REPS {
            let clip = isolated_event_clip(*kind, 40.0, None, 200 + r);
            s_l += learned.score(&q_learned, &clip);
            s_d += dtw.score(&q_dtw, &clip);
        }
        s_l /= REPS as f32;
        s_d /= REPS as f32;
        ctl_learned.push(s_l);
        ctl_dtw.push(s_d);
        println!("{label:<22} | {s_l:>10.3} | {s_d:>10.3}");
    }
    let sep = |pos: &[f32], neg: &[f32]| {
        let p = pos.iter().sum::<f32>() / pos.len() as f32;
        let n = neg.iter().sum::<f32>() / neg.len() as f32;
        p - n
    };
    println!("{}", "-".repeat(50));
    println!(
        "separation (mean left-turn - mean control): sketchql {:+.3}, dtw {:+.3}\n",
        sep(&lt_learned, &ctl_learned),
        sep(&lt_dtw, &ctl_dtw)
    );
}

// ---------------------------------------------------------------------
// Q1 / Q2 — Figures 2-4: scripted demo sessions
// ---------------------------------------------------------------------

fn exp_q1() {
    println!("Q1. End-to-end demo (Figure 3): car making a left turn");
    println!("-------------------------------------------------------");
    let model = sketchql_suite::demo_model();
    let mut sq = SketchQL::new(model);
    let video = sketchql_suite::demo_video(SceneFamily::UrbanIntersection, 7);
    let summary = sq.upload_dataset("traffic", &video);
    println!(
        "Step 1  upload: {} frames, {} tracks",
        summary.frames, summary.num_tracks
    );

    let mut sketch = sq.new_sketch();
    let car = sketch
        .create_object(ObjectClass::Car, Point2::new(150.0, 450.0))
        .unwrap();
    println!("Step 2  created Car object #{car}");
    sketch.set_mode(MouseMode::Drag);
    let seg = sketch
        .drag_object_along(
            car,
            &[
                Point2::new(280.0, 450.0),
                Point2::new(430.0, 448.0),
                Point2::new(570.0, 438.0),
                Point2::new(640.0, 390.0),
                Point2::new(658.0, 300.0),
                Point2::new(662.0, 190.0),
                Point2::new(664.0, 100.0),
            ],
        )
        .unwrap();
    println!("Step 3  dragged a left turn (segment #{seg})");
    sketch.stretch_segment(seg, 70).unwrap();
    println!("Step 4  replayed & stretched the segment to 70 ticks");
    let results = sq.run_sketch("traffic", &sketch).unwrap();
    println!("Step 5  executed: {} moments returned", results.len());
    let views = sq.display("traffic", &results).unwrap();
    let truth = video.events_of(EventKind::LeftTurn);
    println!(
        "Step 6  display (ground truth at {:?}):",
        truth.iter().map(|t| (t.start, t.end)).collect::<Vec<_>>()
    );
    for v in views.iter().take(5) {
        let hit = truth
            .iter()
            .any(|t| t.temporal_iou(results[v.rank - 1].start, results[v.rank - 1].end) >= 0.3);
        println!(
            "        #{:<2} frames {:>5}..{:<5} score {:.3} {}",
            v.rank,
            v.start,
            v.end,
            v.score,
            if hit { "<-- true left turn" } else { "" }
        );
    }
    let report = eval_against(&results, &truth);
    println!(
        "summary  P@{} {:.2}  recall {:.2}  AP {:.2}\n",
        report.num_truth, report.precision_at_k, report.recall, report.average_precision
    );
}

fn exp_q2() {
    println!("Q2. Multi-object demo (Figure 4): car & person moving perpendicularly");
    println!("----------------------------------------------------------------------");
    let model = sketchql_suite::demo_model();
    let mut sq = SketchQL::new(model);
    let video = sketchql_suite::demo_video(SceneFamily::UrbanIntersection, 31);
    sq.upload_dataset("traffic", &video);
    let truth = video.events_of(EventKind::PerpendicularCrossing);

    let mut sketch = sq.new_sketch();
    let person = sketch
        .create_object(ObjectClass::Person, Point2::new(200.0, 300.0))
        .unwrap();
    let car = sketch
        .create_object(ObjectClass::Car, Point2::new(500.0, 80.0))
        .unwrap();
    sketch.set_mode(MouseMode::Drag);
    let p_seg = sketch
        .drag_object_along(
            person,
            &[
                Point2::new(330.0, 300.0),
                Point2::new(470.0, 300.0),
                Point2::new(610.0, 300.0),
                Point2::new(760.0, 300.0),
            ],
        )
        .unwrap();
    let c_seg = sketch
        .drag_object_along(
            car,
            &[
                Point2::new(500.0, 190.0),
                Point2::new(500.0, 300.0),
                Point2::new(500.0, 410.0),
                Point2::new(500.0, 520.0),
            ],
        )
        .unwrap();
    // Stretch the sparse programmatic drags to a realistic ~2.5s duration.
    sketch.stretch_segment(p_seg, 80).unwrap();
    sketch.stretch_segment(c_seg, 80).unwrap();
    let after = sketch.segment(p_seg).unwrap().end_tick();
    sketch.shift_segment(c_seg, after).unwrap();

    let before = sq.run_sketch("traffic", &sketch).unwrap();
    let r_before = eval_against(&before, &truth);
    println!(
        "before panel sync: P@{} {:.2}  recall {:.2}",
        r_before.num_truth, r_before.precision_at_k, r_before.recall
    );

    sketch.align_segments(c_seg, p_seg).unwrap();
    let after_res = sq.run_sketch("traffic", &sketch).unwrap();
    let r_after = eval_against(&after_res, &truth);
    println!(
        "after  panel sync: P@{} {:.2}  recall {:.2}",
        r_after.num_truth, r_after.precision_at_k, r_after.recall
    );
    println!("(Figure 4's timing edit: synchronization should help or match.)\n");
}

// ---------------------------------------------------------------------
// T1 — retrieval quality per query, learned vs classical baselines
// ---------------------------------------------------------------------

fn exp_t1() {
    println!("T1. Retrieval quality per query (mean F1 over 3 videos, oracle tracks)");
    println!("------------------------------------------------------------------------");
    let model = sketchql_suite::demo_model();
    let seeds = [101u64, 102, 103];
    let videos: Vec<_> = seeds
        .iter()
        .map(|&s| {
            generate_video(
                VideoConfig::standard(SceneFamily::UrbanIntersection),
                s,
                &mut StdRng::seed_from_u64(s),
            )
        })
        .collect();
    let indexes: Vec<_> = videos.iter().map(VideoIndex::from_truth).collect();

    let mut methods: Vec<Method> = vec![Method::Learned];
    for k in baseline_kinds() {
        methods.push(Method::Classical(k));
    }
    methods.push(Method::ExpertRules);

    print!("{:<24}", "query \\ method (F1)");
    for m in &methods {
        print!(" | {:>10}", m.name());
    }
    println!();
    println!("{}", "-".repeat(24 + methods.len() * 13));

    let mut totals = vec![0.0f32; methods.len()];
    for &kind in EventKind::ALL {
        print!("{:<24}", kind.name());
        for (mi, method) in methods.iter().enumerate() {
            let mut f1 = 0.0;
            for (v, idx) in videos.iter().zip(&indexes) {
                let truth = v.events_of(kind);
                let results = method.search(&model, idx, kind);
                f1 += eval_against(&results, &truth).f1;
            }
            f1 /= videos.len() as f32;
            totals[mi] += f1;
            print!(" | {f1:>10.2}");
        }
        println!();
    }
    println!("{}", "-".repeat(24 + methods.len() * 13));
    print!("{:<24}", "mean");
    for t in &totals {
        print!(" | {:>10.2}", t / EventKind::ALL.len() as f32);
    }
    println!("\n");
}

// ---------------------------------------------------------------------
// T2 — zero-shot generalization across unseen scene families
// ---------------------------------------------------------------------

fn exp_t2() {
    println!("T2. Zero-shot generalization: simulator-trained encoder on unseen families");
    println!("---------------------------------------------------------------------------");
    let model = sketchql_suite::demo_model();
    let kinds = [
        EventKind::LeftTurn,
        EventKind::RightTurn,
        EventKind::UTurn,
        EventKind::PerpendicularCrossing,
    ];
    println!(
        "{:<20} | {:>9} | {:>9} | {:>9}",
        "family \\ metric", "P@k", "recall", "AP"
    );
    println!("{}", "-".repeat(58));
    for family in SceneFamily::ALL {
        let mut p = 0.0;
        let mut r = 0.0;
        let mut ap = 0.0;
        let mut n = 0.0;
        for seed in [301u64, 302] {
            let v = generate_video(
                VideoConfig::standard(*family),
                seed,
                &mut StdRng::seed_from_u64(seed),
            );
            let idx = VideoIndex::from_truth(&v);
            for &kind in &kinds {
                let truth = v.events_of(kind);
                let results = search_with(&model, None, &idx, &query_clip(kind));
                let rep = eval_against(&results, &truth);
                p += rep.precision_at_k;
                r += rep.recall;
                ap += rep.average_precision;
                n += 1.0;
            }
        }
        println!(
            "{:<20} | {:>9.2} | {:>9.2} | {:>9.2}",
            family.name(),
            p / n,
            r / n,
            ap / n
        );
    }
    // Held-out simulator pairs: view-retrieval accuracy.
    let generator = PairGenerator::new(
        RandomSceneSampler::new(model.config.sampler),
        model.config.pairgen,
    );
    let eval = evaluate_pairs(&model, &generator, 24, 777);
    println!("{}", "-".repeat(58));
    println!(
        "held-out simulator pairs: mean pos {:.3}, mean neg {:.3}, top-1 {:.2}\n",
        eval.mean_positive, eval.mean_negative, eval.top1_accuracy
    );
}

// ---------------------------------------------------------------------
// T3 — robustness to detector/tracker noise
// ---------------------------------------------------------------------

fn exp_t3() {
    println!("T3. Robustness: retrieval F1 vs preprocessing noise (left-turn query)");
    println!("----------------------------------------------------------------------");
    let model = sketchql_suite::demo_model();
    let video = generate_video(
        VideoConfig::standard(SceneFamily::UrbanIntersection),
        401,
        &mut StdRng::seed_from_u64(401),
    );
    let truth = video.events_of(EventKind::LeftTurn);
    let query = query_clip(EventKind::LeftTurn);

    println!(
        "{:<18} | {:>10} | {:>10} | {:>10} | {:>9}",
        "detector noise", "sketchql", "dtw", "rules", "tracks"
    );
    println!("{}", "-".repeat(70));
    for level in [0.0f32, 0.5, 1.0, 2.0, 3.0] {
        let idx = if level == 0.0 {
            VideoIndex::from_truth(&video)
        } else {
            VideoIndex::build(
                &video,
                DetectorConfig::at_noise_level(level),
                TrackerConfig::default(),
                500 + level as u64,
            )
        };
        let f_learned = eval_against(&search_with(&model, None, &idx, &query), &truth).f1;
        let f_dtw = eval_against(
            &search_with(&model, Some(DistanceKind::Dtw), &idx, &query),
            &truth,
        )
        .f1;
        let f_rules = eval_against(
            &sketchql::evaluate_rule(
                &idx,
                &sketchql::expert_rule(EventKind::LeftTurn),
                &sketchql::RuleSearchConfig::default(),
            ),
            &truth,
        )
        .f1;
        println!(
            "{:<18} | {:>10.2} | {:>10.2} | {:>10.2} | {:>9}",
            format!("level {level:.1}"),
            f_learned,
            f_dtw,
            f_rules,
            idx.tracks.len()
        );
    }
    println!("(level 0 = oracle tracks; higher levels add jitter, misses, false positives)\n");
}

// ---------------------------------------------------------------------
// T4 — Tuner gains from user feedback
// ---------------------------------------------------------------------

fn exp_t4() {
    println!("T4. Tuner: retrieval before/after feedback (hard queries)");
    println!("----------------------------------------------------------");
    let kinds = [EventKind::UTurn, EventKind::LaneChange, EventKind::Overtake];
    println!(
        "{:<24} | {:>10} | {:>10} | {:>10}",
        "query", "zero-shot", "reranked", "fine-tuned"
    );
    println!("{}", "-".repeat(64));
    for (i, &kind) in kinds.iter().enumerate() {
        let model = sketchql_suite::demo_model();
        let mut sq = SketchQL::new(model);
        let video = sketchql_suite::demo_video(SceneFamily::UrbanIntersection, 600 + i as u64);
        sq.upload_index("v", VideoIndex::from_truth(&video));
        let truth = video.events_of(kind);
        let query = query_clip(kind);

        let zero = sq.run_query("v", &query).unwrap();
        let ap_zero = eval_against(&zero, &truth).average_precision;

        // Simulated user labels the top-6.
        let feedback: Vec<Feedback> = zero
            .iter()
            .take(6)
            .map(|m| Feedback {
                clip: sq.moment_clip("v", m).unwrap(),
                relevant: truth.iter().any(|t| t.temporal_iou(m.start, m.end) >= 0.3),
            })
            .collect();
        let cfg = TunerConfig::default();

        // Prototype re-ranking.
        let reranker = sq.feedback_reranker(&feedback, &cfg);
        let mut reranked = zero.clone();
        for m in &mut reranked {
            if let Some(e) = sq.moment_clip("v", m).ok().and_then(|c| sq.model.embed(&c)) {
                m.score = reranker.adjust(m.score, &e);
            }
        }
        reranked.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        let ap_rerank = eval_against(&reranked, &truth).average_precision;

        // Fine-tuning.
        sq.apply_feedback(&query, &feedback, &cfg);
        let tuned = sq.run_query("v", &query).unwrap();
        let ap_tuned = eval_against(&tuned, &truth).average_precision;

        println!(
            "{:<24} | {:>10.2} | {:>10.2} | {:>10.2}",
            kind.name(),
            ap_zero,
            ap_rerank,
            ap_tuned
        );
    }
    println!("(metric: average precision; feedback = labels on the top-6 zero-shot results)\n");
}

// ---------------------------------------------------------------------
// T5 — latency / throughput
// ---------------------------------------------------------------------

fn exp_t5() {
    println!("T5. Latency (wall clock, this machine; see also `cargo bench`)");
    println!("----------------------------------------------------------------");
    let model = sketchql_suite::demo_model();

    // Preprocessing time vs video length.
    println!("{:<34} | {:>8} | {:>9}", "preprocessing", "frames", "time");
    println!("{}", "-".repeat(58));
    for events_per_kind in [1usize, 2, 4] {
        let cfg = VideoConfig {
            family: SceneFamily::UrbanIntersection,
            events_per_kind,
            distractors: 8,
            fps: 30.0,
        };
        let v = generate_video(
            cfg,
            700 + events_per_kind as u64,
            &mut StdRng::seed_from_u64(700),
        );
        let t0 = Instant::now();
        let idx = VideoIndex::build(&v, DetectorConfig::default(), TrackerConfig::default(), 1);
        let dt = t0.elapsed();
        println!(
            "{:<34} | {:>8} | {:>8.0}ms",
            format!("detector+tracker ({} tracks)", idx.tracks.len()),
            v.frames,
            dt.as_secs_f64() * 1000.0
        );
    }

    // Query latency: learned vs baselines on the same index.
    let video = generate_video(
        VideoConfig::standard(SceneFamily::UrbanIntersection),
        777,
        &mut StdRng::seed_from_u64(777),
    );
    let idx = VideoIndex::from_truth(&video);
    let query = query_clip(EventKind::LeftTurn);
    println!(
        "\n{:<34} | {:>8} | {:>9}",
        "query execution", "frames", "time"
    );
    println!("{}", "-".repeat(58));
    let mut methods: Vec<(String, Option<DistanceKind>)> =
        vec![("sketchql (learned)".into(), None)];
    for k in baseline_kinds() {
        methods.push((k.name().into(), Some(k)));
    }
    for (name, method) in &methods {
        let t0 = Instant::now();
        let results = search_with(&model, *method, &idx, &query);
        let dt = t0.elapsed();
        println!(
            "{:<34} | {:>8} | {:>8.1}ms   ({} moments)",
            name,
            idx.frames,
            dt.as_secs_f64() * 1000.0,
            results.len()
        );
    }
    // The learned search parallelizes over windows.
    {
        let m = Matcher::with_config(
            model.similarity(),
            sketchql::MatcherConfig {
                threads: 4,
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        let results = m.search(&idx, &query).expect("experiment queries embed");
        let dt = t0.elapsed();
        println!(
            "{:<34} | {:>8} | {:>8.1}ms   ({} moments)",
            "sketchql (learned, 4 threads)",
            idx.frames,
            dt.as_secs_f64() * 1000.0,
            results.len()
        );
    }

    // Materialized windows: build once, then answer single-object queries
    // with a dot-product scan (EVA-style materialized views).
    let sim_m = model.similarity();
    let t0 = Instant::now();
    let mat = sketchql::MaterializedWindows::build(
        &idx,
        &sim_m,
        sketchql::MaterializeConfig {
            threads: 4,
            ..Default::default()
        },
    );
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t0 = Instant::now();
    let mat_results = mat.query(&sim_m, &query, 10, 0.45).unwrap();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    println!(
        "\nmaterialized windows: build {:.0}ms ({} entries), per-query {:.1}ms ({} moments)",
        build_ms,
        mat.len(),
        query_ms,
        mat_results.len()
    );

    // Encoder embedding throughput.
    let sim = model.similarity();
    let clip = isolated_event_clip(EventKind::LeftTurn, 40.0, Some(90.0), 900);
    let t0 = Instant::now();
    let n = 500;
    for _ in 0..n {
        let _ = sim.embed(&clip);
    }
    let dt = t0.elapsed();
    println!(
        "\nencoder throughput: {:.0} clip embeddings/s ({:.2} ms each)\n",
        n as f64 / dt.as_secs_f64(),
        dt.as_secs_f64() * 1000.0 / n as f64
    );
}

// ---------------------------------------------------------------------
// A1 — design ablations
// ---------------------------------------------------------------------

fn exp_a1() {
    println!("A1. Ablations: encoder and simulator design choices");
    println!("----------------------------------------------------");
    println!("Metric: held-out pair separation (pos - neg) and top-1 view retrieval");
    println!("accuracy after identical short training runs.\n");

    let base = TrainingConfig::small();
    let short = |mut c: TrainingConfig| {
        c.steps = 120;
        c
    };

    let variants: Vec<(&str, TrainingConfig)> = vec![
        ("full model", short(base.clone())),
        ("no positional encoding", {
            let mut c = short(base.clone());
            c.encoder.positional = false;
            c
        }),
        ("last-token pooling", {
            let mut c = short(base.clone());
            c.encoder.pooling = Pooling::Last;
            c
        }),
        ("1 encoder layer", {
            let mut c = short(base.clone());
            c.encoder = EncoderConfig {
                layers: 1,
                ..c.encoder
            };
            c
        }),
        ("single-camera positives", {
            let mut c = short(base.clone());
            c.pairgen.same_camera = true;
            c
        }),
        ("no temporal stretch", {
            let mut c = short(base.clone());
            c.pairgen.stretch_prob = 0.0;
            c
        }),
    ];

    println!(
        "{:<26} | {:>9} | {:>9} | {:>9} | {:>9}",
        "variant", "pos", "neg", "sep", "top-1"
    );
    println!("{}", "-".repeat(74));
    // Held-out evaluation always uses the *full* multi-camera generator:
    // that is the deployment condition (arbitrary viewpoints).
    let eval_gen = PairGenerator::new(RandomSceneSampler::new(base.sampler), base.pairgen);
    for (name, cfg) in variants {
        let model = train(cfg);
        let e = evaluate_pairs(&model, &eval_gen, 20, 424242);
        println!(
            "{:<26} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.2}",
            name,
            e.mean_positive,
            e.mean_negative,
            e.mean_positive - e.mean_negative,
            e.top1_accuracy
        );
    }
    println!("\n(Expected shape: the full model separates views best; single-camera");
    println!(" training loses viewpoint invariance — the paper's key data recipe.)\n");
}
