//! Engine integration with persistent embedding stores: warm-load
//! validation, byte-identical answers, per-query fallback, and the
//! store-effectiveness counters surfaced through `stats()`.

mod common;

use std::collections::BTreeMap;

use sketchql::{ingest, DatasetStore, IngestConfig, MatcherConfig, StoreTier};
use sketchql_datasets::{query_clip, EventKind};
use sketchql_server::{Engine, EngineConfig, QuerySpec};

use common::{small_index, tiny_model, two_datasets};

/// Single-object events (multi-object sketches always fall back).
const SINGLE_OBJECT: &[EventKind] = &[
    EventKind::LeftTurn,
    EventKind::StopAndGo,
    EventKind::LaneChange,
];

fn spec(dataset: &str, event: EventKind) -> QuerySpec {
    QuerySpec::new(dataset, query_clip(event))
}

/// Ingests a store for `dataset` covering the window grid every
/// `SINGLE_OBJECT` query needs, with an exhaustive probe so answers are
/// provably identical to the scan, not merely high-recall.
fn exhaustive_store(
    model: &sketchql::TrainedModel,
    index: &sketchql::VideoIndex,
    dataset: &str,
) -> DatasetStore {
    let sim = model.similarity();
    let spans: Vec<u32> = SINGLE_OBJECT
        .iter()
        .map(|&k| query_clip(k).span())
        .collect();
    let cfg = IngestConfig::from_matcher(&MatcherConfig::default(), &spans);
    let mut store = ingest(&sim, index, dataset, &cfg);
    store.nprobe = store.nlist();
    store
}

/// A store-backed engine answers exactly what a plain engine answers,
/// serves stored datasets from the index, and scans the rest.
#[test]
fn store_backed_engine_matches_plain_engine() {
    let model = tiny_model();
    let store = exhaustive_store(&model, &small_index(11), "alpha");

    let plain = Engine::start(model.clone(), two_datasets(), EngineConfig::default());
    let mut expected = Vec::new();
    for dataset in ["alpha", "beta"] {
        for &event in SINGLE_OBJECT {
            expected.push((
                (dataset, event),
                plain.execute(spec(dataset, event)).unwrap().moments,
            ));
        }
    }
    plain.shutdown();

    let mut stores = BTreeMap::new();
    stores.insert("alpha".to_string(), StoreTier::from(store));
    let engine = Engine::start_with_stores(model, two_datasets(), stores, EngineConfig::default());
    assert_eq!(engine.stored_datasets(), vec!["alpha".to_string()]);
    let infos = engine.datasets();
    assert!(infos.iter().any(|d| d.name == "alpha" && d.stored));
    assert!(infos.iter().any(|d| d.name == "beta" && !d.stored));

    for ((dataset, event), want) in &expected {
        let got = engine.execute(spec(dataset, *event)).unwrap();
        assert_eq!(
            &got.moments, want,
            "{dataset}/{event:?}: store-backed engine diverged from plain engine"
        );
    }
    let stats = engine.stats();
    assert_eq!(
        stats.store_hits,
        SINGLE_OBJECT.len() as u64,
        "every single-object alpha query must be store-served"
    );
    assert_eq!(stats.store_fallbacks, 0);
    assert!(stats.store_probed > 0);
    engine.shutdown();
}

/// A store built against different video contents fails fingerprint
/// validation at startup and is dropped; its dataset still answers
/// queries through the ordinary scan path.
#[test]
fn mismatched_store_is_dropped_at_startup() {
    let model = tiny_model();
    // Named "alpha" but embedded from a different video.
    let store = exhaustive_store(&model, &small_index(99), "alpha");
    let mut stores = BTreeMap::new();
    stores.insert("alpha".to_string(), StoreTier::from(store));
    let engine = Engine::start_with_stores(model, two_datasets(), stores, EngineConfig::default());
    assert!(engine.stored_datasets().is_empty());
    assert!(engine.datasets().iter().all(|d| !d.stored));
    let result = engine.execute(spec("alpha", EventKind::LeftTurn)).unwrap();
    assert!(!result.moments.is_empty());
    assert_eq!(engine.stats().store_hits, 0);
    engine.shutdown();
}

/// A multi-object sketch against a stored dataset is answered correctly
/// by falling back to the scan, and the fallback is counted.
#[test]
fn multi_object_query_on_stored_dataset_falls_back() {
    let model = tiny_model();
    let store = exhaustive_store(&model, &small_index(11), "alpha");
    let mut stores = BTreeMap::new();
    stores.insert("alpha".to_string(), StoreTier::from(store));

    let plain = Engine::start(model.clone(), two_datasets(), EngineConfig::default());
    let want = plain
        .execute(spec("alpha", EventKind::PerpendicularCrossing))
        .unwrap()
        .moments;
    plain.shutdown();

    let engine = Engine::start_with_stores(model, two_datasets(), stores, EngineConfig::default());
    let got = engine
        .execute(spec("alpha", EventKind::PerpendicularCrossing))
        .unwrap();
    assert_eq!(got.moments, want);
    let stats = engine.stats();
    assert_eq!(stats.store_fallbacks, 1);
    assert_eq!(stats.store_hits, 0);
    engine.shutdown();
}
