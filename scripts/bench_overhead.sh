#!/usr/bin/env bash
# Telemetry-overhead check: runs the matcher bench twice — once with the
# default features (telemetry on) and once with --no-default-features
# (telemetry compiled out) — and compares `median_ns` per bench id.
#
#   scripts/bench_overhead.sh            # full samples
#   SKETCHQL_BENCH_QUICK=1 scripts/bench_overhead.sh   # fast smoke run
#
# The acceptance bar is mean overhead below $SKETCHQL_OVERHEAD_MAX percent
# (default 2) across the matcher_search benches; the script exits non-zero
# past the bar.
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_PCT="${SKETCHQL_OVERHEAD_MAX:-2}"
on_log="$(mktemp)"
off_log="$(mktemp)"
trap 'rm -f "$on_log" "$off_log"' EXIT

echo "== bench with telemetry enabled (default features)"
cargo bench -p sketchql-bench --bench matcher | tee "$on_log"

echo
echo "== bench with telemetry compiled out (--no-default-features)"
cargo bench -p sketchql-bench --bench matcher --no-default-features | tee "$off_log"

echo
echo "== overhead per bench id (telemetry on vs off)"
awk -v max="$MAX_PCT" '
    /^BENCH / && /median_ns=/ {
        id = $2
        for (i = 3; i <= NF; i++)
            if ($i ~ /^median_ns=/) { sub(/^median_ns=/, "", $i); med = $i }
        if (FILENAME == ARGV[1]) on[id] = med
        else off[id] = med
    }
    END {
        n = 0; total = 0
        for (id in on) {
            if (!(id in off) || off[id] <= 0) continue
            pct = (on[id] - off[id]) / off[id] * 100.0
            printf "  %-40s on=%.0fns off=%.0fns overhead=%+.2f%%\n", id, on[id], off[id], pct
            total += pct; n++
        }
        if (n == 0) { print "no comparable bench ids found"; exit 2 }
        mean = total / n
        printf "mean overhead: %+.2f%% (bar: <%s%%)\n", mean, max
        exit (mean < max + 0.0) ? 0 : 1
    }
' "$on_log" "$off_log"
