//! Object classes supported by the sketcher.
//!
//! The demo paper states that "about eighty common object types (e.g., car,
//! person) are supported" plus a generic `Any` type. We mirror the COCO-80
//! label set, which is what the pre-trained detectors/trackers the paper
//! builds on (ByteTrack over COCO-trained detectors) emit, and add `Any` as
//! the wildcard the sketcher exposes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Numeric identifier for an object track within one video.
pub type TrackId = u64;

macro_rules! object_classes {
    ($(($variant:ident, $name:literal)),+ $(,)?) => {
        /// An object category a sketch query or a tracked object can carry.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
        pub enum ObjectClass {
            /// Wildcard: matches every concrete class.
            Any,
            $(#[doc = $name] $variant,)+
        }

        impl ObjectClass {
            /// All concrete (non-`Any`) classes, in COCO order.
            pub const CONCRETE: &'static [ObjectClass] = &[$(ObjectClass::$variant,)+];

            /// The canonical lower-case label.
            pub fn label(&self) -> &'static str {
                match self {
                    ObjectClass::Any => "any",
                    $(ObjectClass::$variant => $name,)+
                }
            }
        }

        impl FromStr for ObjectClass {
            type Err = UnknownClass;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let lower = s.trim().to_ascii_lowercase();
                match lower.as_str() {
                    "any" | "*" => Ok(ObjectClass::Any),
                    $($name => Ok(ObjectClass::$variant),)+
                    _ => Err(UnknownClass(lower)),
                }
            }
        }
    };
}

object_classes! {
    (Person, "person"),
    (Bicycle, "bicycle"),
    (Car, "car"),
    (Motorcycle, "motorcycle"),
    (Airplane, "airplane"),
    (Bus, "bus"),
    (Train, "train"),
    (Truck, "truck"),
    (Boat, "boat"),
    (TrafficLight, "traffic light"),
    (FireHydrant, "fire hydrant"),
    (StopSign, "stop sign"),
    (ParkingMeter, "parking meter"),
    (Bench, "bench"),
    (Bird, "bird"),
    (Cat, "cat"),
    (Dog, "dog"),
    (Horse, "horse"),
    (Sheep, "sheep"),
    (Cow, "cow"),
    (Elephant, "elephant"),
    (Bear, "bear"),
    (Zebra, "zebra"),
    (Giraffe, "giraffe"),
    (Backpack, "backpack"),
    (Umbrella, "umbrella"),
    (Handbag, "handbag"),
    (Tie, "tie"),
    (Suitcase, "suitcase"),
    (Frisbee, "frisbee"),
    (Skis, "skis"),
    (Snowboard, "snowboard"),
    (SportsBall, "sports ball"),
    (Kite, "kite"),
    (BaseballBat, "baseball bat"),
    (BaseballGlove, "baseball glove"),
    (Skateboard, "skateboard"),
    (Surfboard, "surfboard"),
    (TennisRacket, "tennis racket"),
    (Bottle, "bottle"),
    (WineGlass, "wine glass"),
    (Cup, "cup"),
    (Fork, "fork"),
    (Knife, "knife"),
    (Spoon, "spoon"),
    (Bowl, "bowl"),
    (Banana, "banana"),
    (Apple, "apple"),
    (Sandwich, "sandwich"),
    (Orange, "orange"),
    (Broccoli, "broccoli"),
    (Carrot, "carrot"),
    (HotDog, "hot dog"),
    (Pizza, "pizza"),
    (Donut, "donut"),
    (Cake, "cake"),
    (Chair, "chair"),
    (Couch, "couch"),
    (PottedPlant, "potted plant"),
    (Bed, "bed"),
    (DiningTable, "dining table"),
    (Toilet, "toilet"),
    (Tv, "tv"),
    (Laptop, "laptop"),
    (Mouse, "mouse"),
    (Remote, "remote"),
    (Keyboard, "keyboard"),
    (CellPhone, "cell phone"),
    (Microwave, "microwave"),
    (Oven, "oven"),
    (Toaster, "toaster"),
    (Sink, "sink"),
    (Refrigerator, "refrigerator"),
    (Book, "book"),
    (Clock, "clock"),
    (Vase, "vase"),
    (Scissors, "scissors"),
    (TeddyBear, "teddy bear"),
    (HairDrier, "hair drier"),
    (Toothbrush, "toothbrush"),
}

/// Error returned when parsing an unknown class label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownClass(pub String);

impl fmt::Display for UnknownClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown object class: {:?}", self.0)
    }
}

impl std::error::Error for UnknownClass {}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl ObjectClass {
    /// Whether a query class accepts a concrete tracked class.
    ///
    /// `Any` accepts everything; a concrete class accepts only itself. Used
    /// by the Matcher for candidate pruning.
    pub fn matches(&self, concrete: &ObjectClass) -> bool {
        *self == ObjectClass::Any || self == concrete
    }

    /// Whether this class typically moves (used by the scene generator to
    /// decide which classes participate in motion events).
    pub fn is_mobile(&self) -> bool {
        matches!(
            self,
            ObjectClass::Person
                | ObjectClass::Bicycle
                | ObjectClass::Car
                | ObjectClass::Motorcycle
                | ObjectClass::Bus
                | ObjectClass::Truck
                | ObjectClass::Train
                | ObjectClass::Boat
                | ObjectClass::Bird
                | ObjectClass::Cat
                | ObjectClass::Dog
                | ObjectClass::Horse
                | ObjectClass::Skateboard
                | ObjectClass::Any
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn about_eighty_classes_supported() {
        // The paper says "about eighty common object types"; COCO has 80.
        assert_eq!(ObjectClass::CONCRETE.len(), 80);
    }

    #[test]
    fn parse_round_trip_all_labels() {
        for c in ObjectClass::CONCRETE {
            let parsed: ObjectClass = c.label().parse().unwrap();
            assert_eq!(parsed, *c);
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(" Car ".parse::<ObjectClass>().unwrap(), ObjectClass::Car);
        assert_eq!(
            "PERSON".parse::<ObjectClass>().unwrap(),
            ObjectClass::Person
        );
    }

    #[test]
    fn parse_any_and_wildcard() {
        assert_eq!("any".parse::<ObjectClass>().unwrap(), ObjectClass::Any);
        assert_eq!("*".parse::<ObjectClass>().unwrap(), ObjectClass::Any);
    }

    #[test]
    fn unknown_label_is_error() {
        let err = "flying saucer".parse::<ObjectClass>().unwrap_err();
        assert!(err.to_string().contains("flying saucer"));
    }

    #[test]
    fn any_matches_everything_concrete_matches_self() {
        assert!(ObjectClass::Any.matches(&ObjectClass::Car));
        assert!(ObjectClass::Car.matches(&ObjectClass::Car));
        assert!(!ObjectClass::Car.matches(&ObjectClass::Person));
    }

    #[test]
    fn mobility_flags() {
        assert!(ObjectClass::Car.is_mobile());
        assert!(ObjectClass::Person.is_mobile());
        assert!(!ObjectClass::FireHydrant.is_mobile());
        assert!(!ObjectClass::Bench.is_mobile());
    }
}
