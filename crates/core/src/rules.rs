//! Rule-based (SQL-style) moment queries — the baseline interface family
//! the paper contrasts with.
//!
//! §1 of the demo paper: SQL-based interfaces "support rule-based selection
//! of clips using SQL-like syntax ... built upon low-level primitives
//! extracted by pre-trained models", and their weakness is that
//! "translating a semantically meaningful event (e.g., left turns) into
//! SQL-like rules on top of low-level primitives (e.g., location and angle
//! of bounding boxes) can be challenging."
//!
//! This module implements that interface faithfully so experiments can
//! compare it against sketching: a [`Predicate`] algebra over per-track
//! motion primitives (displacement, speed, signed turning, stops, path
//! wiggle), multi-object [`Relation`]s (perpendicularity, proximity,
//! relative speed), a sliding-window evaluator, and the set of
//! [`expert_rule`]s an expert user would hand-write for each event kind of
//! the evaluation workload.

use serde::{Deserialize, Serialize};
use sketchql_trajectory::{wrap_angle, ObjectClass, Trajectory};

use crate::index::VideoIndex;
use crate::matcher::RetrievedMoment;

/// Motion statistics of one track restricted to a window — the "low-level
/// primitives" rules are written over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionStats {
    /// Number of observations in the window.
    pub observations: usize,
    /// Net displacement (pixels), start to end.
    pub displacement: f32,
    /// Total path length (pixels).
    pub path_length: f32,
    /// Mean box diagonal (pixels), the scale unit for thresholds.
    pub box_scale: f32,
    /// Mean speed (pixels/frame).
    pub mean_speed: f32,
    /// Signed total turning (radians, screen coords: y grows downward, so
    /// a vehicle's left turn is negative).
    pub net_turning: f32,
    /// Sum of absolute turning (radians).
    pub total_abs_turning: f32,
    /// Longest stationary stretch (frames with speed below 5% of the box
    /// scale per frame).
    pub longest_stop: u32,
    /// Mean heading (radians) over moving steps.
    pub mean_heading: f32,
}

/// Computes motion statistics of a track within `[start, end]`.
pub fn motion_stats(track: &Trajectory, start: u32, end: u32) -> MotionStats {
    let w = track.slice(start, end);
    let pts = w.points();
    let n = pts.len();
    if n < 2 {
        return MotionStats {
            observations: n,
            displacement: 0.0,
            path_length: 0.0,
            box_scale: pts
                .first()
                .map_or(1.0, |p| (p.bbox.w * p.bbox.w + p.bbox.h * p.bbox.h).sqrt()),
            mean_speed: 0.0,
            net_turning: 0.0,
            total_abs_turning: 0.0,
            longest_stop: 0,
            mean_heading: 0.0,
        };
    }
    // Use a lightly smoothed copy so camera shake does not masquerade as
    // turning — the same trap the paper ascribes to rule authoring.
    let sm = w.smoothed(2);
    let box_scale = (pts
        .iter()
        .map(|p| p.bbox.w * p.bbox.w + p.bbox.h * p.bbox.h)
        .sum::<f32>()
        / n as f32)
        .sqrt()
        .max(1.0);
    let vels = sm.velocities();
    let stop_thresh = 0.05 * box_scale;
    let mut longest_stop = 0u32;
    let mut current_stop = 0u32;
    for v in &vels {
        if v.norm() < stop_thresh {
            current_stop += 1;
            longest_stop = longest_stop.max(current_stop);
        } else {
            current_stop = 0;
        }
    }
    // Headings only over moving steps; turning from their differences.
    let mut headings = Vec::new();
    for v in &vels {
        if v.norm() >= stop_thresh {
            headings.push(v.angle());
        }
    }
    let mut net_turning = 0.0;
    let mut total_abs = 0.0;
    for pair in headings.windows(2) {
        let d = wrap_angle(pair[1] - pair[0]);
        net_turning += d;
        total_abs += d.abs();
    }
    let mean_heading = if headings.is_empty() {
        0.0
    } else {
        // Circular mean.
        let (s, c) = headings
            .iter()
            .fold((0.0f32, 0.0f32), |(s, c), h| (s + h.sin(), c + h.cos()));
        s.atan2(c)
    };
    MotionStats {
        observations: n,
        displacement: sm.displacement(),
        path_length: sm.path_length(),
        box_scale,
        mean_speed: sm.path_length() / (n - 1) as f32,
        net_turning,
        total_abs_turning: total_abs,
        longest_stop,
        mean_heading,
    }
}

/// A predicate over one object's window statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Net displacement of at least `x` box-scale units.
    MinDisplacement(f32),
    /// Net displacement of at most `x` box-scale units.
    MaxDisplacement(f32),
    /// Signed net turning within `[min, max]` degrees (screen convention:
    /// a vehicle's left turn is negative).
    NetTurningDeg {
        /// Lower bound (degrees).
        min: f32,
        /// Upper bound (degrees).
        max: f32,
    },
    /// Total absolute turning of at least `deg` degrees.
    MinTotalTurningDeg(f32),
    /// Contains a stop of at least this many frames.
    StopsAtLeast(u32),
    /// Contains no stop longer than this many frames.
    StopsAtMost(u32),
    /// Path-length / displacement ratio within `[min, max]` (1 = straight;
    /// large = wandering).
    WiggleRatio {
        /// Lower bound.
        min: f32,
        /// Upper bound.
        max: f32,
    },
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction.
    All(Vec<Predicate>),
    /// Disjunction.
    Any(Vec<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate against window statistics.
    pub fn eval(&self, s: &MotionStats) -> bool {
        match self {
            Predicate::MinDisplacement(x) => s.displacement >= x * s.box_scale,
            Predicate::MaxDisplacement(x) => s.displacement <= x * s.box_scale,
            Predicate::NetTurningDeg { min, max } => {
                let deg = s.net_turning.to_degrees();
                deg >= *min && deg <= *max
            }
            Predicate::MinTotalTurningDeg(deg) => s.total_abs_turning.to_degrees() >= *deg,
            Predicate::StopsAtLeast(frames) => s.longest_stop >= *frames,
            Predicate::StopsAtMost(frames) => s.longest_stop <= *frames,
            Predicate::WiggleRatio { min, max } => {
                if s.displacement <= f32::EPSILON {
                    return false;
                }
                let r = s.path_length / s.displacement;
                r >= *min && r <= *max
            }
            Predicate::Not(p) => !p.eval(s),
            Predicate::All(ps) => ps.iter().all(|p| p.eval(s)),
            Predicate::Any(ps) => ps.iter().any(|p| p.eval(s)),
        }
    }

    /// Number of atomic predicates (for soft scoring).
    fn atoms(&self) -> usize {
        match self {
            Predicate::Not(p) => p.atoms(),
            Predicate::All(ps) | Predicate::Any(ps) => ps.iter().map(Predicate::atoms).sum(),
            _ => 1,
        }
    }

    /// Number of satisfied atomic predicates (soft score numerator). For
    /// `Any`, the best branch counts fully.
    fn satisfied(&self, s: &MotionStats) -> usize {
        match self {
            Predicate::Not(p) => {
                if !p.eval(s) {
                    p.atoms()
                } else {
                    0
                }
            }
            Predicate::All(ps) => ps.iter().map(|p| p.satisfied(s)).sum(),
            Predicate::Any(ps) => ps.iter().map(|p| p.satisfied(s)).max().unwrap_or(0),
            _ => {
                if self.eval(s) {
                    1
                } else {
                    0
                }
            }
        }
    }
}

/// A constraint between two objects of a multi-object rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Relation {
    /// Mean headings differ by 90° ± `tol_deg`.
    Perpendicular {
        /// First object slot.
        a: usize,
        /// Second object slot.
        b: usize,
        /// Tolerance (degrees).
        tol_deg: f32,
    },
    /// Mean headings differ by at most `tol_deg`.
    SameDirection {
        /// First object slot.
        a: usize,
        /// Second object slot.
        b: usize,
        /// Tolerance (degrees).
        tol_deg: f32,
    },
    /// Object `a`'s path length is at least `factor` times object `b`'s.
    FasterThan {
        /// Faster object slot.
        a: usize,
        /// Slower object slot.
        b: usize,
        /// Required path-length ratio.
        factor: f32,
    },
    /// The objects' centers come within `x` box-scale units at some frame.
    ComesWithin {
        /// First object slot.
        a: usize,
        /// Second object slot.
        b: usize,
        /// Distance bound in units of the mean box scale.
        scale_units: f32,
    },
}

impl Relation {
    fn eval(&self, tracks: &[&Trajectory], stats: &[MotionStats], start: u32, end: u32) -> bool {
        match *self {
            Relation::Perpendicular { a, b, tol_deg } => {
                let d = wrap_angle(stats[a].mean_heading - stats[b].mean_heading)
                    .abs()
                    .to_degrees();
                (d - 90.0).abs() <= tol_deg
            }
            Relation::SameDirection { a, b, tol_deg } => {
                wrap_angle(stats[a].mean_heading - stats[b].mean_heading)
                    .abs()
                    .to_degrees()
                    <= tol_deg
            }
            Relation::FasterThan { a, b, factor } => {
                stats[a].path_length >= stats[b].path_length * factor
            }
            Relation::ComesWithin { a, b, scale_units } => {
                let scale = 0.5 * (stats[a].box_scale + stats[b].box_scale);
                let mut f = start;
                while f <= end {
                    if let (Some(ba), Some(bb)) = (tracks[a].bbox_at(f), tracks[b].bbox_at(f)) {
                        if ba.center().distance(&bb.center()) <= scale_units * scale {
                            return true;
                        }
                    }
                    f += 2; // stride 2: proximity does not need every frame
                }
                false
            }
        }
    }
}

/// A full rule query: per-object class + predicates, plus cross-object
/// relations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleQuery {
    /// Per-object constraints, one entry per object slot.
    pub objects: Vec<(ObjectClass, Predicate)>,
    /// Cross-object constraints.
    pub relations: Vec<Relation>,
    /// Window length in frames the rule expects the event to span.
    pub window: u32,
}

/// Search parameters for rule evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleSearchConfig {
    /// Window stride as a fraction of the window.
    pub stride_frac: f32,
    /// Moments returned.
    pub top_k: usize,
    /// NMS temporal-IoU threshold.
    pub nms_tiou: f32,
    /// Minimum coverage of the window by each bound track.
    pub min_overlap_frac: f32,
}

impl Default for RuleSearchConfig {
    fn default() -> Self {
        RuleSearchConfig {
            stride_frac: 0.25,
            top_k: 10,
            nms_tiou: 0.45,
            min_overlap_frac: 0.5,
        }
    }
}

/// Evaluates a rule query over an indexed video, returning ranked moments.
/// The score of a moment is the fraction of satisfied atomic predicates
/// and relations (1.0 = rule fully satisfied), so partially matching
/// windows still rank.
pub fn evaluate_rule(
    index: &VideoIndex,
    rule: &RuleQuery,
    config: &RuleSearchConfig,
) -> Vec<RetrievedMoment> {
    if rule.objects.is_empty() || index.frames == 0 {
        return Vec::new();
    }
    let window = rule.window.clamp(8, index.frames.max(8));
    let stride = ((window as f32 * config.stride_frac) as u32).max(1);
    let min_overlap = ((window as f32 * config.min_overlap_frac) as u32).max(1);
    let total_atoms: usize =
        rule.objects.iter().map(|(_, p)| p.atoms()).sum::<usize>() + rule.relations.len();

    let mut scored = Vec::new();
    let mut start = 0u32;
    loop {
        let end = (start + window - 1).min(index.frames.saturating_sub(1));
        // Candidate tracks per slot.
        let per_slot: Vec<Vec<&Trajectory>> = rule
            .objects
            .iter()
            .map(|(class, _)| index.tracks_in_window(*class, start, end, min_overlap))
            .collect();
        if per_slot.iter().all(|s| !s.is_empty()) {
            let mut combo = vec![0usize; rule.objects.len()];
            let mut best: Option<RetrievedMoment> = None;
            let mut tried = 0;
            'combos: loop {
                let ids: Vec<u64> = combo
                    .iter()
                    .enumerate()
                    .map(|(s, &i)| per_slot[s][i].id)
                    .collect();
                let distinct = {
                    let mut sorted = ids.clone();
                    sorted.sort_unstable();
                    sorted.windows(2).all(|w| w[0] != w[1])
                };
                if distinct {
                    tried += 1;
                    let tracks: Vec<&Trajectory> = combo
                        .iter()
                        .enumerate()
                        .map(|(s, &i)| per_slot[s][i])
                        .collect();
                    let stats: Vec<MotionStats> =
                        tracks.iter().map(|t| motion_stats(t, start, end)).collect();
                    let mut satisfied = 0usize;
                    for ((_, pred), st) in rule.objects.iter().zip(&stats) {
                        satisfied += pred.satisfied(st);
                    }
                    for rel in &rule.relations {
                        if rel.eval(&tracks, &stats, start, end) {
                            satisfied += 1;
                        }
                    }
                    let score = satisfied as f32 / total_atoms.max(1) as f32;
                    if best.as_ref().is_none_or(|b| score > b.score) {
                        best = Some(RetrievedMoment {
                            start,
                            end,
                            score,
                            track_ids: ids,
                        });
                    }
                    if tried >= 64 {
                        break 'combos;
                    }
                }
                let mut slot = 0;
                loop {
                    combo[slot] += 1;
                    if combo[slot] < per_slot[slot].len() {
                        break;
                    }
                    combo[slot] = 0;
                    slot += 1;
                    if slot == combo.len() {
                        break 'combos;
                    }
                }
            }
            if let Some(m) = best {
                scored.push(m);
            }
        }
        if end + 1 >= index.frames {
            break;
        }
        start += stride;
    }

    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.start.cmp(&b.start))
    });
    let mut kept: Vec<RetrievedMoment> = Vec::new();
    for m in scored {
        if kept.len() >= config.top_k {
            break;
        }
        if !kept
            .iter()
            .any(|k| k.temporal_iou(&m) >= config.nms_tiou && k.track_ids == m.track_ids)
        {
            kept.push(m);
        }
    }
    kept
}

/// The rule an expert user would hand-write for each evaluation event.
///
/// These took genuine tuning to author (thresholds on turning angles, stop
/// lengths, wiggle ratios...) — which is precisely the paper's argument
/// for sketching instead.
pub fn expert_rule(kind: sketchql_datasets::EventKind) -> RuleQuery {
    use sketchql_datasets::EventKind as E;
    let car = ObjectClass::Car;
    let person = ObjectClass::Person;
    match kind {
        E::LeftTurn => RuleQuery {
            objects: vec![(
                car,
                Predicate::All(vec![
                    // Screen convention: left turns sweep negative angles.
                    Predicate::NetTurningDeg {
                        min: -150.0,
                        max: -40.0,
                    },
                    Predicate::MinDisplacement(2.0),
                    Predicate::StopsAtMost(20),
                ]),
            )],
            relations: vec![],
            window: 90,
        },
        E::RightTurn => RuleQuery {
            objects: vec![(
                car,
                Predicate::All(vec![
                    Predicate::NetTurningDeg {
                        min: 40.0,
                        max: 150.0,
                    },
                    Predicate::MinDisplacement(2.0),
                    Predicate::StopsAtMost(20),
                ]),
            )],
            relations: vec![],
            window: 90,
        },
        E::UTurn => RuleQuery {
            objects: vec![(
                car,
                Predicate::All(vec![
                    Predicate::Any(vec![
                        Predicate::NetTurningDeg {
                            min: -230.0,
                            max: -150.0,
                        },
                        Predicate::NetTurningDeg {
                            min: 150.0,
                            max: 230.0,
                        },
                    ]),
                    Predicate::MinDisplacement(1.0),
                ]),
            )],
            relations: vec![],
            window: 95,
        },
        E::StopAndGo => RuleQuery {
            objects: vec![(
                car,
                Predicate::All(vec![
                    Predicate::StopsAtLeast(15),
                    Predicate::MinDisplacement(2.0),
                    Predicate::NetTurningDeg {
                        min: -35.0,
                        max: 35.0,
                    },
                ]),
            )],
            relations: vec![],
            window: 90,
        },
        E::LaneChange => RuleQuery {
            objects: vec![(
                car,
                Predicate::All(vec![
                    Predicate::NetTurningDeg {
                        min: -25.0,
                        max: 25.0,
                    },
                    Predicate::MinTotalTurningDeg(40.0),
                    Predicate::MinDisplacement(2.5),
                    Predicate::StopsAtMost(10),
                    Predicate::WiggleRatio {
                        min: 1.0,
                        max: 1.15,
                    },
                ]),
            )],
            relations: vec![],
            window: 80,
        },
        E::PerpendicularCrossing => RuleQuery {
            objects: vec![
                (
                    car,
                    Predicate::All(vec![
                        Predicate::MinDisplacement(2.0),
                        Predicate::NetTurningDeg {
                            min: -30.0,
                            max: 30.0,
                        },
                    ]),
                ),
                (person, Predicate::MinDisplacement(1.0)),
            ],
            relations: vec![
                Relation::Perpendicular {
                    a: 0,
                    b: 1,
                    tol_deg: 30.0,
                },
                Relation::ComesWithin {
                    a: 0,
                    b: 1,
                    scale_units: 4.0,
                },
            ],
            window: 80,
        },
        E::Overtake => RuleQuery {
            objects: vec![
                (car, Predicate::MinDisplacement(3.0)),
                (car, Predicate::MinDisplacement(1.0)),
            ],
            relations: vec![
                Relation::SameDirection {
                    a: 0,
                    b: 1,
                    tol_deg: 25.0,
                },
                Relation::FasterThan {
                    a: 0,
                    b: 1,
                    factor: 1.5,
                },
                Relation::ComesWithin {
                    a: 0,
                    b: 1,
                    scale_units: 4.0,
                },
            ],
            window: 80,
        },
        E::Loiter => RuleQuery {
            objects: vec![(
                person,
                Predicate::All(vec![
                    Predicate::MaxDisplacement(3.0),
                    Predicate::WiggleRatio {
                        min: 1.4,
                        max: 50.0,
                    },
                    Predicate::StopsAtLeast(5),
                ]),
            )],
            relations: vec![],
            window: 75,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchql_datasets::EventKind;
    use sketchql_trajectory::{BBox, Clip, TrajPoint};

    fn straight_track(id: u64) -> Trajectory {
        Trajectory::from_points(
            id,
            ObjectClass::Car,
            (0..90)
                .map(|f| TrajPoint::new(f, BBox::new(100.0 + f as f32 * 5.0, 300.0, 60.0, 35.0)))
                .collect(),
        )
    }

    fn left_turn_track(id: u64) -> Trajectory {
        // Screen: right then up (y decreasing) — a vehicle's left turn.
        let mut pts = Vec::new();
        for f in 0..45u32 {
            pts.push(TrajPoint::new(
                f,
                BBox::new(100.0 + f as f32 * 6.0, 400.0, 60.0, 35.0),
            ));
        }
        for f in 45..90u32 {
            pts.push(TrajPoint::new(
                f,
                BBox::new(370.0, 400.0 - (f - 44) as f32 * 6.0, 40.0, 45.0),
            ));
        }
        Trajectory::from_points(id, ObjectClass::Car, pts)
    }

    #[test]
    fn motion_stats_straight_line() {
        let t = straight_track(1);
        let s = motion_stats(&t, 0, 89);
        assert_eq!(s.observations, 90);
        // Smoothing pulls the endpoints slightly inward.
        assert!((s.displacement - 445.0).abs() < 15.0);
        assert!(
            (s.path_length - s.displacement).abs() < 5.0,
            "straight path"
        );
        assert!(s.net_turning.abs() < 0.15);
        // Endpoint smoothing can register a frame or two of near-zero
        // velocity; no real stop exists.
        assert!(s.longest_stop <= 3, "longest stop {}", s.longest_stop);
    }

    #[test]
    fn motion_stats_detects_left_turn_sign() {
        let t = left_turn_track(1);
        let s = motion_stats(&t, 0, 89);
        let deg = s.net_turning.to_degrees();
        assert!(
            (-150.0..=-40.0).contains(&deg),
            "screen left turn should be ~-90°, got {deg}"
        );
    }

    #[test]
    fn motion_stats_detects_stops() {
        let mut pts = Vec::new();
        for f in 0..30u32 {
            pts.push(TrajPoint::new(
                f,
                BBox::new(f as f32 * 5.0, 300.0, 60.0, 35.0),
            ));
        }
        for f in 30..60u32 {
            pts.push(TrajPoint::new(f, BBox::new(145.0, 300.0, 60.0, 35.0)));
        }
        for f in 60..90u32 {
            pts.push(TrajPoint::new(
                f,
                BBox::new(145.0 + (f - 59) as f32 * 5.0, 300.0, 60.0, 35.0),
            ));
        }
        let t = Trajectory::from_points(1, ObjectClass::Car, pts);
        let s = motion_stats(&t, 0, 89);
        assert!(
            s.longest_stop >= 20,
            "stop of ~30 frames, got {}",
            s.longest_stop
        );
    }

    #[test]
    fn predicates_evaluate_and_count_atoms() {
        let s = motion_stats(&straight_track(1), 0, 89);
        let p = Predicate::All(vec![
            Predicate::MinDisplacement(2.0),
            Predicate::NetTurningDeg {
                min: -30.0,
                max: 30.0,
            },
            Predicate::Not(Box::new(Predicate::StopsAtLeast(10))),
        ]);
        assert!(p.eval(&s));
        assert_eq!(p.atoms(), 3);
        assert_eq!(p.satisfied(&s), 3);
        let bad = Predicate::All(vec![
            Predicate::MinDisplacement(2.0),
            Predicate::StopsAtLeast(10),
        ]);
        assert!(!bad.eval(&s));
        assert_eq!(bad.satisfied(&s), 1);
    }

    #[test]
    fn left_turn_rule_selects_turner_not_straight() {
        let clip = Clip::new(1280.0, 720.0, vec![left_turn_track(1), straight_track(2)]);
        let idx = VideoIndex::from_clip("r", &clip, 90, 30.0);
        let results = evaluate_rule(
            &idx,
            &expert_rule(EventKind::LeftTurn),
            &RuleSearchConfig::default(),
        );
        assert!(!results.is_empty());
        assert_eq!(results[0].track_ids, vec![1]);
        assert!(
            results[0].score > 0.99,
            "full rule match, got {}",
            results[0].score
        );
    }

    #[test]
    fn right_turn_rule_rejects_left_turner() {
        let clip = Clip::new(1280.0, 720.0, vec![left_turn_track(1)]);
        let idx = VideoIndex::from_clip("r", &clip, 90, 30.0);
        let results = evaluate_rule(
            &idx,
            &expert_rule(EventKind::RightTurn),
            &RuleSearchConfig::default(),
        );
        // Partial scores allowed, but nothing should fully satisfy.
        for m in &results {
            assert!(m.score < 0.99, "{m:?}");
        }
    }

    #[test]
    fn perpendicular_rule_needs_both_objects() {
        // Car horizontal, person vertical, crossing mid-window.
        let car = straight_track(1);
        let person = Trajectory::from_points(
            2,
            ObjectClass::Person,
            (0..90)
                .map(|f| TrajPoint::new(f, BBox::new(325.0, 100.0 + f as f32 * 4.5, 20.0, 50.0)))
                .collect(),
        );
        let clip = Clip::new(1280.0, 720.0, vec![car, person]);
        let idx = VideoIndex::from_clip("r", &clip, 90, 30.0);
        let results = evaluate_rule(
            &idx,
            &expert_rule(EventKind::PerpendicularCrossing),
            &RuleSearchConfig::default(),
        );
        assert!(!results.is_empty());
        let top = &results[0];
        assert_eq!(top.track_ids.len(), 2);
        assert!(top.score > 0.99, "{top:?}");
    }

    #[test]
    fn all_expert_rules_are_wellformed() {
        for &kind in EventKind::ALL {
            let rule = expert_rule(kind);
            assert_eq!(rule.objects.len(), kind.num_objects(), "{kind}");
            assert!(rule.window >= 16);
            for (class, pred) in &rule.objects {
                assert!(kind.participant_classes().contains(class));
                assert!(pred.atoms() >= 1);
            }
        }
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = VideoIndex::from_clip("e", &Clip::new(10.0, 10.0, vec![]), 0, 30.0);
        assert!(evaluate_rule(
            &idx,
            &expert_rule(EventKind::LeftTurn),
            &RuleSearchConfig::default()
        )
        .is_empty());
    }
}
