//! Axis-aligned bounding boxes in screen space.
//!
//! SketchQL operates on per-frame object bounding boxes rather than raw
//! pixels, so [`BBox`] is the atomic observation everywhere in the system:
//! tracker detections, simulator camera projections, and the sketcher's
//! canvas objects are all expressed as boxes.
//!
//! Boxes are stored center-based (`cx`, `cy`, `w`, `h`) because that is the
//! natural parameterization for both the Kalman filter used in tracking and
//! the feature vectors fed to the trajectory encoder.

use crate::geom::Point2;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box: center `(cx, cy)`, width `w`, height `h`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BBox {
    /// Center x coordinate.
    pub cx: f32,
    /// Center y coordinate.
    pub cy: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl BBox {
    /// Builds a box from its center and extents. Extents are clamped to be
    /// non-negative.
    pub fn new(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        BBox {
            cx,
            cy,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Builds a box from corner coordinates `(x1, y1)`..`(x2, y2)`. The
    /// corners may be given in any order.
    pub fn from_corners(x1: f32, y1: f32, x2: f32, y2: f32) -> Self {
        let (lo_x, hi_x) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let (lo_y, hi_y) = if y1 <= y2 { (y1, y2) } else { (y2, y1) };
        BBox::new(
            (lo_x + hi_x) * 0.5,
            (lo_y + hi_y) * 0.5,
            hi_x - lo_x,
            hi_y - lo_y,
        )
    }

    /// Box center as a point.
    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new(self.cx, self.cy)
    }

    /// Left edge x coordinate.
    #[inline]
    pub fn x1(&self) -> f32 {
        self.cx - self.w * 0.5
    }

    /// Top edge y coordinate.
    #[inline]
    pub fn y1(&self) -> f32 {
        self.cy - self.h * 0.5
    }

    /// Right edge x coordinate.
    #[inline]
    pub fn x2(&self) -> f32 {
        self.cx + self.w * 0.5
    }

    /// Bottom edge y coordinate.
    #[inline]
    pub fn y2(&self) -> f32 {
        self.cy + self.h * 0.5
    }

    /// Box area. Zero for degenerate boxes.
    #[inline]
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Aspect ratio `w / h`; returns 0 when the box has no height.
    #[inline]
    pub fn aspect(&self) -> f32 {
        if self.h <= f32::EPSILON {
            0.0
        } else {
            self.w / self.h
        }
    }

    /// Whether the box has strictly positive area.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.w > 0.0 && self.h > 0.0 && self.cx.is_finite() && self.cy.is_finite()
    }

    /// Intersection area with another box.
    pub fn intersection_area(&self, other: &BBox) -> f32 {
        let ix = (self.x2().min(other.x2()) - self.x1().max(other.x1())).max(0.0);
        let iy = (self.y2().min(other.y2()) - self.y1().max(other.y1())).max(0.0);
        ix * iy
    }

    /// Intersection-over-union in `[0, 1]`. Degenerate boxes yield 0.
    pub fn iou(&self, other: &BBox) -> f32 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= f32::EPSILON {
            0.0
        } else {
            inter / union
        }
    }

    /// Smallest box covering both boxes.
    pub fn union_bounds(&self, other: &BBox) -> BBox {
        BBox::from_corners(
            self.x1().min(other.x1()),
            self.y1().min(other.y1()),
            self.x2().max(other.x2()),
            self.y2().max(other.y2()),
        )
    }

    /// Whether a point falls inside (or on the edge of) the box.
    pub fn contains(&self, p: &Point2) -> bool {
        p.x >= self.x1() && p.x <= self.x2() && p.y >= self.y1() && p.y <= self.y2()
    }

    /// Translates the box by a vector.
    pub fn translated(&self, d: Point2) -> BBox {
        BBox::new(self.cx + d.x, self.cy + d.y, self.w, self.h)
    }

    /// Scales center and extents uniformly (used by clip normalization).
    pub fn scaled(&self, s: f32) -> BBox {
        BBox::new(self.cx * s, self.cy * s, self.w * s, self.h * s)
    }

    /// Clamps the box to the frame `[0, fw] x [0, fh]`, shrinking it as
    /// needed. Returns `None` if nothing remains visible.
    pub fn clamped(&self, fw: f32, fh: f32) -> Option<BBox> {
        let x1 = self.x1().max(0.0);
        let y1 = self.y1().max(0.0);
        let x2 = self.x2().min(fw);
        let y2 = self.y2().min(fh);
        if x2 - x1 <= f32::EPSILON || y2 - y1 <= f32::EPSILON {
            None
        } else {
            Some(BBox::from_corners(x1, y1, x2, y2))
        }
    }

    /// Component-wise linear interpolation (used for gap filling).
    pub fn lerp(&self, other: &BBox, t: f32) -> BBox {
        BBox::new(
            self.cx + (other.cx - self.cx) * t,
            self.cy + (other.cy - self.cy) * t,
            self.w + (other.w - self.w) * t,
            self.h + (other.h - self.h) * t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_round_trip() {
        let b = BBox::from_corners(10.0, 20.0, 30.0, 60.0);
        assert_eq!(b.x1(), 10.0);
        assert_eq!(b.y1(), 20.0);
        assert_eq!(b.x2(), 30.0);
        assert_eq!(b.y2(), 60.0);
        assert_eq!(b.cx, 20.0);
        assert_eq!(b.cy, 40.0);
    }

    #[test]
    fn corners_accept_any_order() {
        let b = BBox::from_corners(30.0, 60.0, 10.0, 20.0);
        assert_eq!(b.w, 20.0);
        assert_eq!(b.h, 40.0);
    }

    #[test]
    fn iou_identical_is_one() {
        let b = BBox::new(5.0, 5.0, 4.0, 4.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BBox::new(10.0, 10.0, 2.0, 2.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // Two 2x2 boxes offset by 1 in x: intersection 2, union 6.
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BBox::new(1.0, 0.0, 2.0, 2.0);
        assert!((a.iou(&b) - 2.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.0, 0.0, 3.0, 2.0);
        let b = BBox::new(1.0, 0.5, 2.0, 2.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-7);
    }

    #[test]
    fn degenerate_boxes_have_zero_iou() {
        let a = BBox::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(a.iou(&a), 0.0);
        assert!(!a.is_valid());
    }

    #[test]
    fn union_bounds_covers_both() {
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BBox::new(5.0, 5.0, 2.0, 2.0);
        let u = a.union_bounds(&b);
        assert!(u.iou(&a) > 0.0);
        assert!(u.iou(&b) > 0.0);
        assert_eq!(u.x1(), -1.0);
        assert_eq!(u.x2(), 6.0);
    }

    #[test]
    fn contains_center_and_corner() {
        let b = BBox::new(0.0, 0.0, 2.0, 2.0);
        assert!(b.contains(&Point2::new(0.0, 0.0)));
        assert!(b.contains(&Point2::new(1.0, 1.0)));
        assert!(!b.contains(&Point2::new(1.01, 0.0)));
    }

    #[test]
    fn clamp_inside_frame_is_identity() {
        let b = BBox::new(5.0, 5.0, 2.0, 2.0);
        assert_eq!(b.clamped(10.0, 10.0), Some(b));
    }

    #[test]
    fn clamp_partially_outside_shrinks() {
        let b = BBox::new(0.0, 5.0, 4.0, 2.0); // spans x in [-2, 2]
        let c = b.clamped(10.0, 10.0).unwrap();
        assert_eq!(c.x1(), 0.0);
        assert_eq!(c.x2(), 2.0);
        assert_eq!(c.w, 2.0);
    }

    #[test]
    fn clamp_fully_outside_is_none() {
        let b = BBox::new(-10.0, -10.0, 2.0, 2.0);
        assert_eq!(b.clamped(10.0, 10.0), None);
    }

    #[test]
    fn lerp_midpoint() {
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BBox::new(10.0, 10.0, 4.0, 6.0);
        let m = a.lerp(&b, 0.5);
        assert_eq!(m, BBox::new(5.0, 5.0, 3.0, 4.0));
    }

    #[test]
    fn translate_and_scale() {
        let b = BBox::new(1.0, 1.0, 2.0, 2.0);
        let t = b.translated(Point2::new(1.0, -1.0));
        assert_eq!(t.center(), Point2::new(2.0, 0.0));
        let s = b.scaled(2.0);
        assert_eq!(s, BBox::new(2.0, 2.0, 4.0, 4.0));
    }
}
