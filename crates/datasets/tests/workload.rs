//! Integration checks of the dataset generator against the query sketches:
//! every canonical sketch must actually resemble its own ground-truth
//! events more than other kinds under a classical measure, which validates
//! the workload design independent of any learned model.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql_datasets::{generate_video, query_clip, EventKind, SceneFamily, VideoConfig};
use sketchql_trajectory::{clip_distance, Clip, DistanceKind};

#[test]
fn sketches_are_closer_to_their_own_events_on_average() {
    let cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind: 2,
        distractors: 0,
        fps: 30.0,
    };
    let v = generate_video(cfg, 9102, &mut StdRng::seed_from_u64(9102));

    // Single-object kinds where a raw DTW on normalized paths is already
    // informative (multi-object and stop-heavy kinds need the learned
    // similarity).
    let kinds = [EventKind::LeftTurn, EventKind::RightTurn, EventKind::UTurn];
    let event_clip = |kind: EventKind, occurrence: usize| -> Clip {
        let ann = v.events_of(kind)[occurrence];
        let objs = ann
            .object_ids
            .iter()
            .map(|&id| {
                v.truth.objects[id as usize]
                    .slice(ann.start, ann.end)
                    .rebase(0)
            })
            .collect();
        Clip::new(v.truth.frame_width, v.truth.frame_height, objs)
    };

    let mut own_better = 0;
    let mut total = 0;
    for &qk in &kinds {
        let q = query_clip(qk);
        for occ in 0..2 {
            let own = clip_distance(DistanceKind::Dtw, &q, &event_clip(qk, occ));
            for &ok in &kinds {
                if ok == qk {
                    continue;
                }
                for other_occ in 0..2 {
                    total += 1;
                    let other = clip_distance(DistanceKind::Dtw, &q, &event_clip(ok, other_occ));
                    if own < other {
                        own_better += 1;
                    }
                }
            }
        }
    }
    // The workload must be learnable: matching events win most comparisons.
    assert!(
        own_better * 3 >= total * 2,
        "sketches should resemble their own events: {own_better}/{total}"
    );
}

#[test]
fn every_family_produces_all_kinds_reproducibly() {
    for family in SceneFamily::ALL {
        let cfg = VideoConfig {
            family: *family,
            events_per_kind: 1,
            distractors: 1,
            fps: 30.0,
        };
        let a = generate_video(cfg, 42, &mut StdRng::seed_from_u64(42));
        let b = generate_video(cfg, 42, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.events, b.events, "{family:?}");
        for &kind in EventKind::ALL {
            assert_eq!(a.events_of(kind).len(), 1, "{family:?}/{kind}");
        }
    }
}
