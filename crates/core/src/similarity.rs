//! Clip similarity functions: the learned encoder and classical baselines
//! behind one interface.
//!
//! The Matcher is generic over a [`Similarity`] so experiments can swap the
//! paper's learned similarity against DTW/Fréchet/etc. baselines without
//! touching the search loop. Queries are `prepare`d once (for the learned
//! similarity this embeds the query a single time) and scored against many
//! candidate windows.
//!
//! Embedding-based similarities additionally expose a *batched* candidate
//! path ([`Similarity::embed_candidates`] + [`Similarity::score_embedding`])
//! so the Matcher can embed each distinct candidate segment exactly once
//! per search and push whole batches through the encoder in one forward.

use sketchql_nn::{cosine_similarity, ParamStore, TrajectoryEncoder};
use sketchql_telemetry::{self as telemetry, names};
use sketchql_trajectory::{
    clip_distance, distance_to_similarity, extract_features, Clip, DistanceKind, FeatureError,
};
use std::fmt;
use std::sync::OnceLock;

/// Largest number of candidate clips stacked into one batched encoder
/// forward. Bounds peak memory of the stacked activation tensors.
const MAX_EMBED_BATCH: usize = 64;

/// Bucket bounds for the embed-batch-size histogram.
const BATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Cached handle for the similarity-eval counter: `score` runs once per
/// candidate combination, so the registry lookup is paid only once per
/// process instead of per call.
fn evals_counter() -> &'static telemetry::Counter {
    static C: OnceLock<&'static telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| telemetry::counter(names::SIMILARITY_EVALS))
}

/// Cached handle for the embedding counter (see [`evals_counter`]).
fn embeds_counter() -> &'static telemetry::Counter {
    static C: OnceLock<&'static telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| telemetry::counter(names::EMBEDDINGS_COMPUTED))
}

/// Cached handle for the embed-batch-size histogram.
fn batch_histogram() -> &'static telemetry::Histogram {
    static H: OnceLock<&'static telemetry::Histogram> = OnceLock::new();
    H.get_or_init(|| telemetry::histogram(names::EMBED_BATCH_SIZE, BATCH_BOUNDS))
}

/// Errors from preparing a query for similarity search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimilarityError {
    /// The query clip was rejected by the learned encoder's feature
    /// extractor (empty, or more objects than the encoder supports).
    /// Surfaced instead of silently scoring every candidate 0.0.
    QueryFeatures(FeatureError),
}

impl fmt::Display for SimilarityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimilarityError::QueryFeatures(e) => {
                write!(f, "query cannot be embedded: {e}")
            }
        }
    }
}

impl std::error::Error for SimilarityError {}

/// A prepared (pre-processed) query, produced by [`Similarity::prepare`].
#[derive(Debug, Clone)]
pub enum PreparedQuery {
    /// The query's embedding vector (learned similarity).
    Embedding(Vec<f32>),
    /// The raw query clip (classical distances re-align per candidate).
    Clip(Clip),
}

/// A similarity measure between a visual query and a candidate video clip.
/// Scores are in `[0, 1]`, higher = more similar.
pub trait Similarity: Send + Sync {
    /// Short name used in experiment tables.
    fn name(&self) -> String;

    /// Pre-processes the query once. Fails when the query itself cannot be
    /// scored by this similarity (e.g. the learned encoder rejects it); a
    /// failed prepare means *every* candidate would score 0.0, so callers
    /// surface the error instead of returning silently-empty results.
    fn prepare(&self, query: &Clip) -> Result<PreparedQuery, SimilarityError>;

    /// Scores a candidate clip against a prepared query.
    fn score(&self, prepared: &PreparedQuery, candidate: &Clip) -> f32;

    /// Convenience: prepare + score in one call (0.0 when prepare fails).
    fn score_pair(&self, query: &Clip, candidate: &Clip) -> f32 {
        match self.prepare(query) {
            Ok(p) => self.score(&p, candidate),
            Err(_) => 0.0,
        }
    }

    /// Whether candidates can be scored from precomputed embeddings via
    /// [`embed_candidates`](Self::embed_candidates) +
    /// [`score_embedding`](Self::score_embedding). When `false` the
    /// Matcher's per-search embedding cache is bypassed.
    fn uses_embeddings(&self) -> bool {
        false
    }

    /// Embeds a batch of candidate clips, one `Option` per input clip
    /// (`None` where the clip cannot be embedded). The default
    /// implementation embeds nothing.
    fn embed_candidates(&self, clips: &[Clip]) -> Vec<Option<Vec<f32>>> {
        clips.iter().map(|_| None).collect()
    }

    /// Scores a candidate from its precomputed embedding (`None` when the
    /// candidate could not be embedded). Must agree exactly with
    /// [`score`](Self::score) on the same candidate.
    fn score_embedding(&self, _prepared: &PreparedQuery, _embedding: Option<&[f32]>) -> f32 {
        0.0
    }
}

/// The paper's learned similarity: transformer embeddings + cosine.
pub struct LearnedSimilarity {
    /// The trained encoder (architecture + hyper-parameters).
    pub encoder: TrajectoryEncoder,
    /// The encoder's trained weights.
    pub store: ParamStore,
}

impl LearnedSimilarity {
    /// Wraps a trained encoder.
    pub fn new(encoder: TrajectoryEncoder, store: ParamStore) -> Self {
        LearnedSimilarity { encoder, store }
    }

    /// Embeds a clip into the encoder's unit-norm embedding space, or the
    /// reason the feature extractor rejected it (empty clip, too many
    /// objects).
    pub fn try_embed(&self, clip: &Clip) -> Result<Vec<f32>, FeatureError> {
        let steps = self.encoder.config.steps;
        let feats = extract_features(clip, steps)?;
        let t = sketchql_nn::Tensor::from_vec(steps, feats.data.len() / steps, feats.data);
        embeds_counter().inc();
        Ok(self.encoder.embed(&self.store, &t))
    }

    /// Embeds a clip into the encoder's unit-norm embedding space.
    /// Returns `None` for clips the feature extractor rejects (empty or
    /// too many objects).
    pub fn embed(&self, clip: &Clip) -> Option<Vec<f32>> {
        self.try_embed(clip).ok()
    }
}

impl Similarity for LearnedSimilarity {
    fn name(&self) -> String {
        "sketchql".to_string()
    }

    fn prepare(&self, query: &Clip) -> Result<PreparedQuery, SimilarityError> {
        self.try_embed(query)
            .map(PreparedQuery::Embedding)
            .map_err(SimilarityError::QueryFeatures)
    }

    fn score(&self, prepared: &PreparedQuery, candidate: &Clip) -> f32 {
        evals_counter().inc();
        let PreparedQuery::Embedding(qe) = prepared else {
            return 0.0;
        };
        match self.embed(candidate) {
            // Map cosine in [-1, 1] to [0, 1].
            Some(ce) => (cosine_similarity(qe, &ce) + 1.0) * 0.5,
            None => 0.0,
        }
    }

    fn uses_embeddings(&self) -> bool {
        true
    }

    fn embed_candidates(&self, clips: &[Clip]) -> Vec<Option<Vec<f32>>> {
        let steps = self.encoder.config.steps;
        let mut out: Vec<Option<Vec<f32>>> = vec![None; clips.len()];
        // Feature-extract everything first; rejected clips stay `None` and
        // are excluded from the batches.
        let feats: Vec<Option<sketchql_nn::Tensor>> = clips
            .iter()
            .map(|c| {
                extract_features(c, steps).ok().map(|f| {
                    let cols = f.data.len() / steps;
                    sketchql_nn::Tensor::from_vec(steps, cols, f.data)
                })
            })
            .collect();
        let embeddable: Vec<usize> = feats
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|_| i))
            .collect();
        for chunk in embeddable.chunks(MAX_EMBED_BATCH) {
            let refs: Vec<&sketchql_nn::Tensor> = chunk
                .iter()
                .map(|&i| feats[i].as_ref().expect("chunk holds embeddable indices"))
                .collect();
            batch_histogram().observe(refs.len() as f64);
            let embeddings = self.encoder.embed_batch(&self.store, &refs);
            embeds_counter().add(refs.len() as u64);
            for (&i, e) in chunk.iter().zip(embeddings) {
                out[i] = Some(e);
            }
        }
        out
    }

    fn score_embedding(&self, prepared: &PreparedQuery, embedding: Option<&[f32]>) -> f32 {
        evals_counter().inc();
        let PreparedQuery::Embedding(qe) = prepared else {
            return 0.0;
        };
        match embedding {
            Some(ce) => (cosine_similarity(qe, ce) + 1.0) * 0.5,
            None => 0.0,
        }
    }
}

/// A classical trajectory-distance baseline lifted to clip similarity.
pub struct ClassicalSimilarity {
    /// Which distance to apply.
    pub kind: DistanceKind,
    /// Scale applied to distances before converting to similarity; the
    /// canonical clips live in the unit square, so distances are O(0.1).
    pub distance_scale: f32,
}

impl ClassicalSimilarity {
    /// A baseline using `kind` with the default distance scale.
    pub fn new(kind: DistanceKind) -> Self {
        ClassicalSimilarity {
            kind,
            distance_scale: 8.0,
        }
    }
}

impl Similarity for ClassicalSimilarity {
    fn name(&self) -> String {
        self.kind.name().to_string()
    }

    fn prepare(&self, query: &Clip) -> Result<PreparedQuery, SimilarityError> {
        Ok(PreparedQuery::Clip(query.clone()))
    }

    fn score(&self, prepared: &PreparedQuery, candidate: &Clip) -> f32 {
        evals_counter().inc();
        let PreparedQuery::Clip(q) = prepared else {
            return 0.0;
        };
        let d = clip_distance(self.kind, q, candidate);
        distance_to_similarity(d * self.distance_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketchql_nn::EncoderConfig;
    use sketchql_trajectory::{BBox, ObjectClass, TrajPoint, Trajectory, TOKEN_DIM};

    fn clip_line(slope: f32) -> Clip {
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..24)
                .map(|f| {
                    TrajPoint::new(
                        f,
                        BBox::new(f as f32 * 5.0, 200.0 + f as f32 * slope, 30.0, 20.0),
                    )
                })
                .collect(),
        );
        Clip::new(640.0, 480.0, vec![t])
    }

    fn untrained_learned() -> LearnedSimilarity {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = EncoderConfig {
            input_dim: TOKEN_DIM,
            steps: 16,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut rng, "enc", cfg);
        LearnedSimilarity::new(enc, store)
    }

    #[test]
    fn learned_scores_self_highest() {
        let sim = untrained_learned();
        let a = clip_line(0.0);
        let b = clip_line(8.0);
        let p = sim.prepare(&a).unwrap();
        let saa = sim.score(&p, &a);
        let sab = sim.score(&p, &b);
        assert!(
            (saa - 1.0).abs() < 1e-4,
            "self-similarity should be 1, got {saa}"
        );
        assert!(sab <= saa + 1e-5);
        assert!((0.0..=1.0).contains(&sab));
    }

    #[test]
    fn learned_handles_empty_candidate() {
        let sim = untrained_learned();
        let p = sim.prepare(&clip_line(0.0)).unwrap();
        let empty = Clip::new(10.0, 10.0, vec![]);
        assert_eq!(sim.score(&p, &empty), 0.0);
    }

    #[test]
    fn learned_prepare_rejects_unembeddable_queries() {
        let sim = untrained_learned();
        let empty = Clip::new(10.0, 10.0, vec![]);
        assert!(matches!(
            sim.prepare(&empty),
            Err(SimilarityError::QueryFeatures(FeatureError::EmptyClip)),
        ));
        let base = clip_line(0.0);
        let crowd = Clip::new(
            640.0,
            480.0,
            (0..5).map(|_| base.objects[0].clone()).collect(),
        );
        assert!(matches!(
            sim.prepare(&crowd),
            Err(SimilarityError::QueryFeatures(
                FeatureError::TooManyObjects { got: 5, .. }
            )),
        ));
    }

    #[test]
    fn embed_candidates_matches_scalar_embed() {
        let sim = untrained_learned();
        let clips = vec![
            clip_line(0.0),
            Clip::new(10.0, 10.0, vec![]), // rejected: stays None
            clip_line(4.0),
            clip_line(-2.0),
        ];
        let batched = sim.embed_candidates(&clips);
        assert_eq!(batched.len(), clips.len());
        assert!(batched[1].is_none());
        for (clip, emb) in clips.iter().zip(&batched) {
            assert_eq!(&sim.embed(clip), emb, "batched embedding must be exact");
        }
    }

    #[test]
    fn score_embedding_agrees_with_score() {
        let sim = untrained_learned();
        let query = clip_line(1.0);
        let p = sim.prepare(&query).unwrap();
        let candidates = vec![clip_line(0.0), clip_line(8.0), clip_line(-3.0)];
        let embeddings = sim.embed_candidates(&candidates);
        for (c, e) in candidates.iter().zip(&embeddings) {
            assert_eq!(sim.score(&p, c), sim.score_embedding(&p, e.as_deref()));
        }
        assert_eq!(sim.score_embedding(&p, None), 0.0);
    }

    #[test]
    fn classical_scores_self_as_one() {
        for &k in DistanceKind::ALL {
            let sim = ClassicalSimilarity::new(k);
            let a = clip_line(2.0);
            let s = sim.score_pair(&a, &a);
            assert!((s - 1.0).abs() < 1e-3, "{k:?} self-score {s}");
        }
    }

    #[test]
    fn classical_ranks_similar_above_dissimilar() {
        let sim = ClassicalSimilarity::new(DistanceKind::Dtw);
        let straight = clip_line(0.0);
        let nearly_straight = clip_line(0.3);
        let diagonal = clip_line(6.0);
        let p = sim.prepare(&straight).unwrap();
        assert!(sim.score(&p, &nearly_straight) > sim.score(&p, &diagonal));
    }

    #[test]
    fn arity_mismatch_scores_zero_for_classical() {
        let sim = ClassicalSimilarity::new(DistanceKind::Euclidean);
        let one = clip_line(0.0);
        let two = Clip::new(
            640.0,
            480.0,
            vec![one.objects[0].clone(), one.objects[0].clone()],
        );
        assert_eq!(sim.score_pair(&one, &two), 0.0);
    }

    #[test]
    fn names_are_distinct() {
        let mut names = std::collections::HashSet::new();
        names.insert(untrained_learned().name());
        for &k in DistanceKind::ALL {
            names.insert(ClassicalSimilarity::new(k).name());
        }
        assert_eq!(names.len(), DistanceKind::ALL.len() + 1);
    }
}
