//! Per-search embedding memoization for the Matcher hot path.
//!
//! A sliding-window search enumerates (window × object-combination)
//! candidates, and the same candidate *segment* — the same tracks sliced
//! to the same frame range — recurs across window scales (clamped scales
//! collapse to identical windows) and across overlapping strides. With
//! the learned similarity each recurrence used to pay a full encoder
//! forward. [`EmbedCache`] interns each distinct segment exactly once per
//! search, so the encoder runs once per *unique* candidate, and the
//! unique clips can then be embedded in large batches
//! ([`embed_clips_parallel`]) instead of one forward per candidate.
//!
//! The cache is scoped to one `Matcher::search` call: embeddings depend
//! only on `(track ids in slot order, start, end)` for a fixed index and
//! model, so no cross-query invalidation is needed and memory is released
//! when the search returns.

use std::collections::HashMap;

use sketchql_trajectory::{Clip, TrackId};

use crate::cancel::{CancelReason, CancelToken};
use crate::similarity::Similarity;

/// A candidate segment: the bound tracks in query-slot order plus the
/// window's frame range. Slot order matters — feature extraction assigns
/// objects to encoder slots by (class, input order), so permuting tracks
/// of the same class changes the features.
type SegmentKey = (Vec<TrackId>, u32, u32);

/// Interns candidate segments so each distinct one is built and embedded
/// exactly once per search.
#[derive(Debug, Default)]
pub struct EmbedCache {
    /// Segment → index into `clips`, or `None` for known-empty segments.
    map: HashMap<SegmentKey, Option<u32>>,
    clips: Vec<Clip>,
    hits: u64,
    misses: u64,
}

impl EmbedCache {
    /// An empty cache.
    pub fn new() -> Self {
        EmbedCache::default()
    }

    /// Interns the segment `(track_ids, start, end)`, building its clip
    /// with `build` only on first sight. Returns the segment's slot in
    /// [`clips`](Self::clips), or `None` if its clip is empty (empty
    /// candidates are never scored).
    pub fn intern(
        &mut self,
        track_ids: &[TrackId],
        start: u32,
        end: u32,
        build: impl FnOnce() -> Clip,
    ) -> Option<u32> {
        let key = (track_ids.to_vec(), start, end);
        if let Some(&slot) = self.map.get(&key) {
            self.hits += 1;
            return slot;
        }
        self.misses += 1;
        let clip = build();
        let slot = if clip.is_empty() {
            None
        } else {
            self.clips.push(clip);
            Some((self.clips.len() - 1) as u32)
        };
        self.map.insert(key, slot);
        slot
    }

    /// The unique non-empty candidate clips, in first-seen order. Slot
    /// indices returned by [`intern`](Self::intern) index into this.
    pub fn clips(&self) -> &[Clip] {
        &self.clips
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to build (and later embed) a new segment.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct non-empty segments interned.
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// Whether no non-empty segment has been interned.
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }
}

/// Clips fed to the encoder between cancellation polls. Matches the
/// encoder's internal batch cap, so a tripped token aborts after at most
/// one batched forward.
const CANCEL_POLL_CLIPS: usize = 64;

/// Embeds `clips` via [`Similarity::embed_candidates`], splitting the
/// batch across `threads` worker threads. Output order matches input
/// order, and the embeddings are identical regardless of thread count
/// (batched encoder forwards are bit-identical to scalar ones).
pub fn embed_clips_parallel<S: Similarity>(
    sim: &S,
    clips: &[Clip],
    threads: usize,
) -> Vec<Option<Vec<f32>>> {
    match try_embed_clips_parallel(sim, clips, threads, &CancelToken::none()) {
        Ok(out) => out,
        Err(_) => unreachable!("null token never cancels"),
    }
}

/// [`embed_clips_parallel`] with cooperative cancellation: `cancel` is
/// polled between encoder batches (on every worker thread), so a tripped
/// token abandons the remaining batches promptly. Embedding values are
/// unchanged — batched encoder forwards are bit-identical regardless of
/// how the input is chunked.
pub fn try_embed_clips_parallel<S: Similarity>(
    sim: &S,
    clips: &[Clip],
    threads: usize,
    cancel: &CancelToken,
) -> Result<Vec<Option<Vec<f32>>>, CancelReason> {
    let embed_piece = |piece: &[Clip]| -> Result<Vec<Option<Vec<f32>>>, CancelReason> {
        let mut out = Vec::with_capacity(piece.len());
        for sub in piece.chunks(CANCEL_POLL_CLIPS) {
            cancel.check()?;
            out.extend(sim.embed_candidates(sub));
        }
        Ok(out)
    };
    let threads = threads.max(1);
    if threads == 1 || clips.len() < 2 * threads {
        return embed_piece(clips);
    }
    let chunk = clips.len().div_ceil(threads);
    // Hand the calling thread's live traces to the workers so encoder
    // CPU and allocations attribute to the query being embedded.
    let entered = sketchql_telemetry::TraceContext::entered();
    let pieces: Vec<Result<Vec<Option<Vec<f32>>>, CancelReason>> = std::thread::scope(|scope| {
        let embed_piece = &embed_piece;
        let entered = &entered;
        let handles: Vec<_> = clips
            .chunks(chunk)
            .map(|piece| {
                scope.spawn(move || {
                    let _attribution: Vec<_> = entered.iter().map(|t| t.enter()).collect();
                    embed_piece(piece)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("embedding worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(clips.len());
    for piece in pieces {
        out.extend(piece?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchql_trajectory::{BBox, ObjectClass, TrajPoint, Trajectory};

    fn clip(seed: f32) -> Clip {
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..20)
                .map(|f| TrajPoint::new(f, BBox::new(f as f32 * seed, 100.0, 30.0, 20.0)))
                .collect(),
        );
        Clip::new(640.0, 480.0, vec![t])
    }

    #[test]
    fn intern_builds_each_segment_once() {
        let mut cache = EmbedCache::new();
        let mut builds = 0usize;
        let a = cache.intern(&[1, 2], 0, 10, || {
            builds += 1;
            clip(2.0)
        });
        let b = cache.intern(&[1, 2], 0, 10, || {
            builds += 1;
            clip(2.0)
        });
        assert_eq!(a, b);
        assert_eq!(builds, 1, "second intern must be served from the cache");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_segments_get_distinct_slots() {
        let mut cache = EmbedCache::new();
        let a = cache.intern(&[1], 0, 10, || clip(1.0));
        let b = cache.intern(&[1], 5, 15, || clip(2.0));
        let c = cache.intern(&[2], 0, 10, || clip(3.0));
        // Slot order of the bound tracks is part of the key.
        let d = cache.intern(&[2, 1], 0, 10, || clip(4.0));
        let e = cache.intern(&[1, 2], 0, 10, || clip(5.0));
        let slots = [a, b, c, d, e];
        assert!(slots.iter().all(Option::is_some));
        let distinct: std::collections::HashSet<_> = slots.iter().collect();
        assert_eq!(distinct.len(), slots.len());
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn empty_clips_are_remembered_but_not_stored() {
        let mut cache = EmbedCache::new();
        let mut builds = 0usize;
        for _ in 0..3 {
            let slot = cache.intern(&[7], 0, 5, || {
                builds += 1;
                Clip::new(10.0, 10.0, vec![])
            });
            assert_eq!(slot, None);
        }
        assert_eq!(builds, 1, "known-empty segments are not rebuilt");
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
    }
}
