//! The wire protocol: line-delimited JSON over TCP.
//!
//! One request per line, one response line per request, in order. Both
//! sides are plain externally-tagged serde enums, so a session looks
//! like:
//!
//! ```text
//! → "Ping"
//! ← {"Pong":{"version":3}}
//! → {"Query":{"dataset":"traffic","event":"left_turn","clip":null,"top_k":5,"deadline_ms":2000,"trace_id":181696028373}}
//! ← {"Moments":{"moments":[...],"queue_wait_ms":0,"execute_ms":41,"batch_size":1,"trace_id":181696028373}}
//! ```
//!
//! Requests carry every field (absent options are `null`), with one
//! deliberate exception: [`Request`] uses a hand-written deserializer
//! that tolerates a *missing* `trace_id` on `Query` and missing fields
//! on `Trace`, so protocol-version-2 clients (which predate tracing)
//! keep working against a version-3 server. Response enums still use
//! the derived deserializer, which ignores unknown fields — a v2
//! client simply never looks at `Moments.trace_id`. A request the
//! server cannot parse is answered with [`Response::Error`] of kind
//! [`ErrorKind::BadRequest`] — the connection stays usable.
//!
//! [`Request::Query`] names its sketch either by `event` (a canonical
//! event query from the datasets crate, e.g. `"left_turn"`) or by an
//! inline `clip` (a full compiled sketch). Exactly one must be non-null;
//! `clip` wins if both are.
//!
//! Trace ids are 48-bit integers (see
//! [`sketchql_telemetry::mint_trace_id`]) so they survive JSON numbers
//! stored as `f64`.

use serde::{DeError, Deserialize, Serialize, Value};
use sketchql::RetrievedMoment;
use sketchql_trajectory::Clip;

use crate::engine::{DatasetInfo, EngineError, EngineStats};

/// Bumped on incompatible wire changes; echoed by [`Response::Pong`].
/// Version 2 added store-effectiveness fields to `Stats` and the
/// `stored` flag to dataset listings. Version 3 added end-to-end
/// tracing: `trace_id` on `Query`/`Moments`, and the `Trace` and
/// `Metrics` requests (v2 clients still parse and round-trip).
/// Version 4 added resource attribution and profiling: the `Profile`
/// request, `alloc_bytes`/`alloc_count`/`cpu_nanos` on [`WireTrace`]
/// (absent fields read as 0, so v4 clients also parse v3 traces), and
/// per-dataset traffic in `Stats` (v3 clients ignore the new fields).
/// Version 5 added scheduling: `class`/`priority` on `Query` (absent
/// fields read as the server's defaults, so v4 queries still parse),
/// the `RateLimited` error kind, and per-class queue diagnostics in
/// `Stats` (v4 clients ignore them).
/// Version 6 added live monitoring: the `Register`/`Unregister`/
/// `Notifications` requests for standing queries over appended ingest
/// epochs, and their `Registered`/`Unregistered`/`Notifications`
/// responses. v5 clients never send the new requests and ignore the
/// new response variants, so both directions stay compatible.
pub const PROTOCOL_VERSION: u32 = 6;

/// A client request: one JSON value per line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// List loaded datasets.
    ListDatasets,
    /// Engine queue/traffic statistics.
    Stats,
    /// Execute a moment query.
    Query {
        /// Dataset to search.
        dataset: String,
        /// Canonical event query name (e.g. `"left_turn"`), or null.
        event: Option<String>,
        /// Inline query clip, or null. Takes precedence over `event`.
        clip: Option<Clip>,
        /// Truncate results to this many moments, or null for the
        /// server's configured top-k.
        top_k: Option<usize>,
        /// Per-query deadline in milliseconds, or null for the server's
        /// default policy.
        deadline_ms: Option<u64>,
        /// Client-minted trace id (48-bit, nonzero), or null/absent to
        /// let the server mint one. v2 clients omit the field entirely.
        trace_id: Option<u64>,
        /// Admission class (see `SchedPolicy`), or null/absent for the
        /// server's default class. v4 clients omit the field entirely.
        class: Option<String>,
        /// Base priority override (higher runs first), or null/absent
        /// for the class default. v4 clients omit the field entirely.
        priority: Option<i32>,
    },
    /// Fetch query traces from the server's flight recorder.
    Trace {
        /// A specific trace id, or null for the most recent traces.
        trace_id: Option<u64>,
        /// At most this many traces (server default when null).
        limit: Option<usize>,
    },
    /// Fetch the full metric registry in Prometheus text format.
    Metrics,
    /// Collect a folded-stack profile from the sampling profiler.
    Profile {
        /// Sample for this many seconds (blocking this connection), or
        /// null/0 for a snapshot of the server's continuous profiler.
        /// The server caps the window (60 s).
        seconds: Option<u64>,
        /// Sampling rate in Hz, or null for the server default.
        hz: Option<u64>,
    },
    /// Register a standing query: evaluated against every ingest epoch
    /// appended to the dataset after registration, with matches queued
    /// for [`Request::Notifications`].
    Register {
        /// Dataset to monitor (must have an embedding store attached).
        dataset: String,
        /// Canonical event query name, or null (same rules as `Query`).
        event: Option<String>,
        /// Inline query clip, or null. Takes precedence over `event`.
        clip: Option<Clip>,
        /// Drop matches scoring below this, or null/absent to keep all.
        min_score: Option<f32>,
        /// Per-epoch result cap, or null/absent for the server default.
        top_k: Option<usize>,
    },
    /// Remove a standing query; pending notifications are discarded.
    Unregister {
        /// The id [`Response::Registered`] handed back.
        registration_id: u64,
    },
    /// Drain queued matches for a standing query (oldest first).
    Notifications {
        /// The id [`Response::Registered`] handed back.
        registration_id: u64,
        /// Drain at most this many matches, or null/absent for all.
        max: Option<usize>,
    },
    /// Ask the server process to shut down gracefully.
    Shutdown,
}

pub(crate) fn obj(v: &Value, what: &str) -> Result<Vec<(String, Value)>, DeError> {
    match v {
        Value::Obj(fields) => Ok(fields.clone()),
        other => Err(DeError::expected(what, other)),
    }
}

pub(crate) fn field<T: Deserialize>(fields: &[(String, Value)], key: &str) -> Result<T, DeError> {
    let v = fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field {key:?}")))?;
    T::from_value(v)
}

/// Like [`field`], but an *absent* key deserializes as `None` — the
/// compatibility hook that lets v2 requests omit trace fields.
pub(crate) fn opt_field<T: Deserialize>(
    fields: &[(String, Value)],
    key: &str,
) -> Result<Option<T>, DeError> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Value::Null)) | None => Ok(None),
        Some((_, v)) => T::from_value(v).map(Some),
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Ping => Value::Str("Ping".into()),
            Request::ListDatasets => Value::Str("ListDatasets".into()),
            Request::Stats => Value::Str("Stats".into()),
            Request::Metrics => Value::Str("Metrics".into()),
            Request::Shutdown => Value::Str("Shutdown".into()),
            Request::Query {
                dataset,
                event,
                clip,
                top_k,
                deadline_ms,
                trace_id,
                class,
                priority,
            } => Value::Obj(vec![(
                "Query".into(),
                Value::Obj(vec![
                    ("dataset".into(), dataset.to_value()),
                    ("event".into(), event.to_value()),
                    ("clip".into(), clip.to_value()),
                    ("top_k".into(), top_k.to_value()),
                    ("deadline_ms".into(), deadline_ms.to_value()),
                    ("trace_id".into(), trace_id.to_value()),
                    ("class".into(), class.to_value()),
                    ("priority".into(), priority.to_value()),
                ]),
            )]),
            Request::Trace { trace_id, limit } => Value::Obj(vec![(
                "Trace".into(),
                Value::Obj(vec![
                    ("trace_id".into(), trace_id.to_value()),
                    ("limit".into(), limit.to_value()),
                ]),
            )]),
            Request::Profile { seconds, hz } => Value::Obj(vec![(
                "Profile".into(),
                Value::Obj(vec![
                    ("seconds".into(), seconds.to_value()),
                    ("hz".into(), hz.to_value()),
                ]),
            )]),
            Request::Register {
                dataset,
                event,
                clip,
                min_score,
                top_k,
            } => Value::Obj(vec![(
                "Register".into(),
                Value::Obj(vec![
                    ("dataset".into(), dataset.to_value()),
                    ("event".into(), event.to_value()),
                    ("clip".into(), clip.to_value()),
                    ("min_score".into(), min_score.to_value()),
                    ("top_k".into(), top_k.to_value()),
                ]),
            )]),
            Request::Unregister { registration_id } => Value::Obj(vec![(
                "Unregister".into(),
                Value::Obj(vec![("registration_id".into(), registration_id.to_value())]),
            )]),
            Request::Notifications {
                registration_id,
                max,
            } => Value::Obj(vec![(
                "Notifications".into(),
                Value::Obj(vec![
                    ("registration_id".into(), registration_id.to_value()),
                    ("max".into(), max.to_value()),
                ]),
            )]),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(tag) => match tag.as_str() {
                "Ping" => Ok(Request::Ping),
                "ListDatasets" => Ok(Request::ListDatasets),
                "Stats" => Ok(Request::Stats),
                "Metrics" => Ok(Request::Metrics),
                "Shutdown" => Ok(Request::Shutdown),
                other => Err(DeError(format!("unknown request variant {other:?}"))),
            },
            Value::Obj(entries) if entries.len() == 1 => {
                let (tag, body) = &entries[0];
                match tag.as_str() {
                    "Query" => {
                        let fields = obj(body, "Query")?;
                        Ok(Request::Query {
                            dataset: field(&fields, "dataset")?,
                            event: field(&fields, "event")?,
                            clip: field(&fields, "clip")?,
                            top_k: field(&fields, "top_k")?,
                            deadline_ms: field(&fields, "deadline_ms")?,
                            trace_id: opt_field(&fields, "trace_id")?,
                            class: opt_field(&fields, "class")?,
                            priority: opt_field(&fields, "priority")?,
                        })
                    }
                    "Trace" => {
                        let fields = obj(body, "Trace")?;
                        Ok(Request::Trace {
                            trace_id: opt_field(&fields, "trace_id")?,
                            limit: opt_field(&fields, "limit")?,
                        })
                    }
                    "Profile" => {
                        let fields = obj(body, "Profile")?;
                        Ok(Request::Profile {
                            seconds: opt_field(&fields, "seconds")?,
                            hz: opt_field(&fields, "hz")?,
                        })
                    }
                    "Register" => {
                        let fields = obj(body, "Register")?;
                        Ok(Request::Register {
                            dataset: field(&fields, "dataset")?,
                            event: opt_field(&fields, "event")?,
                            clip: opt_field(&fields, "clip")?,
                            min_score: opt_field(&fields, "min_score")?,
                            top_k: opt_field(&fields, "top_k")?,
                        })
                    }
                    "Unregister" => {
                        let fields = obj(body, "Unregister")?;
                        Ok(Request::Unregister {
                            registration_id: field(&fields, "registration_id")?,
                        })
                    }
                    "Notifications" => {
                        let fields = obj(body, "Notifications")?;
                        Ok(Request::Notifications {
                            registration_id: field(&fields, "registration_id")?,
                            max: opt_field(&fields, "max")?,
                        })
                    }
                    other => Err(DeError(format!("unknown request variant {other:?}"))),
                }
            }
            other => Err(DeError::expected("request", other)),
        }
    }
}

/// One span of a wire-fetched trace (see [`WireTrace`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSpan {
    /// Span name, e.g. `sketchql.matcher.scan`.
    pub name: String,
    /// Nesting depth (0 = top-level stage).
    pub depth: usize,
    /// Span start, nanoseconds after the trace started.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub nanos: u64,
}

/// One query trace as served by [`Request::Trace`]: the flight
/// recorder's `QueryTrace` with span starts rebased to the trace start
/// (the process epoch means nothing off-host).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WireTrace {
    /// The 48-bit trace id.
    pub trace_id: u64,
    /// Label, usually `dataset/query`.
    pub label: String,
    /// Outcome name: `completed`, `deadline_exceeded`, `cancelled`,
    /// `shed`, or `failed`.
    pub outcome: String,
    /// Fused batch size the query executed under (1 = ran alone).
    pub batch_size: usize,
    /// Wall time from admission to finalization, nanoseconds.
    pub total_nanos: u64,
    /// Heap bytes attributed to the query (0 on v3 servers or without
    /// telemetry).
    pub alloc_bytes: u64,
    /// Heap allocations attributed to the query.
    pub alloc_count: u64,
    /// CPU nanoseconds attributed to the query.
    pub cpu_nanos: u64,
    /// Spans sorted by start offset.
    pub spans: Vec<WireSpan>,
}

// Hand-written so a v4 client still parses v3 traces: the resource
// fields default to 0 when absent (the same `opt_field` compatibility
// hook requests use).
impl Deserialize for WireTrace {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = obj(v, "WireTrace")?;
        Ok(WireTrace {
            trace_id: field(&fields, "trace_id")?,
            label: field(&fields, "label")?,
            outcome: field(&fields, "outcome")?,
            batch_size: field(&fields, "batch_size")?,
            total_nanos: field(&fields, "total_nanos")?,
            alloc_bytes: opt_field(&fields, "alloc_bytes")?.unwrap_or(0),
            alloc_count: opt_field(&fields, "alloc_count")?.unwrap_or(0),
            cpu_nanos: opt_field(&fields, "cpu_nanos")?.unwrap_or(0),
            spans: field(&fields, "spans")?,
        })
    }
}

impl WireTrace {
    /// Converts a flight-recorder trace for the wire.
    pub fn from_query_trace(t: &sketchql_telemetry::QueryTrace) -> WireTrace {
        WireTrace {
            trace_id: t.trace_id,
            label: t.label.clone(),
            outcome: t.outcome.as_str().to_string(),
            batch_size: t.batch_size,
            total_nanos: t.total_nanos,
            alloc_bytes: t.alloc_bytes,
            alloc_count: t.alloc_count,
            cpu_nanos: t.cpu_nanos,
            spans: t
                .waterfall()
                .into_iter()
                .map(|(name, depth, start_nanos, nanos)| WireSpan {
                    name: name.to_string(),
                    depth,
                    start_nanos,
                    nanos,
                })
                .collect(),
        }
    }
}

/// A server response: one JSON value per line, matching request order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Answer to [`Request::ListDatasets`].
    Datasets {
        /// Loaded datasets in name order.
        datasets: Vec<DatasetInfo>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Engine statistics snapshot.
        stats: EngineStats,
    },
    /// Successful answer to [`Request::Query`].
    Moments {
        /// Retrieved moments, best first.
        moments: Vec<RetrievedMoment>,
        /// Milliseconds the query waited for a worker.
        queue_wait_ms: u64,
        /// Milliseconds the (possibly fused) scan took.
        execute_ms: u64,
        /// Queries that shared the scan (1 = ran alone).
        batch_size: usize,
        /// The trace id the query ran under (the client's id if it sent
        /// one); fetchable via [`Request::Trace`]. 0 when the server
        /// was built without telemetry.
        trace_id: u64,
    },
    /// Answer to [`Request::Trace`].
    Traces {
        /// Matching traces, newest first.
        traces: Vec<WireTrace>,
    },
    /// Answer to [`Request::Metrics`].
    MetricsText {
        /// The metric registry in Prometheus text exposition format.
        prometheus: String,
    },
    /// Answer to [`Request::Profile`].
    Profile {
        /// Folded stacks, one `thread;span;...;span count` line each —
        /// flamegraph-compatible. Empty when the server was built
        /// without telemetry (or the continuous profiler is off and a
        /// snapshot was requested).
        folded: String,
        /// Total per-thread samples behind the profile.
        samples: u64,
        /// Wall milliseconds the profile covers.
        duration_ms: u64,
    },
    /// Answer to [`Request::Register`].
    Registered {
        /// Handle for `Unregister`/`Notifications`.
        registration_id: u64,
        /// Frame the standing query starts watching from: frames
        /// already ingested are *not* re-reported, only epochs appended
        /// after this point are.
        watermark: u32,
    },
    /// Answer to [`Request::Unregister`].
    Unregistered {
        /// The id that was removed.
        registration_id: u64,
    },
    /// Answer to [`Request::Notifications`].
    Notifications {
        /// The standing query drained.
        registration_id: u64,
        /// Latest ingest epoch the query has been evaluated against.
        epoch: u64,
        /// Frames evaluated through (exclusive end of the last window
        /// range examined).
        watermark: u32,
        /// Matches shed because the queue overflowed, cumulative since
        /// registration.
        dropped: u64,
        /// Queued matches, oldest first; drained (at-most-once).
        matches: Vec<crate::live::LiveMatch>,
    },
    /// Answer to [`Request::Shutdown`]; the server stops accepting work.
    ShutdownAck,
    /// Any request that could not be served.
    Error {
        /// Machine-readable error class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// Machine-readable error classes for [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Admission queue full; retry with backoff.
    Overloaded,
    /// The query's class exceeded its token-bucket rate; retry later.
    RateLimited,
    /// Server is shutting down.
    ShuttingDown,
    /// The query's deadline passed before it finished.
    DeadlineExceeded,
    /// The query was cancelled.
    Cancelled,
    /// No dataset with that name is loaded.
    UnknownDataset,
    /// The `event` name is not in the query catalogue.
    UnknownEvent,
    /// The request line did not parse or was self-contradictory.
    BadRequest,
    /// Unexpected server-side failure.
    Internal,
}

impl Response {
    /// Maps an engine rejection/failure onto its wire representation.
    pub fn from_engine_error(e: &EngineError) -> Response {
        let kind = match e {
            EngineError::Overloaded { .. } => ErrorKind::Overloaded,
            EngineError::RateLimited { .. } => ErrorKind::RateLimited,
            EngineError::ShuttingDown => ErrorKind::ShuttingDown,
            EngineError::UnknownDataset(_) => ErrorKind::UnknownDataset,
            EngineError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            EngineError::Cancelled => ErrorKind::Cancelled,
            EngineError::Similarity(_) => ErrorKind::BadRequest,
            EngineError::NotStored(_) => ErrorKind::BadRequest,
            EngineError::StoreMismatch(_) => ErrorKind::Internal,
            EngineError::WorkerLost => ErrorKind::Internal,
        };
        Response::Error {
            kind,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::ListDatasets,
            Request::Stats,
            Request::Query {
                dataset: "traffic".into(),
                event: Some("left_turn".into()),
                clip: None,
                top_k: Some(5),
                deadline_ms: None,
                trace_id: Some(0x00ab_cdef_0123),
                class: Some("interactive".into()),
                priority: Some(10),
            },
            Request::Trace {
                trace_id: Some(42),
                limit: None,
            },
            Request::Trace {
                trace_id: None,
                limit: Some(8),
            },
            Request::Profile {
                seconds: Some(2),
                hz: Some(97),
            },
            Request::Profile {
                seconds: None,
                hz: None,
            },
            Request::Metrics,
            Request::Register {
                dataset: "traffic".into(),
                event: Some("left_turn".into()),
                clip: None,
                min_score: Some(0.5),
                top_k: Some(3),
            },
            Request::Unregister { registration_id: 7 },
            Request::Notifications {
                registration_id: 7,
                max: Some(16),
            },
            Request::Notifications {
                registration_id: 8,
                max: None,
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'), "wire lines must be single-line");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let resps = vec![
            Response::Pong {
                version: PROTOCOL_VERSION,
            },
            Response::Datasets {
                datasets: vec![DatasetInfo {
                    name: "traffic".into(),
                    frames: 900,
                    tracks: 12,
                    stored: true,
                }],
            },
            Response::Moments {
                moments: vec![RetrievedMoment {
                    start: 10,
                    end: 90,
                    score: 0.625,
                    track_ids: vec![3],
                }],
                queue_wait_ms: 0,
                execute_ms: 41,
                batch_size: 2,
                trace_id: 0x00ab_cdef_0123,
            },
            Response::Traces {
                traces: vec![WireTrace {
                    trace_id: 7,
                    label: "traffic/left_turn".into(),
                    outcome: "completed".into(),
                    batch_size: 1,
                    total_nanos: 1_234_567,
                    alloc_bytes: 52_480,
                    alloc_count: 120,
                    cpu_nanos: 1_100_000,
                    spans: vec![WireSpan {
                        name: "sketchql.server.queue_wait".into(),
                        depth: 0,
                        start_nanos: 0,
                        nanos: 2_000,
                    }],
                }],
            },
            Response::MetricsText {
                prometheus: "# TYPE x counter\nx 1\n".into(),
            },
            Response::Profile {
                folded: "worker-0;sketchql.server.execute;sketchql.matcher.scan 41\n".into(),
                samples: 120,
                duration_ms: 2_000,
            },
            Response::Registered {
                registration_id: 3,
                watermark: 900,
            },
            Response::Unregistered { registration_id: 3 },
            Response::Notifications {
                registration_id: 3,
                epoch: 2,
                watermark: 1100,
                dropped: 1,
                matches: vec![crate::live::LiveMatch {
                    start: 930,
                    end: 1010,
                    score: 0.75,
                    track_ids: vec![4, 9],
                    epoch: 2,
                }],
            },
            Response::ShutdownAck,
            Response::Error {
                kind: ErrorKind::Overloaded,
                message: "overloaded".into(),
            },
        ];
        for resp in resps {
            let line = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn garbage_line_is_a_parse_error_not_a_panic() {
        assert!(serde_json::from_str::<Request>("{\"nope\"").is_err());
        assert!(serde_json::from_str::<Request>("{\"Frobnicate\":{}}").is_err());
    }

    /// The exact bytes a protocol-version-2 client puts on the wire
    /// (no `trace_id`) must still parse — satellite of the v3 bump.
    #[test]
    fn v2_query_without_trace_id_still_parses() {
        let v2_line = "{\"Query\":{\"dataset\":\"traffic\",\"event\":\"left_turn\",\
                       \"clip\":null,\"top_k\":5,\"deadline_ms\":2000}}";
        let req: Request = serde_json::from_str(v2_line).unwrap();
        assert_eq!(
            req,
            Request::Query {
                dataset: "traffic".into(),
                event: Some("left_turn".into()),
                clip: None,
                top_k: Some(5),
                deadline_ms: Some(2000),
                trace_id: None,
                class: None,
                priority: None,
            }
        );
    }

    /// The exact bytes a protocol-version-4 client puts on the wire
    /// (no `class`/`priority`) must still parse — satellite of the v5
    /// bump. The engine treats the absent fields as the default class.
    #[test]
    fn v4_query_without_class_still_parses() {
        let v4_line = "{\"Query\":{\"dataset\":\"traffic\",\"event\":\"left_turn\",\
                       \"clip\":null,\"top_k\":5,\"deadline_ms\":2000,\
                       \"trace_id\":42}}";
        let req: Request = serde_json::from_str(v4_line).unwrap();
        assert_eq!(
            req,
            Request::Query {
                dataset: "traffic".into(),
                event: Some("left_turn".into()),
                clip: None,
                top_k: Some(5),
                deadline_ms: Some(2000),
                trace_id: Some(42),
                class: None,
                priority: None,
            }
        );
    }

    /// A v4 client deserializes v5 `Stats` with its derived struct
    /// (unknown fields ignored): simulate one by parsing a v5 stats
    /// line into a v4-shaped mirror struct without the class vector.
    #[test]
    fn v5_stats_parse_under_a_v4_shaped_client() {
        use crate::engine::ClassStats;

        #[derive(Debug, PartialEq, Deserialize)]
        struct V4Stats {
            workers: usize,
            queued: usize,
            in_flight: usize,
            accepted: u64,
            completed: u64,
            rejected_overload: u64,
            timed_out: u64,
            failed: u64,
        }

        let v5 = EngineStats {
            workers: 2,
            queued: 2,
            in_flight: 1,
            accepted: 15,
            completed: 10,
            rejected_overload: 3,
            timed_out: 1,
            failed: 0,
            store_hits: 0,
            store_fallbacks: 0,
            store_probed: 0,
            rate_limited: 4,
            datasets: Vec::new(),
            classes: vec![ClassStats {
                name: "interactive".into(),
                priority: 10,
                queued: 2,
                oldest_wait_ms: 7,
                completed: 6,
                rate_limited: 4,
                shed: 0,
            }],
        };
        let line = serde_json::to_string(&v5).unwrap();
        let back: V4Stats = serde_json::from_str(&line).unwrap();
        assert_eq!((back.queued, back.in_flight), (2, 1));
        assert_eq!((back.completed, back.rejected_overload), (10, 3));
    }

    /// The exact stats shape a v4 server puts on the wire (no
    /// `rate_limited`/`classes`) still parses under this v5 client:
    /// absent fields read as empty/zero.
    #[test]
    fn v4_stats_parse_under_this_v5_client() {
        let v4_line = "{\"workers\":2,\"queued\":1,\"in_flight\":2,\
                       \"accepted\":40,\"completed\":30,\"rejected_overload\":4,\
                       \"timed_out\":5,\"failed\":6,\"store_hits\":0,\
                       \"store_fallbacks\":0,\"store_probed\":0,\
                       \"datasets\":[]}";
        let stats: EngineStats = serde_json::from_str(v4_line).unwrap();
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.rate_limited, 0);
        assert!(stats.classes.is_empty());
    }

    /// A v2 client deserializes v3 responses with its derived enum
    /// (unknown fields ignored): simulate one by parsing a v3 `Moments`
    /// line into a v2-shaped mirror enum without `trace_id`.
    #[test]
    fn v3_moments_parse_under_a_v2_shaped_client() {
        #[derive(Debug, PartialEq, Deserialize)]
        enum V2Response {
            #[allow(dead_code)]
            Pong { version: u32 },
            Moments {
                moments: Vec<RetrievedMoment>,
                queue_wait_ms: u64,
                execute_ms: u64,
                batch_size: usize,
            },
        }

        let v3 = Response::Moments {
            moments: vec![RetrievedMoment {
                start: 1,
                end: 9,
                score: 0.5,
                track_ids: vec![2],
            }],
            queue_wait_ms: 3,
            execute_ms: 14,
            batch_size: 1,
            trace_id: 0x00de_adbe_ef01,
        };
        let line = serde_json::to_string(&v3).unwrap();
        let back: V2Response = serde_json::from_str(&line).unwrap();
        let V2Response::Moments {
            moments,
            queue_wait_ms,
            execute_ms,
            batch_size,
        } = back
        else {
            panic!("expected Moments");
        };
        assert_eq!(moments.len(), 1);
        assert_eq!((queue_wait_ms, execute_ms, batch_size), (3, 14, 1));
    }

    /// A bare `{"Profile":{}}` (and a v3-era client that sends no
    /// resource-aware fields anywhere) parses with both knobs defaulted
    /// — the `opt_field` compatibility hook, v4 edition.
    #[test]
    fn profile_request_with_absent_fields_parses() {
        let req: Request = serde_json::from_str("{\"Profile\":{}}").unwrap();
        assert_eq!(
            req,
            Request::Profile {
                seconds: None,
                hz: None,
            }
        );
    }

    /// The exact trace shape a v3 server puts on the wire (no resource
    /// fields) still parses under this v4 client: absent fields read 0.
    #[test]
    fn v3_wire_trace_parses_with_zero_resources() {
        let v3_line = "{\"trace_id\":7,\"label\":\"traffic/left_turn\",\
                       \"outcome\":\"completed\",\"batch_size\":1,\"total_nanos\":1234567,\
                       \"spans\":[{\"name\":\"sketchql.server.execute\",\"depth\":0,\
                       \"start_nanos\":0,\"nanos\":1000}]}";
        let t: WireTrace = serde_json::from_str(v3_line).unwrap();
        assert_eq!((t.alloc_bytes, t.alloc_count, t.cpu_nanos), (0, 0, 0));
        assert_eq!(t.trace_id, 7);
        assert_eq!(t.spans.len(), 1);
    }

    /// A v3 client deserializes v4 `Traces` with its derived struct
    /// (unknown fields ignored): simulate one by parsing a v4 trace
    /// line into a v3-shaped mirror struct without resource fields.
    #[test]
    fn v4_wire_trace_parses_under_a_v3_shaped_client() {
        #[derive(Debug, PartialEq, Deserialize)]
        struct V3WireTrace {
            trace_id: u64,
            label: String,
            outcome: String,
            batch_size: usize,
            total_nanos: u64,
            spans: Vec<WireSpan>,
        }

        let v4 = WireTrace {
            trace_id: 9,
            label: "traffic/merge".into(),
            outcome: "completed".into(),
            batch_size: 2,
            total_nanos: 777,
            alloc_bytes: 1024,
            alloc_count: 3,
            cpu_nanos: 555,
            spans: Vec::new(),
        };
        let line = serde_json::to_string(&v4).unwrap();
        let back: V3WireTrace = serde_json::from_str(&line).unwrap();
        assert_eq!(back.trace_id, 9);
        assert_eq!(back.total_nanos, 777);
    }

    /// A minimal `{"Register":{...}}` with every optional knob absent
    /// parses with them defaulted — the `opt_field` compatibility hook,
    /// v6 edition — and a bare `Notifications` drains everything.
    #[test]
    fn register_request_with_absent_fields_parses() {
        let line = "{\"Register\":{\"dataset\":\"traffic\",\"event\":\"merge\"}}";
        let req: Request = serde_json::from_str(line).unwrap();
        assert_eq!(
            req,
            Request::Register {
                dataset: "traffic".into(),
                event: Some("merge".into()),
                clip: None,
                min_score: None,
                top_k: None,
            }
        );
        let line = "{\"Notifications\":{\"registration_id\":5}}";
        let req: Request = serde_json::from_str(line).unwrap();
        assert_eq!(
            req,
            Request::Notifications {
                registration_id: 5,
                max: None,
            }
        );
    }

    /// The exact bytes a protocol-version-5 client puts on the wire
    /// still parse under this v6 server — the live bump adds request
    /// variants but changes nothing about existing ones.
    #[test]
    fn v5_query_still_parses_under_v6() {
        let v5_line = "{\"Query\":{\"dataset\":\"traffic\",\"event\":\"left_turn\",\
                       \"clip\":null,\"top_k\":5,\"deadline_ms\":2000,\
                       \"trace_id\":42,\"class\":\"batch\",\"priority\":-5}}";
        let req: Request = serde_json::from_str(v5_line).unwrap();
        assert_eq!(
            req,
            Request::Query {
                dataset: "traffic".into(),
                event: Some("left_turn".into()),
                clip: None,
                top_k: Some(5),
                deadline_ms: Some(2000),
                trace_id: Some(42),
                class: Some("batch".into()),
                priority: Some(-5),
            }
        );
    }

    /// A v5 client deserializes v6 responses with its derived enum: the
    /// new variants only ever answer the new requests, so a v5-shaped
    /// mirror enum (no live variants) still parses everything a v5
    /// client can provoke.
    #[test]
    fn v6_responses_parse_under_a_v5_shaped_client() {
        #[derive(Debug, PartialEq, Deserialize)]
        enum V5Response {
            Pong { version: u32 },
            ShutdownAck,
        }

        let pong = serde_json::to_string(&Response::Pong {
            version: PROTOCOL_VERSION,
        })
        .unwrap();
        let back: V5Response = serde_json::from_str(&pong).unwrap();
        assert_eq!(back, V5Response::Pong { version: 6 });

        let ack = serde_json::to_string(&Response::ShutdownAck).unwrap();
        let back: V5Response = serde_json::from_str(&ack).unwrap();
        assert_eq!(back, V5Response::ShutdownAck);
    }

    /// Trace ids are minted at 48 bits so they survive the JSON number
    /// model (f64, exact to 2^53).
    #[test]
    fn trace_ids_survive_json_numbers() {
        for _ in 0..64 {
            let id = sketchql_telemetry::mint_trace_id();
            assert!(id != 0 && id < (1 << 48));
            let req = Request::Trace {
                trace_id: Some(id),
                limit: None,
            };
            let line = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req);
        }
    }
}
