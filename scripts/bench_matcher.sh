#!/usr/bin/env bash
# Matcher hot-path speedup check: runs the matcher bench and compares the
# multi-scale learned-similarity scan with the per-search embedding cache
# and batched encoder disabled ("uncached", the per-candidate tape path)
# against the default cached+batched scan ("cached"). Writes the wall
# times and the speedup to BENCH_matcher.json and exits non-zero if the
# speedup falls below $SKETCHQL_MATCHER_SPEEDUP_MIN (default 3).
#
#   scripts/bench_matcher.sh                              # full samples
#   SKETCHQL_BENCH_QUICK=1 scripts/bench_matcher.sh       # fast smoke run
#
# The two scans return byte-identical moments (see
# crates/core/tests/embed_cache.rs); this script only checks the speed.
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP="${SKETCHQL_MATCHER_SPEEDUP_MIN:-3}"
OUT_JSON="${SKETCHQL_MATCHER_BENCH_JSON:-BENCH_matcher.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

echo "== matcher bench (uncached vs cached+batched scan)"
cargo bench -p sketchql-bench --bench matcher -- matcher_embed_cache | tee "$log"

echo
awk -v min="$MIN_SPEEDUP" -v out="$OUT_JSON" -v quick="${SKETCHQL_BENCH_QUICK:-0}" '
    /^BENCH matcher_embed_cache\// && /median_ns=/ {
        id = $2
        sub(/^matcher_embed_cache\//, "", id)
        for (i = 3; i <= NF; i++)
            if ($i ~ /^median_ns=/) { sub(/^median_ns=/, "", $i); med[id] = $i }
    }
    END {
        if (!("uncached" in med) || !("cached" in med) || med["cached"] <= 0) {
            print "missing matcher_embed_cache/{uncached,cached} medians"
            exit 2
        }
        speedup = med["uncached"] / med["cached"]
        printf "before (uncached scan): %.1f ms\n", med["uncached"] / 1e6
        printf "after  (cached scan):   %.1f ms\n", med["cached"] / 1e6
        printf "speedup: %.2fx (bar: >=%sx)\n", speedup, min
        printf "{\n" \
               "  \"bench\": \"matcher_embed_cache\",\n" \
               "  \"quick\": %s,\n" \
               "  \"before_uncached_ns\": %.0f,\n" \
               "  \"after_cached_ns\": %.0f,\n" \
               "  \"speedup\": %.3f,\n" \
               "  \"min_speedup\": %s\n" \
               "}\n", (quick != 0) ? "true" : "false", \
               med["uncached"], med["cached"], speedup, min > out
        printf "wrote %s\n", out
        exit (speedup >= min + 0.0) ? 0 : 1
    }
' "$log"
