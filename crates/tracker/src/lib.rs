//! # sketchql-tracker
//!
//! The object-tracking substrate SketchQL preprocesses videos with. Since no
//! pre-trained CNN detector is available, a [`DetectorSim`] turns
//! ground-truth bounding box clips into realistic noisy detections
//! (localization jitter, misses, false positives, confidence scores), and a
//! full ByteTrack-style tracker — constant-velocity Kalman filter
//! ([`KalmanBoxTracker`]), Hungarian assignment ([`hungarian::assign`]),
//! two-stage high/low-confidence association ([`ByteTracker`]) — turns
//! detections back into per-object trajectories, complete with the
//! real-world artifacts (fragmentation, id switches, coasting error) the
//! Matcher must be robust to.

#![warn(missing_docs)]

pub mod bytetrack;
pub mod detection;
pub mod hungarian;
pub mod kalman;
pub mod metrics;
pub mod postprocess;

pub use bytetrack::{track_detections, ByteTracker, Track, TrackState, TrackerConfig};
pub use detection::{Detection, DetectorConfig, DetectorSim};
pub use kalman::KalmanBoxTracker;
pub use metrics::{evaluate_tracking, TrackingReport};
pub use postprocess::{interpolate_tracks, stitch_fragments, StitchConfig};
