//! End-to-end resource attribution and profiling over the wire: a
//! query run through a real TCP server carries attributed CPU and heap
//! traffic on its flight-recorder trace, `Profile` answers folded
//! stacks naming the execution stages, and `Stats` breaks traffic down
//! per dataset.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sketchql_server::{Client, Engine, EngineConfig, Server};
use sketchql_telemetry::{self as telemetry, names};

use common::{tiny_model, two_datasets};

fn start_server(workers: usize) -> Server {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers,
            ..Default::default()
        },
    );
    Server::start(engine, "127.0.0.1:0").expect("bind ephemeral port")
}

#[test]
fn queries_carry_resource_attribution_end_to_end() {
    if !telemetry::is_enabled() {
        return;
    }
    let server = start_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let outcome = client
        .query_event("alpha", "left_turn", Some(5), None)
        .unwrap();
    let traces = client.trace(Some(outcome.trace_id), None).unwrap();
    assert_eq!(traces.len(), 1, "the query's trace is in the recorder");
    let trace = &traces[0];
    assert_eq!(trace.outcome, "completed");
    // A full learned scan builds candidate clips and runs the encoder:
    // both CPU and heap traffic must attribute to the trace.
    assert!(
        trace.cpu_nanos > 0,
        "scan CPU must attribute to the query (saw {} ns)",
        trace.cpu_nanos
    );
    assert!(
        trace.alloc_bytes > 0 && trace.alloc_count > 0,
        "scan allocations must attribute to the query (saw {} bytes / {} allocs)",
        trace.alloc_bytes,
        trace.alloc_count
    );

    server.shutdown();
}

#[test]
fn profile_request_names_matcher_stages_under_load() {
    if !telemetry::is_enabled() {
        return;
    }
    let server = start_server(2);
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let profile = std::thread::scope(|scope| {
        // Keep the workers busy with real queries for the whole
        // sampling window.
        for _ in 0..2 {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let _ = client.query_event("alpha", "left_turn", Some(3), None);
                }
            });
        }
        let mut client = Client::connect(addr).unwrap();
        let profile = client.profile(Some(1), Some(199));
        // Release the query threads before unwrapping: a failed profile
        // must not leave them spinning inside the scope forever.
        stop.store(true, Ordering::Relaxed);
        profile.unwrap()
    });

    assert!(profile.samples > 0, "a 1 s window must collect samples");
    assert!(profile.duration_ms >= 900, "the window runs its full span");
    assert!(
        profile.folded.contains(names::MATCHER_SEARCH),
        "folded stacks name the matcher stage:\n{}",
        profile.folded
    );
    assert!(
        profile.folded.contains(names::SERVER_EXECUTE),
        "folded stacks are rooted in the server execute span:\n{}",
        profile.folded
    );

    server.shutdown();
}

#[test]
fn stats_break_down_traffic_per_dataset() {
    let server = start_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();

    for _ in 0..2 {
        client
            .query_event("alpha", "left_turn", Some(3), None)
            .unwrap();
    }
    client.query_event("beta", "u_turn", Some(3), None).unwrap();

    let stats = client.stats().unwrap();
    let by_name = |name: &str| {
        stats
            .datasets
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("stats must list dataset {name}"))
    };
    assert_eq!(by_name("alpha").completed, 2);
    assert_eq!(by_name("beta").completed, 1);
    assert_eq!(by_name("alpha").shed + by_name("beta").shed, 0);
    assert_eq!(
        stats.datasets.len(),
        2,
        "every loaded dataset appears, even idle ones"
    );
    assert_eq!(
        by_name("alpha").completed + by_name("beta").completed,
        stats.completed,
        "per-dataset completions sum to the engine total"
    );

    server.shutdown();
}
