#!/usr/bin/env bash
# End-to-end CLI smoke for the sharded store tier: generate a video,
# train a throwaway model, `ingest --shard-frames` into a shard set
# (with --verify re-checking every checksum), then "restart" — answer
# the same query from the shard set on disk and from a plain scan —
# and require byte-identical output. Finally serve the shard set and
# round-trip a query over the wire, proving the sharded attach path
# needs no re-embedding (and no shard payload reads) at startup.
#
#   scripts/smoke_shard.sh                      # uses target/release
#   SKETCHQL_CLI=target/debug/sketchql-cli scripts/smoke_shard.sh
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${SKETCHQL_CLI:-target/release/sketchql-cli}"
ADDR="${SKETCHQL_SMOKE_ADDR:-127.0.0.1:17881}"
if [ ! -x "$CLI" ]; then
    echo "missing $CLI (run cargo build --release first)" >&2
    exit 2
fi

work="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== shard smoke: fixtures"
"$CLI" generate --out "$work/video.json" --events 1 --distractors 2 --seed 3 >/dev/null
"$CLI" train --out "$work/model.json" --steps 20 >/dev/null

echo "== shard smoke: parallel sharded ingest with --verify"
"$CLI" ingest --video "$work/video.json" --model "$work/model.json" \
    --dataset traffic --store-dir "$work/stores" --oracle-tracks \
    --shard-frames 64 --threads 2 --verify \
    | tee "$work/ingest.out"
grep -q "wrote sharded store" "$work/ingest.out" || { echo "sharded ingest wrote nothing" >&2; exit 1; }
grep -q "progress:" "$work/ingest.out" || { echo "ingest printed no progress" >&2; exit 1; }
grep -q "verify: manifest" "$work/ingest.out" || { echo "--verify did not run" >&2; exit 1; }
ls "$work/stores/"*.skset/manifest.json >/dev/null
ls "$work/stores/"*.skset/*.skshard >/dev/null

echo "== shard smoke: restart — sharded answers match the plain scan byte for byte"
"$CLI" query --video "$work/video.json" --model "$work/model.json" \
    --event left_turn --oracle-tracks --store-dir "$work/stores" \
    | tee "$work/sharded.out"
grep -q "store: index-backed" "$work/sharded.out" \
    || { echo "query did not use the shard set" >&2; exit 1; }
"$CLI" query --video "$work/video.json" --model "$work/model.json" \
    --event left_turn --oracle-tracks \
    | tee "$work/scan.out"
# Same ranked moments, same printed scores: compare the result tables
# (strip the store/progress banner lines, which legitimately differ).
grep -E "^[0-9]+ " "$work/sharded.out" > "$work/sharded.rows" || true
grep -E "^[0-9]+ " "$work/scan.out" > "$work/scan.rows" || true
[ -s "$work/sharded.rows" ] || { echo "sharded query returned no moments" >&2; exit 1; }
diff -u "$work/scan.rows" "$work/sharded.rows" \
    || { echo "sharded results differ from the scan" >&2; exit 1; }

echo "== shard smoke: serve --store-dir on $ADDR (lazy attach)"
"$CLI" serve --model "$work/model.json" --videos "traffic=$work/video.json" \
    --store-dir "$work/stores" --addr "$ADDR" --workers 2 --oracle-tracks \
    >"$work/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    grep -q "serving on" "$work/serve.log" 2>/dev/null && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log" >&2; exit 1; }
    sleep 0.1
done
grep -q 'store: dataset "traffic" is index-backed' "$work/serve.log" \
    || { echo "serve did not attach the shard set" >&2; cat "$work/serve.log" >&2; exit 1; }
grep -q "payloads load lazily" "$work/serve.log" \
    || { echo "serve did not report lazy attach" >&2; cat "$work/serve.log" >&2; exit 1; }

echo "== shard smoke: wire round trip"
"$CLI" client --addr "$ADDR" --action query \
    --dataset traffic --event left_turn --top-k 3 --deadline-ms 30000 \
    | tee "$work/query.out"
grep -q "^1 " "$work/query.out" || { echo "query returned no moments" >&2; exit 1; }
"$CLI" client --addr "$ADDR" --action stats | tee "$work/stats.out"
hits="$(awk '/^store hits/ { print $3 }' "$work/stats.out")"
[ "${hits:-0}" -ge 1 ] || { echo "expected >=1 store hit, got ${hits:-none}" >&2; exit 1; }
"$CLI" client --addr "$ADDR" --action shutdown

for _ in $(seq 1 50); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "serve did not exit after wire shutdown" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
serve_pid=""

echo "ok: shard smoke passed"
