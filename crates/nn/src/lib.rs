//! # sketchql-nn
//!
//! A from-scratch, CPU-only neural network library sized for SketchQL's
//! trajectory encoder: a dense 2D [`Tensor`], a reverse-mode autograd
//! [`Tape`] over a closed op set (every backward rule gradient-checked),
//! transformer building blocks ([`Linear`], [`MultiHeadSelfAttention`],
//! [`EncoderLayer`]), the [`TrajectoryEncoder`] itself, the NT-Xent /
//! triplet losses, and an [`Adam`] optimizer.
//!
//! The paper trains its similarity model in PyTorch; this crate substitutes
//! an architecturally identical (smaller) encoder so the entire zero-shot
//! pipeline — simulator-generated contrastive pairs → transformer embedding
//! → cosine similarity search — runs in pure Rust.

#![warn(missing_docs)]

pub mod kernels;
pub mod loss;
pub mod modules;
pub mod optim;
pub mod schedule;
pub mod tape;
pub mod tensor;

pub use loss::{mse, nt_xent, triplet};
pub use modules::{
    cosine_similarity, sinusoidal_positions, EncoderConfig, EncoderLayer, FeedForward, Graph,
    LayerNorm, Linear, MultiHeadSelfAttention, ParamStore, Pooling, TrajectoryEncoder,
};
pub use optim::{Adam, AdamConfig};
pub use schedule::LrSchedule;
pub use tape::{Gradients, NodeId, Tape};
pub use tensor::Tensor;
