//! Track post-processing: gap interpolation and fragment stitching.
//!
//! The ByteTrack paper applies linear interpolation to tracker output as a
//! final step (occluded stretches produce gaps even after low-confidence
//! rescue). We add a conservative *fragment stitcher* on top: two tracks of
//! the same class whose endpoints line up in time and space (under a
//! constant-velocity extrapolation) are merged — undoing the id splits
//! long occlusions cause, which otherwise fragment the trajectories the
//! Matcher searches over.

use serde::{Deserialize, Serialize};
use sketchql_trajectory::{TrajPoint, Trajectory};

/// Parameters of the fragment stitcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StitchConfig {
    /// Maximum frame gap between a track's end and another's start.
    pub max_gap: u32,
    /// Maximum positional error (in units of the earlier track's box
    /// diagonal) between the extrapolated end position and the later
    /// track's start.
    pub max_position_error: f32,
}

impl Default for StitchConfig {
    fn default() -> Self {
        StitchConfig {
            max_gap: 45,
            max_position_error: 2.0,
        }
    }
}

/// Fills every track's internal gaps by linear interpolation (ByteTrack's
/// post-processing step).
pub fn interpolate_tracks(tracks: &[Trajectory]) -> Vec<Trajectory> {
    tracks.iter().map(Trajectory::fill_gaps).collect()
}

/// Whether `later` plausibly continues `earlier`.
fn stitchable(earlier: &Trajectory, later: &Trajectory, config: &StitchConfig) -> bool {
    if earlier.class != later.class {
        return false;
    }
    let (Some(e_end), Some(l_start)) = (earlier.end_frame(), later.start_frame()) else {
        return false;
    };
    if l_start <= e_end || l_start - e_end > config.max_gap {
        return false;
    }
    let pts = earlier.points();
    let last = pts.last().expect("non-empty");
    // Constant-velocity extrapolation from the earlier track's tail.
    let vel = if pts.len() >= 2 {
        let prev = &pts[pts.len() - 2];
        let dt = (last.frame - prev.frame).max(1) as f32;
        (last.bbox.center() - prev.bbox.center()) * (1.0 / dt)
    } else {
        sketchql_trajectory::Point2::ZERO
    };
    let dt = (l_start - e_end) as f32;
    let predicted = last.bbox.center() + vel * dt;
    let actual = later.points().first().expect("non-empty").bbox.center();
    let scale = (last.bbox.w * last.bbox.w + last.bbox.h * last.bbox.h)
        .sqrt()
        .max(1.0);
    predicted.distance(&actual) <= config.max_position_error * scale
}

/// Merges plausibly-continuing fragments (greedy, earliest-first). The
/// merged track keeps the earlier fragment's id and bridges the gap via
/// linear interpolation.
pub fn stitch_fragments(tracks: &[Trajectory], config: &StitchConfig) -> Vec<Trajectory> {
    let mut sorted: Vec<Trajectory> = tracks.to_vec();
    sorted.sort_by_key(|t| (t.start_frame().unwrap_or(0), t.id));
    let mut consumed = vec![false; sorted.len()];
    let mut out = Vec::with_capacity(sorted.len());

    for i in 0..sorted.len() {
        if consumed[i] {
            continue;
        }
        let mut current = sorted[i].clone();
        loop {
            // Earliest-starting stitchable continuation.
            let mut next: Option<usize> = None;
            for (j, cand) in sorted.iter().enumerate() {
                if consumed[j] || j == i {
                    continue;
                }
                if stitchable(&current, cand, config) {
                    let better = match next {
                        None => true,
                        Some(k) => cand.start_frame() < sorted[k].start_frame(),
                    };
                    if better {
                        next = Some(j);
                    }
                }
            }
            let Some(j) = next else {
                break;
            };
            consumed[j] = true;
            let mut pts: Vec<TrajPoint> = current.points().to_vec();
            pts.extend(sorted[j].points().iter().copied());
            current = Trajectory::from_points(current.id, current.class, pts).fill_gaps();
        }
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchql_trajectory::{BBox, ObjectClass};

    fn seg(id: u64, class: ObjectClass, frames: std::ops::Range<u32>, speed: f32) -> Trajectory {
        Trajectory::from_points(
            id,
            class,
            frames
                .map(|f| TrajPoint::new(f, BBox::new(f as f32 * speed, 300.0, 60.0, 35.0)))
                .collect(),
        )
    }

    #[test]
    fn interpolation_densifies_all_tracks() {
        let sparse = Trajectory::from_points(
            1,
            ObjectClass::Car,
            vec![
                TrajPoint::new(0, BBox::new(0.0, 0.0, 10.0, 10.0)),
                TrajPoint::new(10, BBox::new(100.0, 0.0, 10.0, 10.0)),
            ],
        );
        let out = interpolate_tracks(&[sparse]);
        assert_eq!(out[0].len(), 11);
        assert_eq!(out[0].max_gap(), 1);
    }

    #[test]
    fn continuing_fragments_are_stitched() {
        // One car split into two fragments with a 20-frame occlusion gap.
        let a = seg(1, ObjectClass::Car, 0..50, 5.0);
        let b = seg(2, ObjectClass::Car, 70..120, 5.0);
        let out = stitch_fragments(&[a, b], &StitchConfig::default());
        assert_eq!(out.len(), 1, "fragments should merge");
        let t = &out[0];
        assert_eq!(t.id, 1, "keeps the earlier id");
        assert_eq!(t.start_frame(), Some(0));
        assert_eq!(t.end_frame(), Some(119));
        assert_eq!(t.max_gap(), 1, "gap interpolated");
        // The bridged boxes continue the motion.
        let mid = t.bbox_at(60).unwrap();
        assert!((mid.cx - 300.0).abs() < 10.0, "bridge at 60: {}", mid.cx);
    }

    #[test]
    fn unrelated_tracks_are_not_stitched() {
        // Same class, compatible timing, but the later track starts far
        // from the extrapolated position.
        let a = seg(1, ObjectClass::Car, 0..50, 5.0);
        let far = Trajectory::from_points(
            2,
            ObjectClass::Car,
            (70..120)
                .map(|f| TrajPoint::new(f, BBox::new(2000.0, 600.0, 60.0, 35.0)))
                .collect(),
        );
        let out = stitch_fragments(&[a, far], &StitchConfig::default());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn cross_class_fragments_never_merge() {
        let a = seg(1, ObjectClass::Car, 0..50, 5.0);
        let b = seg(2, ObjectClass::Person, 60..100, 5.0);
        let out = stitch_fragments(&[a, b], &StitchConfig::default());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn gap_beyond_budget_is_not_bridged() {
        let a = seg(1, ObjectClass::Car, 0..50, 5.0);
        let b = seg(2, ObjectClass::Car, 150..200, 5.0);
        let cfg = StitchConfig {
            max_gap: 45,
            ..Default::default()
        };
        let out = stitch_fragments(&[a, b], &cfg);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn chains_of_fragments_merge_transitively() {
        let a = seg(1, ObjectClass::Car, 0..40, 5.0);
        let b = seg(2, ObjectClass::Car, 55..95, 5.0);
        let c = seg(3, ObjectClass::Car, 110..150, 5.0);
        let out = stitch_fragments(&[a, b, c], &StitchConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].span(), 150);
    }

    #[test]
    fn overlapping_tracks_are_left_alone() {
        // Two cars side by side at the same time: must not merge.
        let a = seg(1, ObjectClass::Car, 0..100, 5.0);
        let b = Trajectory::from_points(
            2,
            ObjectClass::Car,
            (0..100)
                .map(|f| TrajPoint::new(f, BBox::new(f as f32 * 5.0, 400.0, 60.0, 35.0)))
                .collect(),
        );
        let out = stitch_fragments(&[a, b], &StitchConfig::default());
        assert_eq!(out.len(), 2);
    }
}
