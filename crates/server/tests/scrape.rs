//! Metric-scrape correctness under concurrency, plus a lint of the
//! Prometheus text exposition against the full live registry (server,
//! matcher, and resource series all populated by real traffic).

mod common;

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sketchql::{ingest_sharded, IngestConfig, MatcherConfig, StoreTier};
use sketchql_datasets::query_clip;
use sketchql_server::{Client, Engine, EngineConfig, Server};
use sketchql_telemetry as telemetry;

use common::{small_index, tiny_model, two_datasets};

fn start_server(workers: usize) -> Server {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers,
            ..Default::default()
        },
    );
    Server::start(engine, "127.0.0.1:0").expect("bind ephemeral port")
}

/// The value of a plain (unlabeled) sample, if present.
fn sample_value(prometheus: &str, name: &str) -> Option<f64> {
    prometheus.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// Scrapes stay parseable and counters stay monotone while queries run
/// concurrently: no torn lines, no half-updated families.
#[test]
fn concurrent_scrapes_during_queries_stay_consistent() {
    if !telemetry::is_enabled() {
        return;
    }
    let server = start_server(2);
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    client.query_event("beta", "u_turn", Some(3), None).unwrap();
                }
            });
        }
        let scrapers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    // Counters register lazily, so early scrapes may not
                    // export `completed` yet — treat absent as 0.
                    let mut last_completed = 0.0f64;
                    for _ in 0..10 {
                        let text = client.metrics_text().unwrap();
                        for line in text.lines() {
                            assert!(
                                line.starts_with("# HELP ")
                                    || line.starts_with("# TYPE ")
                                    || line
                                        .split_whitespace()
                                        .last()
                                        .is_some_and(|v| v.parse::<f64>().is_ok()),
                                "unparseable scrape line: {line:?}"
                            );
                        }
                        let completed =
                            sample_value(&text, "sketchql_server_completed").unwrap_or(0.0);
                        assert!(
                            completed >= last_completed,
                            "counter went backwards: {completed} < {last_completed}"
                        );
                        last_completed = completed;
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                })
            })
            .collect();
        // Join by hand and set the stop flag *before* re-raising any
        // scraper panic: an assert inside a scraper must not leave the
        // query threads spinning forever (the scope joins them too).
        let results: Vec<_> = scrapers.into_iter().map(|h| h.join()).collect();
        stop.store(true, Ordering::Relaxed);
        for r in results {
            if let Err(panic) = r {
                std::panic::resume_unwind(panic);
            }
        }
    });
    server.shutdown();
}

/// Lints the full exposition after real traffic: legal metric names,
/// exactly one HELP/TYPE per family, no duplicate samples, cumulative
/// (monotone) histogram buckets, and `+Inf` agreeing with `_count`.
/// `alpha` is backed by a sharded store so the `sketchql_shard_*`
/// family is live on the scrape and linted with everything else.
#[test]
fn prometheus_exposition_is_well_formed() {
    if !telemetry::is_enabled() {
        return;
    }
    let model = tiny_model();
    let alpha = small_index(11);
    let event = "left_turn";
    let dir = std::env::temp_dir().join(format!("skql-scrape-shards-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = IngestConfig::from_matcher(
        &MatcherConfig::default(),
        &[query_clip(sketchql_datasets::EventKind::LeftTurn).span()],
    );
    let mut set = ingest_sharded(
        &model.similarity(),
        &alpha,
        "alpha",
        &cfg,
        25,
        &dir,
        &|_| {},
    )
    .unwrap();
    set.nprobe = set.nlist();
    let mut stores = std::collections::BTreeMap::new();
    stores.insert("alpha".to_string(), StoreTier::Sharded(set));
    let engine = Engine::start_with_stores(
        model,
        two_datasets(),
        stores,
        EngineConfig {
            workers: 2,
            ..Default::default()
        },
    );
    let server = Server::start(engine, "127.0.0.1:0").expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Drive every family: completed queries (latency histograms,
    // resource series, shard loads/probes) and an unknown dataset
    // (error path).
    client.query_event("alpha", event, Some(3), None).unwrap();
    let _ = client.query_event("nope", event, None, None);
    let text = client.metrics_text().unwrap();
    assert!(!text.is_empty());

    let legal_name =
        |n: &str| !n.is_empty() && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    let mut help_seen = HashSet::new();
    let mut type_seen = HashSet::new();
    let mut samples_seen = HashSet::new();
    // name -> (bucket counts in order, count sample)
    let mut buckets: Vec<(String, Vec<(String, u64)>)> = Vec::new();

    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            assert!(legal_name(name), "illegal family name in {line:?}");
            assert!(help_seen.insert(name.to_string()), "duplicate HELP {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split_whitespace();
            let name = words.next().unwrap_or("");
            let kind = words.next().unwrap_or("");
            assert!(legal_name(name), "illegal family name in {line:?}");
            assert!(type_seen.insert(name.to_string()), "duplicate TYPE {name}");
            assert!(
                help_seen.contains(name),
                "TYPE {name} must follow its HELP line"
            );
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown type {kind:?} in {line:?}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        assert!(
            samples_seen.insert(series.to_string()),
            "duplicate sample {series}"
        );
        let bare = series.split('{').next().unwrap();
        assert!(legal_name(bare), "illegal metric name in {line:?}");
        if let Some(family) = bare.strip_suffix("_bucket") {
            let le = series
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .expect("bucket sample carries an le label")
                .to_string();
            let count: u64 = value.parse().expect("bucket counts are integers");
            match buckets.iter_mut().find(|(f, _)| f == family) {
                Some((_, b)) => b.push((le, count)),
                None => buckets.push((family.to_string(), vec![(le, count)])),
            }
        }
    }
    assert_eq!(help_seen, type_seen, "every family has both HELP and TYPE");

    // Per-class scheduling families: the completed query above ran in
    // the default admission class, so its queue-depth gauge, wait
    // histogram, and completion counter must all be on the scrape (and
    // have passed the name/HELP/TYPE lint above like any other family).
    for family in [
        "sketchql_server_class_default_queue_depth",
        "sketchql_server_class_default_queue_wait_ms_count",
        "sketchql_server_class_default_completed",
    ] {
        assert!(
            sample_value(&text, family).is_some(),
            "per-class family {family} missing from the exposition"
        );
    }

    // Shard-tier families: the store-served alpha query above loaded
    // and probed at least one shard, so residency, load, probe, and
    // mapped-bytes series must all be on the scrape (and have passed
    // the name/HELP/TYPE lint above like any other family).
    for family in [
        "sketchql_shard_resident",
        "sketchql_shard_loads",
        "sketchql_shard_probes",
        "sketchql_shard_bytes_mapped",
    ] {
        let v = sample_value(&text, family)
            .unwrap_or_else(|| panic!("shard family {family} missing from the exposition"));
        assert!(v > 0.0, "{family} must be positive after sharded traffic");
    }

    assert!(!buckets.is_empty(), "traffic must populate histograms");
    for (family, b) in &buckets {
        assert!(
            b.windows(2).all(|w| w[0].1 <= w[1].1),
            "{family} buckets must be cumulative: {b:?}"
        );
        let (last_le, last_count) = b.last().unwrap();
        assert_eq!(last_le, "+Inf", "{family} must end with the +Inf bucket");
        let total = sample_value(&text, &format!("{family}_count"))
            .unwrap_or_else(|| panic!("{family}_count sample missing"));
        assert_eq!(
            *last_count, total as u64,
            "{family}: +Inf bucket must equal _count"
        );
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
