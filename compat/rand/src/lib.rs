//! In-tree stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`]. The generator behind
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a fixed seed, which is all the test-suite and the
//! training pipeline rely on (no code depends on the exact stream of the
//! upstream crate).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a uniform distribution over bounded ranges.
///
/// The blanket [`SampleRange`] impls below are keyed on this trait (mirroring
/// `rand`'s `SampleUniform`) so that the element type of a range literal like
/// `0.4..1.0` unifies with the surrounding expression instead of defaulting
/// to `f64`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors; guarantees a non-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i: i32 = r.gen_range(-5..10);
            assert!((-5..10).contains(&i));
            let u: usize = r.gen_range(0..7);
            assert!(u < 7);
            let inc: u32 = r.gen_range(1..=3);
            assert!((1..=3).contains(&inc));
            let f: f32 = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn generic_functions_accept_rng_by_ref() {
        fn draw<R: super::Rng>(rng: &mut R) -> u32 {
            rng.gen_range(0..100)
        }
        let mut r = StdRng::seed_from_u64(5);
        let v = draw(&mut r);
        assert!(v < 100);
    }

    #[test]
    fn uniform_float_covers_range() {
        let mut r = StdRng::seed_from_u64(6);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            lo_seen |= v < 0.1;
            hi_seen |= v > 0.9;
        }
        assert!(lo_seen && hi_seen);
    }
}
