//! The Tuner: adapting the learned similarity with explicit user feedback
//! (§2.2, optional component).
//!
//! Two mechanisms, matching the paper's description of incorporating
//! "explicit user feedback when provided to improve the retrieval quality":
//!
//! * [`Reranker`] — a training-free prototype re-ranker: candidates near
//!   user-confirmed positives gain score, candidates near rejected clips
//!   lose score. Instant, reversible, no weight updates.
//! * [`fine_tune`] — triplet-loss fine-tuning of the encoder on
//!   (query, positive, negative) triplets built from the feedback, for
//!   queries where re-ranking is not enough.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sketchql_nn::{cosine_similarity, triplet, Adam, AdamConfig, Graph};
use sketchql_trajectory::Clip;

use crate::training::{clip_features_tensor, TrainedModel};

/// One piece of user feedback on a retrieved clip.
#[derive(Debug, Clone)]
pub struct Feedback {
    /// The retrieved candidate clip the user judged.
    pub clip: Clip,
    /// Whether the user marked it relevant.
    pub relevant: bool,
}

/// Tuner hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Triplet margin for fine-tuning.
    pub margin: f32,
    /// Fine-tuning learning rate (smaller than pretraining).
    pub lr: f32,
    /// Fine-tuning epochs over the feedback triplets.
    pub epochs: usize,
    /// Weight of the prototype terms in re-ranking.
    pub proto_weight: f32,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            margin: 0.2,
            lr: 2e-4,
            epochs: 12,
            proto_weight: 0.5,
        }
    }
}

/// A training-free feedback re-ranker over embedding space.
#[derive(Debug, Clone)]
pub struct Reranker {
    positives: Vec<Vec<f32>>,
    negatives: Vec<Vec<f32>>,
    weight: f32,
}

impl Reranker {
    /// Builds a re-ranker from feedback, embedding each judged clip with
    /// `model`. Clips the featurizer rejects are ignored.
    pub fn new(model: &TrainedModel, feedback: &[Feedback], config: &TunerConfig) -> Self {
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        for f in feedback {
            if let Some(e) = model.embed(&f.clip) {
                if f.relevant {
                    positives.push(e);
                } else {
                    negatives.push(e);
                }
            }
        }
        Reranker {
            positives,
            negatives,
            weight: config.proto_weight,
        }
    }

    /// Number of positive / negative prototypes held.
    pub fn prototype_counts(&self) -> (usize, usize) {
        (self.positives.len(), self.negatives.len())
    }

    /// Adjusts a base similarity score for a candidate embedding: pulled up
    /// by proximity to positive prototypes, pushed down by proximity to
    /// negative prototypes. Output is clamped to `[0, 1]`.
    pub fn adjust(&self, base_score: f32, candidate_embedding: &[f32]) -> f32 {
        let mean_sim = |protos: &[Vec<f32>]| -> f32 {
            if protos.is_empty() {
                return 0.0;
            }
            protos
                .iter()
                .map(|p| cosine_similarity(p, candidate_embedding))
                .sum::<f32>()
                / protos.len() as f32
        };
        let bonus = mean_sim(&self.positives);
        let penalty = mean_sim(&self.negatives);
        (base_score + self.weight * (bonus - penalty) * 0.5).clamp(0.0, 1.0)
    }
}

/// Fine-tunes the encoder with triplet loss on (query, positive, negative)
/// combinations from the feedback. Returns a new model; the input model is
/// untouched (so tuning is per-query and revertible, as in the paper's
/// design where the Tuner is optional).
///
/// If the feedback lacks positives or negatives, the model is returned
/// unchanged (no triplets can be formed).
pub fn fine_tune(
    model: &TrainedModel,
    query: &Clip,
    feedback: &[Feedback],
    config: &TunerConfig,
) -> TrainedModel {
    let steps = model.config.encoder.steps;
    let Some(query_t) = clip_features_tensor(query, steps) else {
        return model.clone();
    };
    let pos_t: Vec<_> = feedback
        .iter()
        .filter(|f| f.relevant)
        .filter_map(|f| clip_features_tensor(&f.clip, steps))
        .collect();
    let neg_t: Vec<_> = feedback
        .iter()
        .filter(|f| !f.relevant)
        .filter_map(|f| clip_features_tensor(&f.clip, steps))
        .collect();
    if pos_t.is_empty() || neg_t.is_empty() {
        return model.clone();
    }

    let mut tuned = model.clone();
    let mut adam = Adam::new(AdamConfig {
        lr: config.lr,
        ..Default::default()
    });
    // Seeded for the (currently unused) possibility of dropout masks.
    let _rng = StdRng::seed_from_u64(model.config.seed ^ 0x7e_u64);

    for _ in 0..config.epochs {
        let mut g = Graph::new(&tuned.store);
        let q_in = g.input(query_t.clone());
        let q_emb = tuned.encoder.forward(&mut g, q_in);
        let mut triplets = Vec::new();
        for p in &pos_t {
            let p_in = g.input(p.clone());
            let p_emb = tuned.encoder.forward(&mut g, p_in);
            for n in &neg_t {
                let n_in = g.input(n.clone());
                let n_emb = tuned.encoder.forward(&mut g, n_in);
                triplets.push((q_emb, p_emb, n_emb));
            }
        }
        let loss = triplet(&mut g, &triplets, config.margin);
        let grads = g.grads_by_name(loss);
        adam.step(&mut tuned.store, &grads);
    }
    tuned
}

/// One round of the interactive feedback loop.
#[derive(Debug, Clone)]
pub struct FeedbackRound {
    /// 1-based round number.
    pub round: usize,
    /// Number of newly labeled results this round.
    pub labeled: usize,
    /// How many of the labeled results were relevant.
    pub relevant: usize,
}

/// Runs the demo's implicit interaction loop programmatically: query →
/// user labels the top `k` unseen results → fine-tune → repeat.
///
/// `judge` plays the user: given a retrieved clip and its frame range it
/// returns whether the user would mark it relevant. Returns the per-round
/// summaries and leaves `session.model` fine-tuned in place. Rounds where
/// no *new* results surface stop the loop early.
pub fn active_feedback_loop(
    session: &mut crate::session::SketchQL,
    dataset: &str,
    query: &Clip,
    rounds: usize,
    top_k: usize,
    config: &TunerConfig,
    mut judge: impl FnMut(&Clip, u32, u32) -> bool,
) -> Result<Vec<FeedbackRound>, crate::session::SessionError> {
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let mut log = Vec::new();
    for round in 1..=rounds {
        let results = session.run_query(dataset, query)?;
        let mut feedback = Vec::new();
        for m in results.iter().take(top_k) {
            if !seen.insert((m.start, m.end)) {
                continue;
            }
            let clip = session.moment_clip(dataset, m)?;
            let relevant = judge(&clip, m.start, m.end);
            feedback.push(Feedback { clip, relevant });
        }
        if feedback.is_empty() {
            break;
        }
        let relevant = feedback.iter().filter(|f| f.relevant).count();
        log.push(FeedbackRound {
            round,
            labeled: feedback.len(),
            relevant,
        });
        session.apply_feedback(query, &feedback, config);
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train, TrainingConfig};
    use sketchql_trajectory::{BBox, ObjectClass, TrajPoint, Trajectory};

    fn clip_with_slope(slope: f32) -> Clip {
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..30)
                .map(|f| {
                    TrajPoint::new(
                        f,
                        BBox::new(f as f32 * 6.0, 300.0 + f as f32 * slope, 50.0, 30.0),
                    )
                })
                .collect(),
        );
        Clip::new(1280.0, 720.0, vec![t])
    }

    fn tiny_model() -> TrainedModel {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 10;
        train(cfg)
    }

    #[test]
    fn reranker_boosts_near_positives() {
        let model = tiny_model();
        let cfg = TunerConfig::default();
        let pos = clip_with_slope(0.0);
        let neg = clip_with_slope(10.0);
        let feedback = vec![
            Feedback {
                clip: pos.clone(),
                relevant: true,
            },
            Feedback {
                clip: neg.clone(),
                relevant: false,
            },
        ];
        let rr = Reranker::new(&model, &feedback, &cfg);
        assert_eq!(rr.prototype_counts(), (1, 1));
        // A candidate identical to the positive prototype gains; one
        // identical to the negative loses.
        let e_pos = model.embed(&pos).unwrap();
        let e_neg = model.embed(&neg).unwrap();
        let up = rr.adjust(0.5, &e_pos);
        let down = rr.adjust(0.5, &e_neg);
        assert!(
            up > down,
            "positive-like {up} should beat negative-like {down}"
        );
    }

    #[test]
    fn reranker_clamps_scores() {
        let model = tiny_model();
        let cfg = TunerConfig {
            proto_weight: 10.0,
            ..Default::default()
        };
        let pos = clip_with_slope(0.0);
        let feedback = vec![Feedback {
            clip: pos.clone(),
            relevant: true,
        }];
        let rr = Reranker::new(&model, &feedback, &cfg);
        let e = model.embed(&pos).unwrap();
        let s = rr.adjust(0.9, &e);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn reranker_without_feedback_is_identity() {
        let model = tiny_model();
        let rr = Reranker::new(&model, &[], &TunerConfig::default());
        let e = model.embed(&clip_with_slope(1.0)).unwrap();
        assert_eq!(rr.adjust(0.42, &e), 0.42);
    }

    #[test]
    fn fine_tune_moves_positive_closer_than_negative() {
        let model = tiny_model();
        let query = clip_with_slope(0.2);
        let pos = clip_with_slope(0.0);
        let neg = clip_with_slope(12.0);
        let feedback = vec![
            Feedback {
                clip: pos.clone(),
                relevant: true,
            },
            Feedback {
                clip: neg.clone(),
                relevant: false,
            },
        ];
        let cfg = TunerConfig {
            epochs: 25,
            lr: 1e-3,
            ..Default::default()
        };
        let tuned = fine_tune(&model, &query, &feedback, &cfg);

        let sim = |m: &TrainedModel, a: &Clip, b: &Clip| {
            cosine_similarity(&m.embed(a).unwrap(), &m.embed(b).unwrap())
        };
        let before_gap = sim(&model, &query, &pos) - sim(&model, &query, &neg);
        let after_gap = sim(&tuned, &query, &pos) - sim(&tuned, &query, &neg);
        assert!(
            after_gap > before_gap,
            "tuning should widen the pos/neg gap: {before_gap:.3} -> {after_gap:.3}"
        );
    }

    #[test]
    fn fine_tune_without_usable_feedback_is_noop() {
        let model = tiny_model();
        let query = clip_with_slope(0.0);
        let only_pos = vec![Feedback {
            clip: clip_with_slope(0.1),
            relevant: true,
        }];
        let tuned = fine_tune(&model, &query, &only_pos, &TunerConfig::default());
        assert_eq!(tuned.store, model.store);
    }

    #[test]
    fn active_loop_labels_fresh_results_each_round() {
        use rand::SeedableRng;
        let model = tiny_model();
        let mut sq = crate::session::SketchQL::new(model);
        let video = sketchql_datasets::generate_video(
            sketchql_datasets::VideoConfig {
                family: sketchql_datasets::SceneFamily::UrbanIntersection,
                events_per_kind: 1,
                distractors: 2,
                fps: 30.0,
            },
            321,
            &mut rand::rngs::StdRng::seed_from_u64(321),
        );
        sq.upload_index("v", crate::index::VideoIndex::from_truth(&video));
        let query = sketchql_datasets::query_clip(sketchql_datasets::EventKind::LeftTurn);
        let truth = video.events_of(sketchql_datasets::EventKind::LeftTurn);
        let cfg = TunerConfig {
            epochs: 1,
            ..Default::default()
        };
        let rounds = active_feedback_loop(&mut sq, "v", &query, 3, 4, &cfg, |_, s, e| {
            truth.iter().any(|t| t.temporal_iou(s, e) >= 0.3)
        })
        .unwrap();
        assert!(!rounds.is_empty());
        assert_eq!(rounds[0].round, 1);
        assert!(rounds[0].labeled <= 4);
        // No (start,end) pair is labeled twice across rounds: total labels
        // grow round over round only with fresh results.
        let total: usize = rounds.iter().map(|r| r.labeled).sum();
        assert!(total >= rounds[0].labeled);
    }

    #[test]
    fn fine_tune_does_not_mutate_original() {
        let model = tiny_model();
        let snapshot = model.store.clone();
        let query = clip_with_slope(0.0);
        let feedback = vec![
            Feedback {
                clip: clip_with_slope(0.1),
                relevant: true,
            },
            Feedback {
                clip: clip_with_slope(8.0),
                relevant: false,
            },
        ];
        let _ = fine_tune(&model, &query, &feedback, &TunerConfig::default());
        assert_eq!(model.store, snapshot);
    }
}
