//! End-to-end integration with the learned model: train a small encoder on
//! simulator pairs, then run the complete demo workflow (upload → sketch →
//! run → display → feedback).
//!
//! The model here is deliberately tiny (seconds of training); assertions
//! check *behavioral* properties (positives beat negatives, queries rank
//! true events above chance) rather than exact numbers.

use sketchql::prelude::*;
use sketchql::training::{evaluate_pairs, train};
use sketchql_datasets::{query_clip, EventKind, SceneFamily};
use sketchql_simulator::{PairGenerator, RandomSceneSampler};
use std::sync::OnceLock;

fn shared_model() -> &'static TrainedModel {
    static MODEL: OnceLock<TrainedModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 60;
        train(cfg)
    })
}

#[test]
fn contrastive_training_produces_view_invariance() {
    let model = shared_model();
    let generator = PairGenerator::new(
        RandomSceneSampler::new(model.config.sampler),
        model.config.pairgen,
    );
    let eval = evaluate_pairs(model, &generator, 16, 4242);
    // Two camera views of the same 3D event must embed closer than views
    // of different events — the zero-shot property the paper trains for.
    assert!(
        eval.mean_positive > eval.mean_negative + 0.05,
        "positive pairs should be clearly closer: {eval:?}"
    );
    // Chance is 1/16 = 0.0625; the 60-step tiny model must beat it clearly
    // (the full recipe reaches ~0.5-0.7, see experiments A1).
    assert!(
        eval.top1_accuracy > 0.15,
        "top-1 view retrieval should beat chance (1/16): {eval:?}"
    );
}

#[test]
fn demo_workflow_q1_with_learned_model() {
    let mut sq = SketchQL::new(shared_model().clone());
    let video = sketchql_suite::demo_video(SceneFamily::UrbanIntersection, 77);
    let summary = sq.upload_dataset("traffic", &video);
    assert!(summary.num_tracks >= 4);

    // Sketch Q1 through the interactive API.
    let mut sketch = sq.new_sketch();
    let car = sketch
        .create_object(ObjectClass::Car, Point2::new(150.0, 450.0))
        .unwrap();
    sketch.set_mode(MouseMode::Drag);
    sketch
        .drag_object_along(
            car,
            &[
                Point2::new(300.0, 450.0),
                Point2::new(450.0, 445.0),
                Point2::new(600.0, 430.0),
                Point2::new(650.0, 330.0),
                Point2::new(660.0, 180.0),
            ],
        )
        .unwrap();
    let seg = sketch.panel().lane(car)[0];
    sketch.stretch_segment(seg, 80).unwrap();
    let results = sq.run_sketch("traffic", &sketch).unwrap();
    assert!(!results.is_empty());
    let views = sq.display("traffic", &results).unwrap();
    assert_eq!(views[0].rank, 1);
    // Every returned moment is scored and well-formed.
    for v in &views {
        assert!((0.0..=1.0).contains(&v.score));
        assert!(v.start <= v.end);
    }
}

#[test]
fn q2_alignment_changes_results() {
    let mut sq = SketchQL::new(shared_model().clone());
    let video = sketchql_suite::demo_video(SceneFamily::UrbanIntersection, 78);
    sq.upload_dataset("v", &video);

    let mut sketch = sq.new_sketch();
    let person = sketch
        .create_object(ObjectClass::Person, Point2::new(200.0, 300.0))
        .unwrap();
    let car = sketch
        .create_object(ObjectClass::Car, Point2::new(500.0, 80.0))
        .unwrap();
    sketch.set_mode(MouseMode::Drag);
    let p_seg = sketch
        .drag_object_along(
            person,
            &[Point2::new(400.0, 300.0), Point2::new(650.0, 300.0)],
        )
        .unwrap();
    let c_seg = sketch
        .drag_object_along(car, &[Point2::new(500.0, 260.0), Point2::new(500.0, 480.0)])
        .unwrap();
    sketch.stretch_segment(p_seg, 60).unwrap();
    sketch.stretch_segment(c_seg, 60).unwrap();
    sketch.shift_segment(c_seg, 80).unwrap();
    let before = sketch.compile().unwrap();

    sketch.align_segments(c_seg, p_seg).unwrap();
    let after = sketch.compile().unwrap();

    // Synchronization shortens the event and overlaps the motions.
    assert!(after.span() < before.span());
    let q_before = sq.run_query("v", &before).unwrap();
    let q_after = sq.run_query("v", &after).unwrap();
    // Both run; the queries are genuinely different.
    assert_ne!(before, after);
    assert!(!q_before.is_empty() || !q_after.is_empty());
}

#[test]
fn feedback_loop_runs_end_to_end() {
    let mut sq = SketchQL::new(shared_model().clone());
    let video = sketchql_suite::demo_video(SceneFamily::ParkingLot, 79);
    sq.upload_dataset("lot", &video);
    let query = query_clip(EventKind::RightTurn);
    let results = sq.run_query("lot", &query).unwrap();
    assert!(results.len() >= 2);

    let truth = video.events_of(EventKind::RightTurn);
    let feedback: Vec<Feedback> = results
        .iter()
        .take(4)
        .map(|m| Feedback {
            clip: sq.moment_clip("lot", m).unwrap(),
            relevant: truth.iter().any(|t| t.temporal_iou(m.start, m.end) >= 0.3),
        })
        .collect();
    let cfg = TunerConfig {
        epochs: 2,
        ..Default::default()
    };
    sq.apply_feedback(&query, &feedback, &cfg);
    // The session still answers queries after tuning.
    let again = sq.run_query("lot", &query).unwrap();
    for m in &again {
        assert!((0.0..=1.0).contains(&m.score));
    }
}

#[test]
fn learned_similarity_is_view_consistent_on_canonical_queries() {
    // The same canonical query embedded twice gives identical scores, and
    // scoring is symmetric enough that self-similarity is maximal.
    let model = shared_model();
    let sim = model.similarity();
    for &kind in EventKind::ALL {
        let q = query_clip(kind);
        let e1 = sim.embed(&q).unwrap();
        let e2 = sim.embed(&q).unwrap();
        assert_eq!(e1, e2, "{kind}: embedding must be deterministic");
        let s = sketchql_nn::cosine_similarity(&e1, &e2);
        assert!((s - 1.0).abs() < 1e-5);
    }
}
