//! Neural network modules: parameter store, graph binding, linear layers,
//! multi-head self-attention, transformer encoder blocks, and the
//! trajectory encoder itself.
//!
//! Modules are *stateless descriptions*: they own parameter **names** and
//! hyper-parameters, while the parameter **values** live in a [`ParamStore`].
//! A forward pass binds store values onto a fresh [`Tape`] through a
//! [`Graph`], which lets one training step build the whole batch graph and
//! read per-parameter gradients back out by name.

use crate::tape::{Gradients, NodeId, Tape};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Named parameter tensors. `BTreeMap` keeps iteration order deterministic,
/// which keeps training runs bit-reproducible for a fixed seed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamStore {
    params: BTreeMap<String, Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter; panics if the name is already taken (module
    /// prefixes must be unique).
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) {
        let name = name.into();
        let prev = self.params.insert(name.clone(), value);
        assert!(prev.is_none(), "duplicate parameter name {name:?}");
    }

    /// Looks up a parameter.
    pub fn get(&self, name: &str) -> &Tensor {
        self.params
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    /// Mutable lookup (used by optimizers).
    pub fn get_mut(&mut self, name: &str) -> &mut Tensor {
        self.params
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    /// Iterates parameters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.params.iter()
    }

    /// Names in deterministic order.
    pub fn names(&self) -> Vec<String> {
        self.params.keys().cloned().collect()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.values().map(Tensor::len).sum()
    }
}

/// A forward-pass context: a tape plus the binding of parameter names to
/// tape nodes.
pub struct Graph<'s> {
    /// The underlying autograd tape; modules may record extra ops directly.
    pub tape: Tape,
    store: &'s ParamStore,
    bound: HashMap<String, NodeId>,
}

impl<'s> Graph<'s> {
    /// Starts a fresh graph over a parameter store.
    pub fn new(store: &'s ParamStore) -> Self {
        Graph {
            tape: Tape::new(),
            store,
            bound: HashMap::new(),
        }
    }

    /// Binds (or reuses) the node holding parameter `name`.
    pub fn param(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.bound.get(name) {
            return id;
        }
        let id = self.tape.leaf(self.store.get(name).clone());
        self.bound.insert(name.to_string(), id);
        id
    }

    /// Inserts a non-trainable input tensor.
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.tape.leaf(t)
    }

    /// Runs backward from `loss` and collects gradients per parameter name.
    pub fn grads_by_name(&self, loss: NodeId) -> HashMap<String, Tensor> {
        let grads: Gradients = self.tape.backward(loss);
        self.bound
            .iter()
            .filter_map(|(name, &id)| grads.get(id).map(|g| (name.clone(), g.clone())))
            .collect()
    }
}

/// A fully connected layer `y = x @ W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    w: String,
    b: String,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Registers freshly initialized weights under `prefix`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = format!("{prefix}.w");
        let b = format!("{prefix}.b");
        store.insert(&w, Tensor::xavier(in_dim, out_dim, rng));
        store.insert(&b, Tensor::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// `x (T x in) -> T x out`.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let w = g.param(&self.w);
        let b = g.param(&self.b);
        let xw = g.tape.matmul(x, w);
        g.tape.add_row_broadcast(xw, b)
    }

    /// Tape-free inference forward into `out`: `x @ W + b`, replicating
    /// the tape ops' per-row arithmetic exactly. Every output row depends
    /// only on its input row, so stacked batches produce bit-identical
    /// rows.
    fn forward_tensor_into(&self, store: &ParamStore, x: &Tensor, out: &mut Tensor) {
        crate::kernels::matmul_into(x, store.get(&self.w), out);
        let b = store.get(&self.b);
        for r in 0..out.rows {
            for (o, bv) in out.row_mut(r).iter_mut().zip(&b.data) {
                *o += *bv;
            }
        }
    }
}

/// Learned layer-norm gain/bias pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: String,
    beta: String,
    /// Normalized width.
    pub dim: usize,
}

impl LayerNorm {
    /// Registers gamma=1, beta=0 under `prefix`.
    pub fn new(store: &mut ParamStore, prefix: &str, dim: usize) -> Self {
        let gamma = format!("{prefix}.gamma");
        let beta = format!("{prefix}.beta");
        store.insert(&gamma, Tensor::ones(1, dim));
        store.insert(&beta, Tensor::zeros(1, dim));
        LayerNorm { gamma, beta, dim }
    }

    /// Row-wise layer norm.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        g.tape.layer_norm_rows(x, gamma, beta)
    }

    /// Tape-free in-place inference forward: normalizes every row of `x`
    /// through the vectorized kernel, which is bit-identical to the
    /// tape op (both share the strided-summation semantics in
    /// [`crate::kernels`]).
    fn normalize_rows(&self, store: &ParamStore, x: &mut Tensor) {
        let g = store.get(&self.gamma);
        let b = store.get(&self.beta);
        for r in 0..x.rows {
            crate::kernels::layer_norm_row(x.row_mut(r), &g.data, &b.data, crate::tape::LN_EPS);
        }
    }
}

/// Multi-head scaled dot-product self-attention.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    /// Number of attention heads; must divide the model width.
    pub heads: usize,
    /// Model width.
    pub d_model: usize,
}

impl MultiHeadSelfAttention {
    /// Registers projection weights under `prefix`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        prefix: &str,
        d_model: usize,
        heads: usize,
    ) -> Self {
        assert!(d_model.is_multiple_of(heads), "heads must divide d_model");
        MultiHeadSelfAttention {
            wq: Linear::new(store, rng, &format!("{prefix}.wq"), d_model, d_model),
            wk: Linear::new(store, rng, &format!("{prefix}.wk"), d_model, d_model),
            wv: Linear::new(store, rng, &format!("{prefix}.wv"), d_model, d_model),
            wo: Linear::new(store, rng, &format!("{prefix}.wo"), d_model, d_model),
            heads,
            d_model,
        }
    }

    /// `x (T x d_model) -> T x d_model`.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let q = self.wq.forward(g, x);
        let k = self.wk.forward(g, x);
        let v = self.wv.forward(g, x);
        let dh = self.d_model / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = g.tape.slice_cols(q, h * dh, dh);
            let kh = g.tape.slice_cols(k, h * dh, dh);
            let vh = g.tape.slice_cols(v, h * dh, dh);
            let kt = g.tape.transpose(kh);
            let scores = g.tape.matmul(qh, kt);
            let scaled = g.tape.scale(scores, scale);
            let attn = g.tape.softmax_rows(scaled);
            head_outs.push(g.tape.matmul(attn, vh));
        }
        let concat = g.tape.concat_cols(&head_outs);
        self.wo.forward(g, concat)
    }

    /// Tape-free inference forward over stacked sequence blocks, reading
    /// `ws.norm` and writing `ws.sub`. The Q/K/V projections run fused as
    /// one batched matmul against the column-concatenated `[Wq|Wk|Wv]`
    /// weight (each output column accumulates independently in the same
    /// ascending-`k` order, so fusion is value-transparent); the attention
    /// itself is computed per sequence block, so tokens never attend
    /// across batch items and each block's output is bit-identical to a
    /// solo [`forward`] pass. All intermediates live in the workspace —
    /// the whole pass allocates nothing.
    ///
    /// [`forward`]: MultiHeadSelfAttention::forward
    fn forward_blocks_into(&self, store: &ParamStore, seq: usize, ws: &mut BatchWorkspace) {
        debug_assert_eq!(ws.norm.rows % seq, 0, "rows must stack whole sequences");
        let blocks = ws.norm.rows / seq;
        let d = self.d_model;
        // Assemble the fused weight and bias (a copy ~300x smaller than
        // the matmul it fuses, so rebuilding per call is in the noise).
        let (wq, wk, wv) = (
            store.get(&self.wq.w),
            store.get(&self.wk.w),
            store.get(&self.wv.w),
        );
        for r in 0..d {
            ws.wqkv.row_mut(r)[..d].copy_from_slice(wq.row(r));
            ws.wqkv.row_mut(r)[d..2 * d].copy_from_slice(wk.row(r));
            ws.wqkv.row_mut(r)[2 * d..].copy_from_slice(wv.row(r));
        }
        ws.bqkv.data[..d].copy_from_slice(&store.get(&self.wq.b).data);
        ws.bqkv.data[d..2 * d].copy_from_slice(&store.get(&self.wk.b).data);
        ws.bqkv.data[2 * d..].copy_from_slice(&store.get(&self.wv.b).data);
        crate::kernels::matmul_into(&ws.norm, &ws.wqkv, &mut ws.qkv);
        for r in 0..ws.qkv.rows {
            for (o, bv) in ws.qkv.row_mut(r).iter_mut().zip(&ws.bqkv.data) {
                *o += *bv;
            }
        }
        let dh = self.d_model / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        // K is copied out pre-transposed so the score matmul streams both
        // operands row-major.
        for b in 0..blocks {
            let r0 = b * seq;
            for h in 0..self.heads {
                let c0 = h * dh;
                for r in 0..seq {
                    let row = ws.qkv.row(r0 + r);
                    ws.qh.row_mut(r).copy_from_slice(&row[c0..c0 + dh]);
                    ws.vh
                        .row_mut(r)
                        .copy_from_slice(&row[2 * d + c0..2 * d + c0 + dh]);
                    let krow = &row[d + c0..d + c0 + dh];
                    for (c, &kv) in krow.iter().enumerate() {
                        ws.kt.data[c * seq + r] = kv;
                    }
                }
                crate::kernels::matmul_into(&ws.qh, &ws.kt, &mut ws.attn);
                for e in ws.attn.data.iter_mut() {
                    *e *= scale;
                }
                for r in 0..seq {
                    crate::kernels::softmax_row(ws.attn.row_mut(r));
                }
                crate::kernels::matmul_into(&ws.attn, &ws.vh, &mut ws.head_out);
                for r in 0..seq {
                    ws.concat.row_mut(r0 + r)[c0..c0 + dh].copy_from_slice(ws.head_out.row(r));
                }
            }
        }
        self.wo.forward_tensor_into(store, &ws.concat, &mut ws.sub);
    }
}

/// Scratch buffers for one batched tape-free forward pass, reused across
/// every layer so the per-layer loop allocates nothing, and parked in a
/// thread-local between [`TrajectoryEncoder::embed_batch`] calls so
/// steady-state scans (many same-shaped batches) skip the multi-megabyte
/// allocation entirely.
struct BatchWorkspace {
    /// Layer-norm output feeding attention / feed-forward (`rows x d_model`).
    norm: Tensor,
    /// Fused Q/K/V projection output (`rows x 3*d_model`).
    qkv: Tensor,
    /// Column-concatenated `[Wq|Wk|Wv]` (`d_model x 3*d_model`).
    wqkv: Tensor,
    /// Concatenated Q/K/V biases (`1 x 3*d_model`).
    bqkv: Tensor,
    /// Concatenated head outputs (`rows x d_model`).
    concat: Tensor,
    /// Sub-block result: attention or feed-forward output (`rows x d_model`).
    sub: Tensor,
    /// Feed-forward hidden activations (`rows x ff_hidden`).
    hidden: Tensor,
    /// One head's queries (`seq x dh`).
    qh: Tensor,
    /// One head's keys, pre-transposed (`dh x seq`).
    kt: Tensor,
    /// One head's values (`seq x dh`).
    vh: Tensor,
    /// One head's attention weights (`seq x seq`).
    attn: Tensor,
    /// One head's output (`seq x dh`).
    head_out: Tensor,
}

thread_local! {
    /// Workspace parked between [`TrajectoryEncoder::embed_batch`] calls;
    /// reused when the next call has the same shape.
    static PARKED_WORKSPACE: std::cell::RefCell<Option<BatchWorkspace>> =
        const { std::cell::RefCell::new(None) };
}

impl BatchWorkspace {
    fn new(rows: usize, d_model: usize, ff_hidden: usize, seq: usize, dh: usize) -> Self {
        BatchWorkspace {
            norm: Tensor::zeros(rows, d_model),
            qkv: Tensor::zeros(rows, 3 * d_model),
            wqkv: Tensor::zeros(d_model, 3 * d_model),
            bqkv: Tensor::zeros(1, 3 * d_model),
            concat: Tensor::zeros(rows, d_model),
            sub: Tensor::zeros(rows, d_model),
            hidden: Tensor::zeros(rows, ff_hidden),
            qh: Tensor::zeros(seq, dh),
            kt: Tensor::zeros(dh, seq),
            vh: Tensor::zeros(seq, dh),
            attn: Tensor::zeros(seq, seq),
            head_out: Tensor::zeros(seq, dh),
        }
    }
}

/// Position-wise feed-forward block with GELU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedForward {
    lin1: Linear,
    lin2: Linear,
}

impl FeedForward {
    /// Registers the two projections under `prefix`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        prefix: &str,
        d_model: usize,
        hidden: usize,
    ) -> Self {
        FeedForward {
            lin1: Linear::new(store, rng, &format!("{prefix}.lin1"), d_model, hidden),
            lin2: Linear::new(store, rng, &format!("{prefix}.lin2"), hidden, d_model),
        }
    }

    /// `x -> lin2(gelu(lin1(x)))`.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let h = self.lin1.forward(g, x);
        let a = g.tape.gelu(h);
        self.lin2.forward(g, a)
    }

    /// Tape-free inference forward reading `ws.norm`, writing `ws.sub`,
    /// with the GELU applied in place by the vectorized kernel.
    fn forward_tensor_into(&self, store: &ParamStore, ws: &mut BatchWorkspace) {
        self.lin1
            .forward_tensor_into(store, &ws.norm, &mut ws.hidden);
        crate::kernels::gelu_inplace(&mut ws.hidden.data);
        self.lin2
            .forward_tensor_into(store, &ws.hidden, &mut ws.sub);
    }
}

/// One pre-norm transformer encoder layer:
/// `x + attn(ln1(x))`, then `x + ff(ln2(x))`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderLayer {
    attn: MultiHeadSelfAttention,
    ff: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

impl EncoderLayer {
    /// Registers the layer's parameters under `prefix`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        prefix: &str,
        d_model: usize,
        heads: usize,
        ff_hidden: usize,
    ) -> Self {
        EncoderLayer {
            attn: MultiHeadSelfAttention::new(
                store,
                rng,
                &format!("{prefix}.attn"),
                d_model,
                heads,
            ),
            ff: FeedForward::new(store, rng, &format!("{prefix}.ff"), d_model, ff_hidden),
            ln1: LayerNorm::new(store, &format!("{prefix}.ln1"), d_model),
            ln2: LayerNorm::new(store, &format!("{prefix}.ln2"), d_model),
        }
    }

    /// Applies the layer to a `T x d_model` sequence.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let n1 = self.ln1.forward(g, x);
        let a = self.attn.forward(g, n1);
        let x = g.tape.add(x, a);
        let n2 = self.ln2.forward(g, x);
        let f = self.ff.forward(g, n2);
        g.tape.add(x, f)
    }

    /// Tape-free in-place inference forward over stacked sequences (see
    /// [`MultiHeadSelfAttention::forward_blocks_into`]); `x` is updated
    /// through both residual additions.
    fn forward_tensor_blocks(
        &self,
        store: &ParamStore,
        x: &mut Tensor,
        seq: usize,
        ws: &mut BatchWorkspace,
    ) {
        ws.norm.data.copy_from_slice(&x.data);
        self.ln1.normalize_rows(store, &mut ws.norm);
        self.attn.forward_blocks_into(store, seq, ws);
        for (xi, ai) in x.data.iter_mut().zip(&ws.sub.data) {
            *xi += *ai;
        }
        ws.norm.data.copy_from_slice(&x.data);
        self.ln2.normalize_rows(store, &mut ws.norm);
        self.ff.forward_tensor_into(store, ws);
        for (xi, fi) in x.data.iter_mut().zip(&ws.sub.data) {
            *xi += *fi;
        }
    }
}

/// Sinusoidal positional encoding matrix `T x d`.
pub fn sinusoidal_positions(steps: usize, dim: usize) -> Tensor {
    let mut t = Tensor::zeros(steps, dim);
    for pos in 0..steps {
        for i in 0..dim {
            let rate = 1.0 / 10_000f32.powf((2 * (i / 2)) as f32 / dim as f32);
            let angle = pos as f32 * rate;
            t.data[pos * dim + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    t
}

/// Hyper-parameters of the trajectory encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Width of one input token (from the feature extractor).
    pub input_dim: usize,
    /// Transformer model width.
    pub d_model: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Number of encoder layers.
    pub layers: usize,
    /// Feed-forward hidden width.
    pub ff_hidden: usize,
    /// Output embedding width.
    pub embed_dim: usize,
    /// Number of time steps the encoder expects.
    pub steps: usize,
    /// Whether to add sinusoidal positional encodings (ablatable).
    pub positional: bool,
    /// Sequence pooling strategy (ablatable).
    pub pooling: Pooling,
}

/// How the token sequence is reduced to one embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// Mean over time steps (the paper's choice).
    Mean,
    /// Take the final time step only.
    Last,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            input_dim: 32, // sketchql_trajectory::TOKEN_DIM
            d_model: 32,
            heads: 4,
            layers: 2,
            ff_hidden: 64,
            embed_dim: 32,
            steps: 32,
            positional: true,
            pooling: Pooling::Mean,
        }
    }
}

/// The SketchQL trajectory encoder: a transformer that embeds a multi-object
/// bounding box clip (as a `steps x input_dim` feature matrix) into a single
/// L2-normalized vector. Cosine similarity between two embeddings is the
/// learned clip similarity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajectoryEncoder {
    /// The encoder's hyper-parameters.
    pub config: EncoderConfig,
    input_proj: Linear,
    layers: Vec<EncoderLayer>,
    final_ln: LayerNorm,
    out_proj: Linear,
    positions: Tensor,
}

impl TrajectoryEncoder {
    /// Registers a freshly initialized encoder under `prefix`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        prefix: &str,
        config: EncoderConfig,
    ) -> Self {
        let input_proj = Linear::new(
            store,
            rng,
            &format!("{prefix}.in"),
            config.input_dim,
            config.d_model,
        );
        let layers = (0..config.layers)
            .map(|i| {
                EncoderLayer::new(
                    store,
                    rng,
                    &format!("{prefix}.layer{i}"),
                    config.d_model,
                    config.heads,
                    config.ff_hidden,
                )
            })
            .collect();
        let final_ln = LayerNorm::new(store, &format!("{prefix}.final_ln"), config.d_model);
        let out_proj = Linear::new(
            store,
            rng,
            &format!("{prefix}.out"),
            config.d_model,
            config.embed_dim,
        );
        let positions = sinusoidal_positions(config.steps, config.d_model);
        TrajectoryEncoder {
            config,
            input_proj,
            layers,
            final_ln,
            out_proj,
            positions,
        }
    }

    /// Embeds a `steps x input_dim` feature matrix into a `1 x embed_dim`
    /// unit vector (as a tape node, so it is differentiable).
    pub fn forward(&self, g: &mut Graph<'_>, features: NodeId) -> NodeId {
        let v = g.tape.value(features);
        assert_eq!(v.cols, self.config.input_dim, "feature width mismatch");
        assert_eq!(v.rows, self.config.steps, "feature steps mismatch");
        let mut x = self.input_proj.forward(g, features);
        if self.config.positional {
            let pos = g.input(self.positions.clone());
            x = g.tape.add(x, pos);
        }
        for layer in &self.layers {
            x = layer.forward(g, x);
        }
        let x = self.final_ln.forward(g, x);
        let pooled = match self.config.pooling {
            Pooling::Mean => g.tape.mean_rows(x),
            Pooling::Last => {
                // Select the last row via transpose+slice: rows are time.
                let xt = g.tape.transpose(x);
                let last = g.tape.slice_cols(xt, self.config.steps - 1, 1);
                g.tape.transpose(last)
            }
        };
        let out = self.out_proj.forward(g, pooled);
        g.tape.l2_normalize_rows(out)
    }

    /// Inference helper: embeds a raw feature matrix, returning the vector.
    pub fn embed(&self, store: &ParamStore, features: &Tensor) -> Vec<f32> {
        let mut g = Graph::new(store);
        let f = g.input(features.clone());
        let e = self.forward(&mut g, f);
        g.tape.value(e).data.clone()
    }

    /// Embeds a batch of `steps x input_dim` feature matrices in one
    /// stacked forward pass.
    ///
    /// All N sequences are stacked into a single `(N * steps) x input_dim`
    /// matrix, so every linear projection in every layer runs as one
    /// batched matmul over all rows; attention and pooling are computed
    /// per sequence block. No autograd tape is built. Because every
    /// underlying op is row-local (or block-local) with the same
    /// arithmetic order as the tape ops, the result is **bit-identical**
    /// to calling [`embed`](Self::embed) per item — the matcher's
    /// embedding cache relies on this to keep cached search results
    /// byte-identical to the uncached path.
    pub fn embed_batch(&self, store: &ParamStore, batch: &[&Tensor]) -> Vec<Vec<f32>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let t = self.config.steps;
        let d_in = self.config.input_dim;
        for f in batch {
            assert_eq!(f.cols, d_in, "feature width mismatch");
            assert_eq!(f.rows, t, "feature steps mismatch");
        }
        let n = batch.len();
        let mut stacked = Tensor::zeros(n * t, d_in);
        for (b, f) in batch.iter().enumerate() {
            stacked.data[b * t * d_in..(b + 1) * t * d_in].copy_from_slice(&f.data);
        }
        let d = self.config.d_model;
        let mut x = Tensor::zeros(n * t, d);
        self.input_proj.forward_tensor_into(store, &stacked, &mut x);
        if self.config.positional {
            for b in 0..n {
                for r in 0..t {
                    let row = x.row_mut(b * t + r);
                    for (xi, pi) in row.iter_mut().zip(self.positions.row(r)) {
                        *xi += *pi;
                    }
                }
            }
        }
        let ff_hidden = self.layers.first().map_or(0, |l| l.ff.lin1.out_dim);
        let dh = d / self.config.heads;
        // Reuse the workspace parked by a previous same-shaped call on
        // this thread; every buffer is fully overwritten before it is
        // read, so stale contents are harmless.
        let mut ws = PARKED_WORKSPACE
            .with(|cell| cell.borrow_mut().take())
            .filter(|w| {
                w.norm.rows == n * t
                    && w.norm.cols == d
                    && w.hidden.cols == ff_hidden
                    && w.attn.rows == t
                    && w.qh.cols == dh
            })
            .unwrap_or_else(|| BatchWorkspace::new(n * t, d, ff_hidden, t, dh));
        for layer in &self.layers {
            layer.forward_tensor_blocks(store, &mut x, t, &mut ws);
        }
        PARKED_WORKSPACE.with(|cell| *cell.borrow_mut() = Some(ws));
        self.final_ln.normalize_rows(store, &mut x);
        let mut pooled = Tensor::zeros(n, d);
        match self.config.pooling {
            Pooling::Mean => {
                for b in 0..n {
                    let out = pooled.row_mut(b);
                    for r in 0..t {
                        let row = &x.data[(b * t + r) * d..(b * t + r + 1) * d];
                        for (o, v) in out.iter_mut().zip(row) {
                            *o += *v;
                        }
                    }
                    for o in out.iter_mut() {
                        *o /= t as f32;
                    }
                }
            }
            Pooling::Last => {
                for b in 0..n {
                    pooled.row_mut(b).copy_from_slice(x.row(b * t + t - 1));
                }
            }
        }
        let mut out = Tensor::zeros(n, self.config.embed_dim);
        self.out_proj.forward_tensor_into(store, &pooled, &mut out);
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8);
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
        (0..n).map(|r| out.row(r).to_vec()).collect()
    }
}

/// Cosine similarity between two equal-length vectors.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine on unequal lengths");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na <= 1e-12 || nb <= 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn param_store_registration_and_lookup() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let lin = Linear::new(&mut store, &mut r, "test", 4, 3);
        assert_eq!(store.get("test.w").rows, 4);
        assert_eq!(store.get("test.b").cols, 3);
        assert_eq!(lin.in_dim, 4);
        assert_eq!(store.num_scalars(), 4 * 3 + 3);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_rejected() {
        let mut store = ParamStore::new();
        store.insert("x", Tensor::zeros(1, 1));
        store.insert("x", Tensor::zeros(1, 1));
    }

    #[test]
    fn linear_forward_shape_and_value() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let lin = Linear::new(&mut store, &mut r, "l", 3, 2);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::ones(5, 3));
        let y = lin.forward(&mut g, x);
        let v = g.tape.value(y);
        assert_eq!((v.rows, v.cols), (5, 2));
        // y = 1-vector @ W + b = column sums of W (b = 0).
        let w = store.get("l.w");
        let expect0: f32 = (0..3).map(|i| w.get(i, 0)).sum();
        assert!((v.get(0, 0) - expect0).abs() < 1e-5);
    }

    #[test]
    fn param_binding_is_shared_within_graph() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let lin = Linear::new(&mut store, &mut r, "l", 3, 3);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::ones(2, 3));
        let y1 = lin.forward(&mut g, x);
        let before = g.tape.len();
        let _y2 = lin.forward(&mut g, y1);
        // Second call must not re-leaf the params (2 new nodes per matmul +
        // broadcast only).
        let grown = g.tape.len() - before;
        assert_eq!(grown, 2, "params should be bound once");
    }

    #[test]
    fn attention_output_shape() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let attn = MultiHeadSelfAttention::new(&mut store, &mut r, "a", 8, 2);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::xavier(6, 8, &mut r));
        let y = attn.forward(&mut g, x);
        let v = g.tape.value(y);
        assert_eq!((v.rows, v.cols), (6, 8));
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn attention_head_divisibility() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let _ = MultiHeadSelfAttention::new(&mut store, &mut r, "a", 10, 3);
    }

    #[test]
    fn sinusoidal_positions_properties() {
        let p = sinusoidal_positions(16, 8);
        assert_eq!((p.rows, p.cols), (16, 8));
        // Row 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(0, 1), 1.0);
        // Values bounded by 1.
        assert!(p.data.iter().all(|x| x.abs() <= 1.0));
        // Distinct rows differ.
        assert_ne!(p.row(1), p.row(2));
    }

    #[test]
    fn encoder_embeds_unit_vectors() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cfg = EncoderConfig {
            input_dim: 12,
            d_model: 16,
            heads: 2,
            layers: 2,
            ff_hidden: 32,
            embed_dim: 8,
            steps: 10,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut r, "enc", cfg);
        let feats = Tensor::xavier(10, 12, &mut r);
        let e = enc.embed(&store, &feats);
        assert_eq!(e.len(), 8);
        let n: f32 = e.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(
            (n - 1.0).abs() < 1e-4,
            "embedding should be unit norm, got {n}"
        );
    }

    #[test]
    fn encoder_is_deterministic() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cfg = EncoderConfig {
            input_dim: 6,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            embed_dim: 4,
            steps: 5,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut r, "enc", cfg);
        let feats = Tensor::xavier(5, 6, &mut r);
        assert_eq!(enc.embed(&store, &feats), enc.embed(&store, &feats));
    }

    #[test]
    fn encoder_distinguishes_inputs() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cfg = EncoderConfig {
            input_dim: 6,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            embed_dim: 8,
            steps: 5,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut r, "enc", cfg);
        let a = enc.embed(&store, &Tensor::xavier(5, 6, &mut r));
        let b = enc.embed(&store, &Tensor::xavier(5, 6, &mut r));
        assert!(cosine_similarity(&a, &b) < 0.999);
    }

    #[test]
    fn positional_encoding_changes_output_for_permuted_input() {
        // Without positions, mean-pooling a 1-layer transformer is almost
        // permutation invariant; with positions the embedding must change
        // when we reverse time.
        let mut store = ParamStore::new();
        let mut r = rng();
        let cfg = EncoderConfig {
            input_dim: 6,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            embed_dim: 8,
            steps: 6,
            positional: true,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut r, "enc", cfg);
        let f = Tensor::xavier(6, 6, &mut r);
        let mut rev = f.clone();
        for i in 0..6 {
            rev.row_mut(i).copy_from_slice(f.row(5 - i));
        }
        // Make sure the input actually changed.
        assert_ne!(f, rev);
        let ea = enc.embed(&store, &f);
        let eb = enc.embed(&store, &rev);
        assert!(cosine_similarity(&ea, &eb) < 0.9999);
    }

    #[test]
    fn last_pooling_differs_from_mean_pooling() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let base = EncoderConfig {
            input_dim: 6,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            embed_dim: 8,
            steps: 6,
            ..Default::default()
        };
        let enc_mean = TrajectoryEncoder::new(
            &mut store,
            &mut r,
            "m",
            EncoderConfig {
                pooling: Pooling::Mean,
                ..base.clone()
            },
        );
        let enc_last = TrajectoryEncoder::new(
            &mut store,
            &mut r,
            "l",
            EncoderConfig {
                pooling: Pooling::Last,
                ..base
            },
        );
        let f = Tensor::xavier(6, 6, &mut r);
        // Different params and pooling: embeddings differ but both are unit.
        let a = enc_mean.embed(&store, &f);
        let b = enc_last.embed(&store, &f);
        assert_eq!(a.len(), b.len());
        assert!((a.iter().map(|x| x * x).sum::<f32>().sqrt() - 1.0).abs() < 1e-4);
        assert!((b.iter().map(|x| x * x).sum::<f32>().sqrt() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn embed_batch_matches_embed_exactly() {
        // The cached matcher path depends on bit-identical agreement, so
        // this asserts exact equality, not approximate closeness — across
        // pooling modes and with positions on and off.
        let mut r = rng();
        for (pooling, positional) in [
            (Pooling::Mean, true),
            (Pooling::Mean, false),
            (Pooling::Last, true),
        ] {
            let mut store = ParamStore::new();
            let cfg = EncoderConfig {
                input_dim: 6,
                d_model: 8,
                heads: 2,
                layers: 2,
                ff_hidden: 16,
                embed_dim: 4,
                steps: 5,
                positional,
                pooling,
            };
            let enc = TrajectoryEncoder::new(&mut store, &mut r, "enc", cfg);
            let feats: Vec<Tensor> = (0..7).map(|_| Tensor::xavier(5, 6, &mut r)).collect();
            let refs: Vec<&Tensor> = feats.iter().collect();
            let batched = enc.embed_batch(&store, &refs);
            assert_eq!(batched.len(), feats.len());
            for (f, b) in feats.iter().zip(&batched) {
                assert_eq!(&enc.embed(&store, f), b, "{pooling:?}/{positional}");
            }
        }
    }

    #[test]
    fn embed_batch_of_empty_and_one() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cfg = EncoderConfig {
            input_dim: 6,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            embed_dim: 4,
            steps: 5,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut r, "enc", cfg);
        assert!(enc.embed_batch(&store, &[]).is_empty());
        let f = Tensor::xavier(5, 6, &mut r);
        assert_eq!(enc.embed_batch(&store, &[&f]), vec![enc.embed(&store, &f)]);
    }

    #[test]
    fn cosine_similarity_bounds_and_identity() {
        let a = vec![1.0, 2.0, 3.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        let b = vec![-1.0, -2.0, -3.0];
        assert!((cosine_similarity(&a, &b) + 1.0).abs() < 1e-6);
        let zero = vec![0.0; 3];
        assert_eq!(cosine_similarity(&a, &zero), 0.0);
    }

    #[test]
    fn gradients_flow_to_all_encoder_params() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cfg = EncoderConfig {
            input_dim: 6,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            embed_dim: 4,
            steps: 5,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut r, "enc", cfg);
        let mut g = Graph::new(&store);
        let f = g.input(Tensor::xavier(5, 6, &mut r));
        let e = enc.forward(&mut g, f);
        let sq = g.tape.mul(e, e);
        // Use a weighted mean so the loss is not constant (|e| = 1).
        let w = g.input(Tensor::from_vec(4, 1, vec![1.0, -2.0, 0.5, 3.0]));
        let proj = g.tape.matmul(sq, w);
        let loss = g.tape.mean_all(proj);
        let grads = g.grads_by_name(loss);
        for name in store.names() {
            assert!(grads.contains_key(&name), "no gradient for {name}");
            assert!(grads[&name].is_finite(), "non-finite grad for {name}");
        }
    }

    #[test]
    fn encoder_serde_round_trip_preserves_outputs() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cfg = EncoderConfig {
            input_dim: 6,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            embed_dim: 4,
            steps: 5,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut r, "enc", cfg);
        let json_enc = serde_json::to_string(&enc).unwrap();
        let json_store = serde_json::to_string(&store).unwrap();
        let enc2: TrajectoryEncoder = serde_json::from_str(&json_enc).unwrap();
        let store2: ParamStore = serde_json::from_str(&json_store).unwrap();
        let feats = Tensor::xavier(5, 6, &mut r);
        assert_eq!(enc.embed(&store, &feats), enc2.embed(&store2, &feats));
    }

    #[test]
    fn num_scalars_counts_everything() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let _ = MultiHeadSelfAttention::new(&mut store, &mut r, "a", 8, 2);
        // 4 linear layers of 8x8 weights + 8 biases.
        assert_eq!(store.num_scalars(), 4 * (64 + 8));
    }

    #[test]
    fn param_store_serde_round_trip() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let _ = Linear::new(&mut store, &mut r, "l", 3, 2);
        let json = serde_json::to_string(&store).unwrap();
        let back: ParamStore = serde_json::from_str(&json).unwrap();
        assert_eq!(store, back);
    }
}
