//! Append-equivalence gate for live ingest: `ingest` followed by any
//! sequence of `append_frames` calls must produce a shard set whose
//! rows, vectors, and query results are byte-identical to one
//! from-scratch sharded ingest of the full dataset — across several
//! split points and shard widths — and epoch-scoped search must agree
//! between the two sets while only reporting windows inside the scope.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::cancel::CancelToken;
use sketchql::matcher::{Matcher, MatcherConfig};
use sketchql::similarity::LearnedSimilarity;
use sketchql::training::{train, TrainingConfig};
use sketchql::vshard::{append_frames, ingest_sharded, ShardSet};
use sketchql::vstore::IngestConfig;
use sketchql::VideoIndex;
use sketchql_datasets::{
    extend_video, generate_video, query_clip, EventKind, ExtendConfig, SceneFamily, SyntheticVideo,
    VideoConfig,
};
use sketchql_store::LoadedShard;
use std::path::PathBuf;

fn tiny_model() -> sketchql::training::TrainedModel {
    let mut cfg = TrainingConfig::tiny();
    cfg.steps = 8;
    train(cfg)
}

fn matcher(model: &sketchql::training::TrainedModel) -> Matcher<LearnedSimilarity> {
    Matcher::with_config(model.similarity(), MatcherConfig::default())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skql-live-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A base video plus three streamed continuations: four stages, three
/// split points.
fn streaming_stages(seed: u64) -> Vec<SyntheticVideo> {
    let cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind: 1,
        distractors: 2,
        fps: 30.0,
    };
    let base = generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed));
    let ext = ExtendConfig {
        events_per_kind: 1,
        distractors: 1,
    };
    let mut stages = vec![base];
    for k in 1..=3u64 {
        let next = extend_video(
            stages.last().unwrap(),
            ext,
            &mut StdRng::seed_from_u64(seed + k),
        );
        stages.push(next);
    }
    stages
}

#[test]
fn append_equals_from_scratch_ingest_across_splits_and_widths() {
    let model = tiny_model();
    let m = matcher(&model);
    let queries = [
        query_clip(EventKind::LeftTurn),
        query_clip(EventKind::StopAndGo),
        query_clip(EventKind::LaneChange),
    ];
    let spans: Vec<u32> = queries.iter().map(|q| q.span()).collect();
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &spans);
    let stages = streaming_stages(41);
    let indexes: Vec<VideoIndex> = stages.iter().map(VideoIndex::from_truth).collect();
    let full = indexes.last().unwrap();

    for shard_frames in [25u32, 60] {
        // Incremental: ingest the base, then commit one append per
        // continuation (three split points).
        let dir_inc = temp_dir(&format!("inc-{shard_frames}"));
        let set = ingest_sharded(
            &m.sim,
            &indexes[0],
            "v",
            &ingest_cfg,
            shard_frames,
            &dir_inc,
            &|_| {},
        )
        .unwrap();
        assert_eq!(set.manifest().epoch, 0);
        drop(set);
        let mut total_reused = 0usize;
        for (k, index) in indexes.iter().enumerate().skip(1) {
            let out = append_frames(&m.sim, index, &dir_inc, 2, &|_| {}).unwrap();
            assert_eq!(out.epoch, k as u64, "epochs advance by one per commit");
            assert_eq!(out.old_frames, indexes[k - 1].frames);
            assert_eq!(out.new_frames, index.frames);
            assert!(out.embedded_rows > 0, "appended frames own new windows");
            assert!(out.rewritten_shards >= 1);
            total_reused += out.reused_rows;
            drop(out);
        }
        assert!(
            total_reused > 0,
            "width {shard_frames}: appends never reused a row"
        );

        // From-scratch reference over the final dataset.
        let dir_full = temp_dir(&format!("full-{shard_frames}"));
        ingest_sharded(
            &m.sim,
            full,
            "v",
            &ingest_cfg,
            shard_frames,
            &dir_full,
            &|_| {},
        )
        .unwrap();

        let inc = ShardSet::open(&dir_inc).unwrap();
        let scratch = ShardSet::open(&dir_full).unwrap();

        // (a) Shard-level byte identity of rows and vectors: the
        // incremental grid replays the from-scratch enumeration, so
        // every shard holds the same rows with bit-identical vectors
        // (only the coarse list assignment may differ — the quantizer
        // is trained per ingest but never retrained on append).
        assert_eq!(inc.shard_count(), scratch.shard_count());
        assert_eq!(inc.total_rows(), scratch.total_rows());
        for (a, b) in inc.manifest().shards.iter().zip(&scratch.manifest().shards) {
            assert_eq!((a.frame_start, a.frame_end), (b.frame_start, b.frame_end));
            assert_eq!(a.rows, b.rows, "shard {} row count differs", a.shard_id);
            let open = |dir: &std::path::Path, e: &sketchql_store::ManifestShard| {
                let sum = sketchql_store::manifest::parse_hex_u64(&e.checksum).unwrap();
                LoadedShard::open(&dir.join(&e.file), Some(sum)).unwrap()
            };
            let sa = open(&dir_inc, a);
            let sb = open(&dir_full, b);
            for r in 0..a.rows as usize {
                assert_eq!(sa.row(r), sb.row(r), "shard {} row {r}", a.shard_id);
                let (va, vb) = (sa.vector(r), sb.vector(r));
                assert_eq!(va.len(), vb.len());
                for (x, y) in va.iter().zip(vb) {
                    assert_eq!(x.to_bits(), y.to_bits(), "shard {} row {r}", a.shard_id);
                }
            }
        }

        // (b) Query-result byte identity under exact re-rank with
        // exhaustive probes, for every query.
        let mut inc = inc;
        let mut scratch = scratch;
        inc.nprobe = inc.nlist();
        scratch.nprobe = scratch.nlist();
        for query in &queries {
            let a = m
                .search_with_shards(full, &inc, query, &CancelToken::none())
                .unwrap();
            let b = m
                .search_with_shards(full, &scratch, query, &CancelToken::none())
                .unwrap();
            assert!(a.from_store && b.from_store);
            assert_eq!(
                a.moments, b.moments,
                "width {shard_frames}: results diverged"
            );
            for (x, y) in a.moments.iter().zip(&b.moments) {
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }

        // (c) Epoch-scoped search agrees between the sets, only reports
        // windows inside the scope, and an unbounded scope is the
        // unscoped query bit-for-bit.
        let query = &queries[0];
        let unscoped = m
            .search_with_shards(full, &inc, query, &CancelToken::none())
            .unwrap();
        let zero = m
            .search_with_shards_scoped(full, &inc, query, &CancelToken::none(), Some(0))
            .unwrap();
        assert_eq!(zero.moments, unscoped.moments);
        for stage in &indexes[..3] {
            let min_end = stage.frames;
            let a = m
                .search_with_shards_scoped(full, &inc, query, &CancelToken::none(), Some(min_end))
                .unwrap();
            let b = m
                .search_with_shards_scoped(
                    full,
                    &scratch,
                    query,
                    &CancelToken::none(),
                    Some(min_end),
                )
                .unwrap();
            assert!(a.from_store && b.from_store);
            assert_eq!(a.moments, b.moments, "scope {min_end} diverged");
            // Note: moment ends may dip slightly below the scope — the
            // ranking pipeline's boundary refinement tightens matched
            // windows after scoping; the scope governs which *windows*
            // are considered, not the refined output range.
        }
        // A scope past the last frame admits no window at all.
        let beyond = m
            .search_with_shards_scoped(
                full,
                &inc,
                query,
                &CancelToken::none(),
                Some(full.frames + 1),
            )
            .unwrap();
        assert!(beyond.moments.is_empty(), "scope beyond the video matched");

        std::fs::remove_dir_all(&dir_inc).ok();
        std::fs::remove_dir_all(&dir_full).ok();
    }
}

#[test]
fn append_guards_provenance_and_is_idempotent() {
    let model = tiny_model();
    let m = matcher(&model);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[48]);
    let stages = streaming_stages(51);
    let base = VideoIndex::from_truth(&stages[0]);
    let grown = VideoIndex::from_truth(&stages[1]);
    let dir = temp_dir("guards");
    ingest_sharded(&m.sim, &base, "v", &ingest_cfg, 30, &dir, &|_| {}).unwrap();

    // Re-appending an index the set already covers is a no-op.
    let out = append_frames(&m.sim, &base, &dir, 1, &|_| {}).unwrap();
    assert_eq!(out.epoch, 0);
    assert_eq!(out.rewritten_shards, 0);
    drop(out);

    // A different model must be rejected before any work happens.
    let other = {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 9;
        train(cfg)
    };
    let om = matcher(&other);
    let Err(err) = append_frames(&om.sim, &grown, &dir, 1, &|_| {}) else {
        panic!("append with a foreign model must fail");
    };
    assert!(err.to_string().contains("model"), "got: {err}");

    // Shrinking the video must be rejected.
    append_frames(&m.sim, &grown, &dir, 1, &|_| {}).unwrap();
    let Err(err) = append_frames(&m.sim, &base, &dir, 1, &|_| {}) else {
        panic!("shrinking append must fail");
    };
    assert!(err.to_string().contains("shrink"), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();
}
