#!/usr/bin/env bash
# Store speedup + recall check: runs the store bench, which ingests a
# fixture video into a persistent embedding store and compares query
# latency of the default cached full scan against the ANN-probe +
# exact-re-rank store path. The bench itself asserts bit-identical
# scores on every overlapping moment; this script gates the numbers:
# speedup >= $SKETCHQL_STORE_SPEEDUP_MIN (default 5) and recall@10 >=
# $SKETCHQL_STORE_RECALL_MIN (default 0.95). Writes BENCH_store.json.
#
#   scripts/bench_store.sh                              # full samples
#   SKETCHQL_BENCH_QUICK=1 scripts/bench_store.sh       # fast smoke run
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP="${SKETCHQL_STORE_SPEEDUP_MIN:-5}"
MIN_RECALL="${SKETCHQL_STORE_RECALL_MIN:-0.95}"
OUT_JSON="${SKETCHQL_STORE_BENCH_JSON:-BENCH_store.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

echo "== store bench (cached full scan vs index-backed retrieval)"
cargo bench -p sketchql-bench --bench store -- store_query | tee "$log"

echo
awk -v min="$MIN_SPEEDUP" -v minrec="$MIN_RECALL" -v out="$OUT_JSON" \
    -v quick="${SKETCHQL_BENCH_QUICK:-0}" '
    /^BENCH store_query\// && /median_ns=/ {
        id = $2
        sub(/^store_query\//, "", id)
        for (i = 3; i <= NF; i++)
            if ($i ~ /^median_ns=/) { sub(/^median_ns=/, "", $i); med[id] = $i }
    }
    /^STORE store_recall/ {
        for (i = 3; i <= NF; i++) {
            if ($i ~ /^recall_at_10=/) { sub(/^recall_at_10=/, "", $i); recall = $i }
            if ($i ~ /^queries=/) { sub(/^queries=/, "", $i); queries = $i }
        }
    }
    END {
        if (!("full_scan_cached" in med) || !("index_backed" in med) || med["index_backed"] <= 0) {
            print "missing store_query/{full_scan_cached,index_backed} medians"
            exit 2
        }
        if (recall == "") { print "missing STORE store_recall line"; exit 2 }
        speedup = med["full_scan_cached"] / med["index_backed"]
        printf "before (cached full scan): %.1f ms\n", med["full_scan_cached"] / 1e6
        printf "after  (index-backed):     %.2f ms\n", med["index_backed"] / 1e6
        printf "speedup:   %.2fx (bar: >=%sx)\n", speedup, min
        printf "recall@10: %.3f over %s queries (bar: >=%s)\n", recall, queries, minrec
        printf "{\n" \
               "  \"bench\": \"store_query\",\n" \
               "  \"quick\": %s,\n" \
               "  \"full_scan_cached_ns\": %.0f,\n" \
               "  \"index_backed_ns\": %.0f,\n" \
               "  \"speedup\": %.3f,\n" \
               "  \"min_speedup\": %s,\n" \
               "  \"recall_at_10\": %.3f,\n" \
               "  \"min_recall\": %s,\n" \
               "  \"queries\": %s\n" \
               "}\n", (quick != 0) ? "true" : "false", \
               med["full_scan_cached"], med["index_backed"], speedup, min, \
               recall, minrec, queries > out
        printf "wrote %s\n", out
        ok = (speedup >= min + 0.0) && (recall + 0.0 >= minrec + 0.0)
        exit ok ? 0 : 1
    }
' "$log"
