//! SIMD matmul kernels for the tape-free inference path.
//!
//! [`Tensor::matmul`] keeps the readable scalar ikj loop: it runs inside
//! the autograd tape, where clarity and an obvious correspondence with the
//! backward rules matter more than throughput, and it doubles as the
//! reference oracle the kernels here are differentially tested against.
//! Inference (`TrajectoryEncoder::embed_batch` and the matcher's cached
//! scan built on it) is throughput-bound on these matmuls, so it routes
//! through [`matmul`] / [`matmul_into`], which dispatch at runtime to an
//! AVX-512 or AVX2 kernel when the CPU has one.
//!
//! The kernels tile output columns into vector registers and keep the
//! accumulators resident across the whole `k` loop (several independent
//! add chains per row hide the floating-point add latency); the scalar
//! loop's read-modify-write of the output row in memory is what caps it
//! well below machine peak.
//!
//! ## Bit-exactness
//!
//! The vector kernels produce results `==`-equal to the scalar loop. For a
//! fixed output element `(i, j)` the scalar loop accumulates
//! `out += a[i][k] * b[k][j]` from zero over ascending `k`, one rounded
//! multiply and one rounded add per step. The vector kernels keep exactly
//! that order — lanes run across `j`, never across `k` — and use separate
//! multiply and add instructions (never FMA, whose single rounding would
//! diverge). IEEE-754 multiplies and adds are lane-wise identical to their
//! scalar counterparts, so every lane reproduces the scalar sequence
//! exactly. The `a == 0.0` row skip is replicated as well, keeping even
//! the NaN-propagation corner cases (`0.0 * inf`) identical.
//!
//! ## Shared elementwise and reduction semantics
//!
//! Beyond matmul, this module owns the arithmetic the encoder's forward
//! pass is made of: [`fast_tanh`] and [`fast_exp`] (polynomial
//! approximations evaluated in a pinned operation order), the GELU /
//! softmax / layer-norm row kernels built on them, and the fixed
//! 16-bucket strided summation ([`strided_sum`]) used for every row
//! reduction. Each kernel comes in a scalar form (used by the autograd
//! tape ops) and a vectorized form (used by the batched tape-free
//! inference path); the pairs are differentially tested to produce
//! bit-identical outputs. The bucket count is 16 on every ISA — the
//! summation order is part of the semantics, not an artifact of the
//! vector width — so `TrajectoryEncoder::embed_batch` stays `==`-equal
//! to `embed` everywhere, which is what keeps cached matcher searches
//! byte-identical to the uncached path. NaN inputs stay NaN in both
//! forms (payload bits may differ, as with any x86 vector op).

use crate::tensor::Tensor;

/// `a (R x K) @ b (K x C) -> R x C`, `==`-equal to [`Tensor::matmul`].
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows, b.cols);
    matmul_into(a, b, &mut out);
    out
}

/// Writes `a @ b` into `out`, overwriting it (shape-checked).
///
/// Allows callers with a steady-state shape (the per-block attention
/// loop) to reuse one output buffer across calls.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(a.cols, b.rows, "matmul inner dim mismatch");
    assert_eq!(
        (out.rows, out.cols),
        (a.rows, b.cols),
        "matmul output shape mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature presence checked at runtime.
            if b.cols <= 16 {
                unsafe { matmul_narrow_avx512(a, b, out) };
            } else if b.cols <= 32 {
                unsafe { matmul_narrow2_avx512(a, b, out) };
            } else {
                unsafe { matmul_avx512(a, b, out) };
            }
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked at runtime.
            unsafe { matmul_avx2(a, b, out) };
            return;
        }
    }
    matmul_scalar(a, b, out);
}

/// The reference loop, identical to [`Tensor::matmul`]'s body.
fn matmul_scalar(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (r, k, c) = (a.rows, a.cols, b.cols);
    out.data.fill(0.0);
    for i in 0..r {
        let out_row = &mut out.data[i * c..(i + 1) * c];
        for kk in 0..k {
            let av = a.data[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let b_row = &b.data[kk * c..(kk + 1) * c];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Emits one register-tiled AVX-512 (16-lane) or AVX2 (8-lane) kernel.
///
/// Column tiles of 4/3/2/1 vector registers accumulate across the full
/// `k` loop before a single store; the sub-vector tail differs per ISA
/// (AVX-512 has masked loads/stores, AVX2 falls back to scalar).
macro_rules! simd_matmul {
    (
        $name:ident, $feature:literal, $lanes:expr, $vec:ty,
        $setzero:ident, $set1:ident, $loadu:ident, $storeu:ident,
        $add:ident, $mul:ident, $tail:ident
    ) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = $feature)]
        unsafe fn $name(a: &Tensor, b: &Tensor, out: &mut Tensor) {
            use std::arch::x86_64::*;
            const L: usize = $lanes;
            let (r, k, c) = (a.rows, a.cols, b.cols);
            let bp = b.data.as_ptr();
            for i in 0..r {
                let a_row = &a.data[i * k..(i + 1) * k];
                let o_row = out.data[i * c..(i + 1) * c].as_mut_ptr();
                let mut j = 0;
                while j + 4 * L <= c {
                    let mut s0: $vec = $setzero();
                    let mut s1: $vec = $setzero();
                    let mut s2: $vec = $setzero();
                    let mut s3: $vec = $setzero();
                    for (kk, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let va = $set1(av);
                        let bj = bp.add(kk * c + j);
                        s0 = $add(s0, $mul(va, $loadu(bj)));
                        s1 = $add(s1, $mul(va, $loadu(bj.add(L))));
                        s2 = $add(s2, $mul(va, $loadu(bj.add(2 * L))));
                        s3 = $add(s3, $mul(va, $loadu(bj.add(3 * L))));
                    }
                    $storeu(o_row.add(j), s0);
                    $storeu(o_row.add(j + L), s1);
                    $storeu(o_row.add(j + 2 * L), s2);
                    $storeu(o_row.add(j + 3 * L), s3);
                    j += 4 * L;
                }
                if j + 3 * L <= c {
                    let mut s0: $vec = $setzero();
                    let mut s1: $vec = $setzero();
                    let mut s2: $vec = $setzero();
                    for (kk, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let va = $set1(av);
                        let bj = bp.add(kk * c + j);
                        s0 = $add(s0, $mul(va, $loadu(bj)));
                        s1 = $add(s1, $mul(va, $loadu(bj.add(L))));
                        s2 = $add(s2, $mul(va, $loadu(bj.add(2 * L))));
                    }
                    $storeu(o_row.add(j), s0);
                    $storeu(o_row.add(j + L), s1);
                    $storeu(o_row.add(j + 2 * L), s2);
                    j += 3 * L;
                }
                if j + 2 * L <= c {
                    let mut s0: $vec = $setzero();
                    let mut s1: $vec = $setzero();
                    for (kk, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let va = $set1(av);
                        let bj = bp.add(kk * c + j);
                        s0 = $add(s0, $mul(va, $loadu(bj)));
                        s1 = $add(s1, $mul(va, $loadu(bj.add(L))));
                    }
                    $storeu(o_row.add(j), s0);
                    $storeu(o_row.add(j + L), s1);
                    j += 2 * L;
                }
                if j + L <= c {
                    let mut s0: $vec = $setzero();
                    for (kk, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        s0 = $add(s0, $mul($set1(av), $loadu(bp.add(kk * c + j))));
                    }
                    $storeu(o_row.add(j), s0);
                    j += L;
                }
                if j < c {
                    $tail(a_row, bp, o_row, j, c);
                }
            }
        }
    };
}

/// AVX-512 sub-vector tail: one masked accumulator chain.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn tail_avx512(a_row: &[f32], bp: *const f32, o_row: *mut f32, j: usize, c: usize) {
    use std::arch::x86_64::*;
    let mask: u16 = (1u16 << (c - j)) - 1;
    let mut s = _mm512_setzero_ps();
    for (kk, &av) in a_row.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let vb = _mm512_maskz_loadu_ps(mask, bp.add(kk * c + j));
        s = _mm512_add_ps(s, _mm512_mul_ps(_mm512_set1_ps(av), vb));
    }
    _mm512_mask_storeu_ps(o_row.add(j), mask, s);
}

/// AVX2 sub-vector tail: scalar accumulation per remaining column.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tail_avx2(a_row: &[f32], bp: *const f32, o_row: *mut f32, j: usize, c: usize) {
    for jj in j..c {
        let mut s = 0.0f32;
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            s += av * *bp.add(kk * c + jj);
        }
        *o_row.add(jj) = s;
    }
}

/// AVX-512 kernel for narrow outputs (`c <= 16`): the whole output row
/// fits one masked vector, so instead of column tiles it processes four
/// `a` rows at a time — four independent accumulator chains hide the
/// add latency that a single chain (the masked tail) would serialize,
/// and each `b` row load is shared across the four rows. Every output
/// element still accumulates in ascending-`k` order from `0.0` with the
/// same `a == 0.0` skip, so results stay `==`-equal to the scalar kernel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn matmul_narrow_avx512(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    use std::arch::x86_64::*;
    let (r, k, c) = (a.rows, a.cols, b.cols);
    let mask: u16 = if c == 16 { !0 } else { (1u16 << c) - 1 };
    let bp = b.data.as_ptr();
    let ap = a.data.as_ptr();
    let op = out.data.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= r {
        let mut s0 = _mm512_setzero_ps();
        let mut s1 = _mm512_setzero_ps();
        let mut s2 = _mm512_setzero_ps();
        let mut s3 = _mm512_setzero_ps();
        for kk in 0..k {
            let vb = _mm512_maskz_loadu_ps(mask, bp.add(kk * c));
            let a0 = *ap.add(i * k + kk);
            if a0 != 0.0 {
                s0 = _mm512_add_ps(s0, _mm512_mul_ps(_mm512_set1_ps(a0), vb));
            }
            let a1 = *ap.add((i + 1) * k + kk);
            if a1 != 0.0 {
                s1 = _mm512_add_ps(s1, _mm512_mul_ps(_mm512_set1_ps(a1), vb));
            }
            let a2 = *ap.add((i + 2) * k + kk);
            if a2 != 0.0 {
                s2 = _mm512_add_ps(s2, _mm512_mul_ps(_mm512_set1_ps(a2), vb));
            }
            let a3 = *ap.add((i + 3) * k + kk);
            if a3 != 0.0 {
                s3 = _mm512_add_ps(s3, _mm512_mul_ps(_mm512_set1_ps(a3), vb));
            }
        }
        _mm512_mask_storeu_ps(op.add(i * c), mask, s0);
        _mm512_mask_storeu_ps(op.add((i + 1) * c), mask, s1);
        _mm512_mask_storeu_ps(op.add((i + 2) * c), mask, s2);
        _mm512_mask_storeu_ps(op.add((i + 3) * c), mask, s3);
        i += 4;
    }
    while i < r {
        let mut s = _mm512_setzero_ps();
        for kk in 0..k {
            let av = *ap.add(i * k + kk);
            if av != 0.0 {
                let vb = _mm512_maskz_loadu_ps(mask, bp.add(kk * c));
                s = _mm512_add_ps(s, _mm512_mul_ps(_mm512_set1_ps(av), vb));
            }
        }
        _mm512_mask_storeu_ps(op.add(i * c), mask, s);
        i += 1;
    }
}

/// AVX-512 kernel for `16 < c <= 32`: each output row is two masked
/// vectors, so it processes two `a` rows at a time — four independent
/// accumulator chains against single-chain-per-vector column tiles —
/// sharing each `b` row load between the rows. Same accumulation order
/// and zero-skip as the scalar kernel, so results stay `==`-equal.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn matmul_narrow2_avx512(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    use std::arch::x86_64::*;
    let (r, k, c) = (a.rows, a.cols, b.cols);
    let m1: u16 = if c == 32 { !0 } else { (1u16 << (c - 16)) - 1 };
    let bp = b.data.as_ptr();
    let ap = a.data.as_ptr();
    let op = out.data.as_mut_ptr();
    let mut i = 0;
    while i + 2 <= r {
        let mut s00 = _mm512_setzero_ps();
        let mut s01 = _mm512_setzero_ps();
        let mut s10 = _mm512_setzero_ps();
        let mut s11 = _mm512_setzero_ps();
        for kk in 0..k {
            let vb0 = _mm512_loadu_ps(bp.add(kk * c));
            let vb1 = _mm512_maskz_loadu_ps(m1, bp.add(kk * c + 16));
            let a0 = *ap.add(i * k + kk);
            if a0 != 0.0 {
                let va = _mm512_set1_ps(a0);
                s00 = _mm512_add_ps(s00, _mm512_mul_ps(va, vb0));
                s01 = _mm512_add_ps(s01, _mm512_mul_ps(va, vb1));
            }
            let a1 = *ap.add((i + 1) * k + kk);
            if a1 != 0.0 {
                let va = _mm512_set1_ps(a1);
                s10 = _mm512_add_ps(s10, _mm512_mul_ps(va, vb0));
                s11 = _mm512_add_ps(s11, _mm512_mul_ps(va, vb1));
            }
        }
        _mm512_storeu_ps(op.add(i * c), s00);
        _mm512_mask_storeu_ps(op.add(i * c + 16), m1, s01);
        _mm512_storeu_ps(op.add((i + 1) * c), s10);
        _mm512_mask_storeu_ps(op.add((i + 1) * c + 16), m1, s11);
        i += 2;
    }
    if i < r {
        let mut s0 = _mm512_setzero_ps();
        let mut s1 = _mm512_setzero_ps();
        for kk in 0..k {
            let av = *ap.add(i * k + kk);
            if av != 0.0 {
                let va = _mm512_set1_ps(av);
                s0 = _mm512_add_ps(s0, _mm512_mul_ps(va, _mm512_loadu_ps(bp.add(kk * c))));
                s1 = _mm512_add_ps(
                    s1,
                    _mm512_mul_ps(va, _mm512_maskz_loadu_ps(m1, bp.add(kk * c + 16))),
                );
            }
        }
        _mm512_storeu_ps(op.add(i * c), s0);
        _mm512_mask_storeu_ps(op.add(i * c + 16), m1, s1);
    }
}

simd_matmul!(
    matmul_avx512,
    "avx512f",
    16,
    __m512,
    _mm512_setzero_ps,
    _mm512_set1_ps,
    _mm512_loadu_ps,
    _mm512_storeu_ps,
    _mm512_add_ps,
    _mm512_mul_ps,
    tail_avx512
);

simd_matmul!(
    matmul_avx2,
    "avx2",
    8,
    __m256,
    _mm256_setzero_ps,
    _mm256_set1_ps,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_add_ps,
    _mm256_mul_ps,
    tail_avx2
);

// ---------------------------------------------------------------------------
// Shared activation math.
//
// The polynomial coefficients are the widely used single-precision
// minimax fits (Eigen's rational tanh, Cephes' expf). What matters here
// is not the particular fit but that the evaluation order below is
// *pinned*: the vector kernels replay the identical multiply/add/divide
// sequence lane-wise, so scalar and vector results agree bit-for-bit.
// The literals are kept digit-for-digit as published (clippy allows:
// they are coefficients, not approximations of std constants).
// ---------------------------------------------------------------------------

/// `tanh` saturates to ±1 in f32 beyond this magnitude.
const TANH_CLAMP: f32 = 7.905_311;
const TANH_A1: f32 = 4.893_524_6e-3;
const TANH_A3: f32 = 6.372_619_3e-4;
const TANH_A5: f32 = 1.485_722_4e-5;
const TANH_A7: f32 = 5.122_297_1e-8;
#[allow(clippy::excessive_precision)]
const TANH_A9: f32 = -8.604_671_5e-11;
#[allow(clippy::excessive_precision)]
const TANH_A11: f32 = 2.000_187_9e-13;
const TANH_A13: f32 = -2.760_768_5e-16;
#[allow(clippy::excessive_precision)]
const TANH_B0: f32 = 4.893_525_2e-3;
const TANH_B2: f32 = 2.268_434_6e-3;
const TANH_B4: f32 = 1.185_347_1e-4;
const TANH_B6: f32 = 1.198_258_4e-6;

/// Fast `tanh`: a degree-13/6 rational minimax approximation on the
/// saturation range, accurate to ~1e-6 absolute against libm. Evaluation
/// order is pinned so the vector form is bit-identical. NaN stays NaN.
pub fn fast_tanh(x: f32) -> f32 {
    let x = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let x2 = x * x;
    let mut p = TANH_A13;
    p = TANH_A11 + x2 * p;
    p = TANH_A9 + x2 * p;
    p = TANH_A7 + x2 * p;
    p = TANH_A5 + x2 * p;
    p = TANH_A3 + x2 * p;
    p = TANH_A1 + x2 * p;
    let num = x * p;
    let mut q = TANH_B6;
    q = TANH_B4 + x2 * q;
    q = TANH_B2 + x2 * q;
    q = TANH_B0 + x2 * q;
    num / q
}

const EXP_HI: f32 = 88.0;
#[allow(clippy::excessive_precision)]
const EXP_LO: f32 = -87.336_544;
#[allow(clippy::approx_constant)]
const EXP_LOG2E: f32 = 1.442_695;
const EXP_C1: f32 = 0.693_359_4;
const EXP_C2: f32 = -2.121_944_4e-4;
const EXP_P0: f32 = 1.987_569_1e-4;
const EXP_P1: f32 = 1.398_199_9e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_5e-1;
const EXP_P5: f32 = 5.000_000_3e-1;

/// Fast `exp`: Cephes-style range reduction (`x = n·ln2 + r`) plus a
/// degree-5 polynomial, accurate to a few ulps against libm. Saturates at
/// ~1.2e-38 below -87.3 and at ~1.7e38 above 88. Evaluation order is
/// pinned so the vector form is bit-identical. NaN stays NaN.
pub fn fast_exp(x: f32) -> f32 {
    let x = x.clamp(EXP_LO, EXP_HI);
    let n = (x * EXP_LOG2E + 0.5).floor();
    let x = x - n * EXP_C1;
    let x = x - n * EXP_C2;
    let x2 = x * x;
    let mut p = EXP_P0;
    p = EXP_P1 + x * p;
    p = EXP_P2 + x * p;
    p = EXP_P3 + x * p;
    p = EXP_P4 + x * p;
    p = EXP_P5 + x * p;
    let mut y = p * x2;
    y += x;
    y += 1.0;
    let bits = (((n as i32) + 127) << 23) as u32;
    y * f32::from_bits(bits)
}

pub(crate) const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
pub(crate) const GELU_A: f32 = 0.044_715;

/// GELU (tanh approximation) on one value; the scalar reference for
/// [`gelu_inplace`] and the forward used by the tape's GELU op.
pub fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + fast_tanh(GELU_C * (x + GELU_A * x * x * x)))
}

/// Number of interleaved partial sums used by every row reduction.
pub const SUM_LANES: usize = 16;

/// Combines the 16 strided buckets by a fixed halving tree:
/// `acc[i] += acc[i+8]`, then `+4`, `+2`, `+1`. The tree (rather than a
/// left-to-right fold) is part of the pinned semantics because the
/// AVX-512 forms evaluate it with three in-register shuffles instead of
/// fifteen serially dependent scalar adds.
fn tree_combine(mut acc: [f32; SUM_LANES]) -> f32 {
    let mut step = SUM_LANES / 2;
    while step > 0 {
        for i in 0..step {
            acc[i] += acc[i + step];
        }
        step /= 2;
    }
    acc[0]
}

/// Strided 16-bucket sum: bucket `l` accumulates elements `l`, `l+16`, …
/// (a partial trailing chunk contributes `+0.0` to the other buckets),
/// then buckets combine by the [`tree_combine`] halving tree. This fixed
/// order is the crate's summation semantics for layer-norm and softmax
/// rows; the AVX-512 form reproduces it exactly.
pub fn strided_sum(v: &[f32]) -> f32 {
    let mut acc = [0.0f32; SUM_LANES];
    let mut chunks = v.chunks_exact(SUM_LANES);
    for ch in &mut chunks {
        for (a, &x) in acc.iter_mut().zip(ch) {
            *a += x;
        }
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        for (l, a) in acc.iter_mut().enumerate() {
            *a += rem.get(l).copied().unwrap_or(0.0);
        }
    }
    tree_combine(acc)
}

/// Strided 16-bucket max with `max(a, b) = if a > b { a } else { b }` —
/// the exact semantics of the x86 `maxps` instruction (returns the second
/// operand on ties, signed zeros, and NaN), so the vector form can use it
/// directly. Buckets start at `-inf`, a partial trailing chunk only
/// touches its own lanes, and buckets combine by the same halving tree as
/// [`strided_sum`].
pub fn strided_max(v: &[f32]) -> f32 {
    #[inline]
    fn maxps(a: f32, b: f32) -> f32 {
        if a > b {
            a
        } else {
            b
        }
    }
    let mut acc = [f32::NEG_INFINITY; SUM_LANES];
    let mut chunks = v.chunks_exact(SUM_LANES);
    for ch in &mut chunks {
        for (a, &x) in acc.iter_mut().zip(ch) {
            *a = maxps(*a, x);
        }
    }
    for (a, &x) in acc.iter_mut().zip(chunks.remainder()) {
        *a = maxps(*a, x);
    }
    let mut step = SUM_LANES / 2;
    while step > 0 {
        for i in 0..step {
            acc[i] = maxps(acc[i], acc[i + step]);
        }
        step /= 2;
    }
    acc[0]
}

/// [`strided_sum`] of squared deviations from `mean` (the layer-norm
/// variance numerator), with the same bucket semantics.
pub fn strided_sum_sq_dev(v: &[f32], mean: f32) -> f32 {
    let mut acc = [0.0f32; SUM_LANES];
    let mut chunks = v.chunks_exact(SUM_LANES);
    for ch in &mut chunks {
        for (a, &x) in acc.iter_mut().zip(ch) {
            let d = x - mean;
            *a += d * d;
        }
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        for (l, a) in acc.iter_mut().enumerate() {
            *a += match rem.get(l) {
                Some(&x) => {
                    let d = x - mean;
                    d * d
                }
                None => 0.0,
            };
        }
    }
    tree_combine(acc)
}

/// In-place GELU over a slice: vectorized when the CPU has AVX-512,
/// bit-identical to mapping [`gelu_scalar`] either way.
pub fn gelu_inplace(v: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: feature presence checked at runtime.
        unsafe { avx512::gelu_slice(v) };
        return;
    }
    for x in v.iter_mut() {
        *x = gelu_scalar(*x);
    }
}

/// In-place numerically stabilized softmax over one row: subtract the
/// [`strided_max`], [`fast_exp`], [`strided_sum`], divide. Scalar reference for
/// [`softmax_row`], and the forward used by the tape's softmax op.
pub fn softmax_row_scalar(row: &mut [f32]) {
    let max = strided_max(row);
    for x in row.iter_mut() {
        *x = fast_exp(*x - max);
    }
    // One divide, then a multiply per element (not a divide per element):
    // the reciprocal is part of the pinned semantics shared with the
    // vector form.
    let inv = 1.0 / strided_sum(row);
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// Vectorized [`softmax_row_scalar`] (bit-identical; AVX-512 or scalar).
pub fn softmax_row(row: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: feature presence checked at runtime.
        unsafe { avx512::softmax_row(row) };
        return;
    }
    softmax_row_scalar(row);
}

/// In-place layer norm over one row with gain `gamma` and bias `beta`:
/// mean and variance via the strided sums, then
/// `(x - mean) * inv_std * gamma + beta` per element. Scalar reference
/// for [`layer_norm_row`], and the forward used by the tape's op.
pub fn layer_norm_row_scalar(row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
    let n = row.len() as f32;
    let mean = strided_sum(row) / n;
    let var = strided_sum_sq_dev(row, mean) / n;
    let inv_std = 1.0 / (var + eps).sqrt();
    for (x, (&g, &b)) in row.iter_mut().zip(gamma.iter().zip(beta)) {
        *x = (*x - mean) * inv_std * g + b;
    }
}

/// Vectorized [`layer_norm_row_scalar`] (bit-identical; AVX-512 or scalar).
pub fn layer_norm_row(row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: feature presence checked at runtime.
        unsafe { avx512::layer_norm_row(row, gamma, beta, eps) };
        return;
    }
    layer_norm_row_scalar(row, gamma, beta, eps);
}

/// AVX-512 forms of the activation/reduction kernels. Each replays the
/// scalar evaluation order lane-wise (separate multiply and add, min/max
/// with `x` in the NaN-propagating operand position, masked loads
/// contributing `+0.0` like the scalar remainder handling), so outputs
/// are bit-identical to the scalar forms. AVX2-only CPUs take the scalar
/// path — same values, just slower.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::*;
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx512f")]
    unsafe fn tanh_v(x: __m512) -> __m512 {
        let x = _mm512_max_ps(_mm512_set1_ps(-TANH_CLAMP), x);
        let x = _mm512_min_ps(_mm512_set1_ps(TANH_CLAMP), x);
        let x2 = _mm512_mul_ps(x, x);
        let mut p = _mm512_set1_ps(TANH_A13);
        p = _mm512_add_ps(_mm512_set1_ps(TANH_A11), _mm512_mul_ps(x2, p));
        p = _mm512_add_ps(_mm512_set1_ps(TANH_A9), _mm512_mul_ps(x2, p));
        p = _mm512_add_ps(_mm512_set1_ps(TANH_A7), _mm512_mul_ps(x2, p));
        p = _mm512_add_ps(_mm512_set1_ps(TANH_A5), _mm512_mul_ps(x2, p));
        p = _mm512_add_ps(_mm512_set1_ps(TANH_A3), _mm512_mul_ps(x2, p));
        p = _mm512_add_ps(_mm512_set1_ps(TANH_A1), _mm512_mul_ps(x2, p));
        let num = _mm512_mul_ps(x, p);
        let mut q = _mm512_set1_ps(TANH_B6);
        q = _mm512_add_ps(_mm512_set1_ps(TANH_B4), _mm512_mul_ps(x2, q));
        q = _mm512_add_ps(_mm512_set1_ps(TANH_B2), _mm512_mul_ps(x2, q));
        q = _mm512_add_ps(_mm512_set1_ps(TANH_B0), _mm512_mul_ps(x2, q));
        _mm512_div_ps(num, q)
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn exp_v(x: __m512) -> __m512 {
        let x = _mm512_max_ps(_mm512_set1_ps(EXP_LO), x);
        let x = _mm512_min_ps(_mm512_set1_ps(EXP_HI), x);
        let z = _mm512_add_ps(
            _mm512_mul_ps(x, _mm512_set1_ps(EXP_LOG2E)),
            _mm512_set1_ps(0.5),
        );
        // 0x09 = round toward -inf (floor), suppressing exceptions.
        let n = _mm512_roundscale_ps::<0x09>(z);
        let x = _mm512_sub_ps(x, _mm512_mul_ps(n, _mm512_set1_ps(EXP_C1)));
        let x = _mm512_sub_ps(x, _mm512_mul_ps(n, _mm512_set1_ps(EXP_C2)));
        let x2 = _mm512_mul_ps(x, x);
        let mut p = _mm512_set1_ps(EXP_P0);
        p = _mm512_add_ps(_mm512_set1_ps(EXP_P1), _mm512_mul_ps(x, p));
        p = _mm512_add_ps(_mm512_set1_ps(EXP_P2), _mm512_mul_ps(x, p));
        p = _mm512_add_ps(_mm512_set1_ps(EXP_P3), _mm512_mul_ps(x, p));
        p = _mm512_add_ps(_mm512_set1_ps(EXP_P4), _mm512_mul_ps(x, p));
        p = _mm512_add_ps(_mm512_set1_ps(EXP_P5), _mm512_mul_ps(x, p));
        let mut y = _mm512_mul_ps(p, x2);
        y = _mm512_add_ps(y, x);
        y = _mm512_add_ps(y, _mm512_set1_ps(1.0));
        let ni = _mm512_cvtps_epi32(n);
        let bits = _mm512_slli_epi32::<23>(_mm512_add_epi32(ni, _mm512_set1_epi32(127)));
        _mm512_mul_ps(y, _mm512_castsi512_ps(bits))
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn gelu_slice(v: &mut [f32]) {
        let n = v.len();
        let p = v.as_mut_ptr();
        let mut i = 0;
        while i + 16 <= n {
            let x = _mm512_loadu_ps(p.add(i));
            let x3 = _mm512_mul_ps(
                _mm512_mul_ps(_mm512_mul_ps(_mm512_set1_ps(GELU_A), x), x),
                x,
            );
            let inner = _mm512_mul_ps(_mm512_set1_ps(GELU_C), _mm512_add_ps(x, x3));
            let t = tanh_v(inner);
            let y = _mm512_mul_ps(
                _mm512_mul_ps(_mm512_set1_ps(0.5), x),
                _mm512_add_ps(_mm512_set1_ps(1.0), t),
            );
            _mm512_storeu_ps(p.add(i), y);
            i += 16;
        }
        for x in &mut v[i..] {
            *x = gelu_scalar(*x);
        }
    }

    /// In-register halving tree, lane-for-lane the same adds as the
    /// scalar [`tree_combine`]: lanes `i` and `i+8` (then `+4`, `+2`,
    /// `+1`) combine pairwise; only lane 0 of each intermediate is
    /// ultimately read, and its dependency chain is exactly the scalar
    /// tree's.
    #[target_feature(enable = "avx512f")]
    unsafe fn tree_combine_v(acc: __m512) -> f32 {
        // 0xEE selects 128-bit chunks [2,3,2,3]: lane i gets lane i+8.
        let acc = _mm512_add_ps(acc, _mm512_shuffle_f32x4::<0xEE>(acc, acc));
        // 0x55 selects chunks [1,1,1,1]: lane i gets lane i+4.
        let acc = _mm512_add_ps(acc, _mm512_shuffle_f32x4::<0x55>(acc, acc));
        // Within each 128-bit chunk: lane i gets lane i+2, then lane 1.
        let acc = _mm512_add_ps(acc, _mm512_shuffle_ps::<0x0E>(acc, acc));
        let acc = _mm512_add_ps(acc, _mm512_shuffle_ps::<0x01>(acc, acc));
        _mm512_cvtss_f32(acc)
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn strided_sum_v(v: &[f32]) -> f32 {
        let mut acc = _mm512_setzero_ps();
        let mut chunks = v.chunks_exact(16);
        for ch in &mut chunks {
            acc = _mm512_add_ps(acc, _mm512_loadu_ps(ch.as_ptr()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mask: u16 = (1u16 << rem.len()) - 1;
            acc = _mm512_add_ps(acc, _mm512_maskz_loadu_ps(mask, rem.as_ptr()));
        }
        tree_combine_v(acc)
    }

    /// Vector [`strided_max`]: `_mm512_max_ps` is the instruction whose
    /// tie/NaN behaviour the scalar form replicates, so bucket updates
    /// and the halving tree map to it directly. The partial trailing
    /// chunk uses a masked max so untouched lanes keep their bucket.
    #[target_feature(enable = "avx512f")]
    unsafe fn strided_max_v(v: &[f32]) -> f32 {
        let mut acc = _mm512_set1_ps(f32::NEG_INFINITY);
        let mut chunks = v.chunks_exact(16);
        for ch in &mut chunks {
            acc = _mm512_max_ps(acc, _mm512_loadu_ps(ch.as_ptr()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mask: u16 = (1u16 << rem.len()) - 1;
            let x = _mm512_maskz_loadu_ps(mask, rem.as_ptr());
            acc = _mm512_mask_max_ps(acc, mask, acc, x);
        }
        let acc = _mm512_max_ps(acc, _mm512_shuffle_f32x4::<0xEE>(acc, acc));
        let acc = _mm512_max_ps(acc, _mm512_shuffle_f32x4::<0x55>(acc, acc));
        let acc = _mm512_max_ps(acc, _mm512_shuffle_ps::<0x0E>(acc, acc));
        let acc = _mm512_max_ps(acc, _mm512_shuffle_ps::<0x01>(acc, acc));
        _mm512_cvtss_f32(acc)
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn strided_sum_sq_dev_v(v: &[f32], mean: f32) -> f32 {
        let vm = _mm512_set1_ps(mean);
        let mut acc = _mm512_setzero_ps();
        let mut chunks = v.chunks_exact(16);
        for ch in &mut chunks {
            let d = _mm512_sub_ps(_mm512_loadu_ps(ch.as_ptr()), vm);
            acc = _mm512_add_ps(acc, _mm512_mul_ps(d, d));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mask: u16 = (1u16 << rem.len()) - 1;
            let d = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, rem.as_ptr()), vm);
            let sq = _mm512_maskz_mov_ps(mask, _mm512_mul_ps(d, d));
            acc = _mm512_add_ps(acc, sq);
        }
        tree_combine_v(acc)
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn softmax_row(row: &mut [f32]) {
        let max = strided_max_v(row);
        let n = row.len();
        let p = row.as_mut_ptr();
        let vmax = _mm512_set1_ps(max);
        let mut i = 0;
        while i + 16 <= n {
            let x = _mm512_sub_ps(_mm512_loadu_ps(p.add(i)), vmax);
            _mm512_storeu_ps(p.add(i), exp_v(x));
            i += 16;
        }
        for x in &mut row[i..] {
            *x = fast_exp(*x - max);
        }
        let inv = 1.0 / strided_sum_v(row);
        let p = row.as_mut_ptr();
        let vs = _mm512_set1_ps(inv);
        let mut i = 0;
        while i + 16 <= n {
            _mm512_storeu_ps(p.add(i), _mm512_mul_ps(_mm512_loadu_ps(p.add(i)), vs));
            i += 16;
        }
        for x in &mut row[i..] {
            *x *= inv;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn layer_norm_row(row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
        let n = row.len() as f32;
        let mean = strided_sum_v(row) / n;
        let var = strided_sum_sq_dev_v(row, mean) / n;
        let inv_std = 1.0 / (var + eps).sqrt();
        let len = row.len();
        let p = row.as_mut_ptr();
        let gp = gamma.as_ptr();
        let bp = beta.as_ptr();
        let vmean = _mm512_set1_ps(mean);
        let vinv = _mm512_set1_ps(inv_std);
        let mut i = 0;
        while i + 16 <= len {
            let x = _mm512_sub_ps(_mm512_loadu_ps(p.add(i)), vmean);
            let y = _mm512_add_ps(
                _mm512_mul_ps(_mm512_mul_ps(x, vinv), _mm512_loadu_ps(gp.add(i))),
                _mm512_loadu_ps(bp.add(i)),
            );
            _mm512_storeu_ps(p.add(i), y);
            i += 16;
        }
        for (c, x) in row.iter_mut().enumerate().skip(i) {
            *x = (*x - mean) * inv_std * gamma[c] + beta[c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Every dispatch target must be `==`-equal to the scalar reference,
    /// including ragged shapes that exercise every tile width and the
    /// sub-vector tails.
    #[test]
    fn kernel_matches_reference_matmul_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(r, k, c) in &[
            (1, 1, 1),
            (2, 3, 2),
            (32, 12, 32), // attention scores shape (two-chunk narrow kernel)
            (32, 32, 12), // attention output shape (narrow kernel)
            (6, 9, 12),   // narrow kernel row remainder
            (5, 7, 16),   // narrow kernel at the full-mask boundary
            (3, 4, 5),    // narrow kernel, fewer rows than one quad
            (7, 6, 20),   // two-chunk narrow kernel, masked second chunk
            (5, 8, 31),   // two-chunk narrow kernel, row remainder
            (7, 5, 17),
            (64, 48, 96),
            (5, 9, 64),
            (33, 31, 29),
            (3, 8, 127), // 64 + 32 + 16 + 8 + tail
        ] {
            let mut a = Tensor::xavier(r, k, &mut rng);
            let b = Tensor::xavier(k, c, &mut rng);
            // Exercise the zero-skip path too.
            for v in a.data.iter_mut() {
                if rng.gen_range(0.0..1.0f32) < 0.1 {
                    *v = 0.0;
                }
            }
            let reference = a.matmul(&b);
            assert_eq!(matmul(&a, &b), reference, "{r}x{k}x{c}");
            let mut out = Tensor::ones(r, c); // stale contents must be overwritten
            matmul_into(&a, &b, &mut out);
            assert_eq!(out, reference, "{r}x{k}x{c} (into)");
        }
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn matmul_into_checks_output_shape() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(3, 4);
        let mut out = Tensor::zeros(2, 3);
        matmul_into(&a, &b, &mut out);
    }

    #[test]
    fn fast_tanh_tracks_libm() {
        let mut x = -12.0f32;
        while x <= 12.0 {
            let got = fast_tanh(x);
            assert!(
                (got - x.tanh()).abs() <= 1e-6,
                "tanh({x}) = {got} vs {}",
                x.tanh()
            );
            assert!(got.abs() <= 1.0, "tanh({x}) = {got} out of range");
            x += 1e-3;
        }
        assert_eq!(fast_tanh(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(fast_tanh(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(fast_tanh(f32::INFINITY), fast_tanh(TANH_CLAMP));
        assert!(fast_tanh(f32::NAN).is_nan());
    }

    #[test]
    fn fast_exp_tracks_libm() {
        let mut x = -87.0f32;
        while x <= 20.0 {
            let got = fast_exp(x);
            let want = x.exp();
            assert!(
                (got - want).abs() <= 5e-7 * want,
                "exp({x}) = {got} vs {want}"
            );
            x += 1e-3;
        }
        assert_eq!(fast_exp(0.0), 1.0);
        // Saturation, not flush-to-zero, below the clamp point.
        assert!(fast_exp(-1000.0) > 0.0);
        assert_eq!(fast_exp(-1000.0), fast_exp(EXP_LO));
        assert!(fast_exp(f32::NAN).is_nan());
    }

    /// Values that exercise clamp edges, saturation, signed zero, and
    /// subnormal-adjacent magnitudes in the vector/scalar comparisons.
    fn awkward_values() -> Vec<f32> {
        vec![
            0.0, -0.0, 1e-30, -1e-30, 0.5, -0.5, 3.0, -3.0, 9.0, -9.0, 40.0, -40.0, 90.0, -90.0,
        ]
    }

    fn random_slice(rng: &mut StdRng, len: usize) -> Vec<f32> {
        let specials = awkward_values();
        (0..len)
            .map(|_| {
                if rng.gen_range(0.0..1.0f32) < 0.1 {
                    specials[rng.gen_range(0..specials.len())]
                } else {
                    rng.gen_range(-4.0..4.0f32)
                }
            })
            .collect()
    }

    /// The dispatching slice kernels must be bit-identical to the scalar
    /// reference forms on every length (full vectors, tails, empty).
    #[test]
    fn vector_kernels_match_scalar_forms_exactly() {
        let mut rng = StdRng::seed_from_u64(23);
        for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 48, 96, 127, 1000] {
            let base = random_slice(&mut rng, len);

            let mut vectored = base.clone();
            gelu_inplace(&mut vectored);
            let scalar: Vec<f32> = base.iter().map(|&x| gelu_scalar(x)).collect();
            for (c, (&g, &w)) in vectored.iter().zip(&scalar).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "gelu len={len} idx={c}");
            }

            if len > 0 {
                let mut vectored = base.clone();
                softmax_row(&mut vectored);
                let mut scalar = base.clone();
                softmax_row_scalar(&mut scalar);
                for (c, (&g, &w)) in vectored.iter().zip(&scalar).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "softmax len={len} idx={c}");
                }

                let gamma: Vec<f32> = (0..len).map(|_| rng.gen_range(0.5..1.5f32)).collect();
                let beta: Vec<f32> = (0..len).map(|_| rng.gen_range(-0.5..0.5f32)).collect();
                let mut vectored = base.clone();
                layer_norm_row(&mut vectored, &gamma, &beta, crate::tape::LN_EPS);
                let mut scalar = base.clone();
                layer_norm_row_scalar(&mut scalar, &gamma, &beta, crate::tape::LN_EPS);
                for (c, (&g, &w)) in vectored.iter().zip(&scalar).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "layer_norm len={len} idx={c}");
                }
            }
        }
    }

    #[test]
    fn strided_sum_basics() {
        for len in [0usize, 1, 15, 16, 17, 100] {
            let ones = vec![1.0f32; len];
            assert_eq!(strided_sum(&ones), len as f32);
            assert_eq!(strided_sum_sq_dev(&ones, 1.0), 0.0);
        }
        assert_eq!(strided_sum(&[]), 0.0);
    }

    #[test]
    fn strided_max_matches_iterator_max() {
        let mut rng = StdRng::seed_from_u64(31);
        assert_eq!(strided_max(&[]), f32::NEG_INFINITY);
        for len in [1usize, 7, 15, 16, 17, 32, 100] {
            let v = random_slice(&mut rng, len);
            let want = v.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            assert_eq!(strided_max(&v), want, "len={len}");
        }
    }
}
