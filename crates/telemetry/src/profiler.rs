//! A cooperative sampling profiler built on the span stacks the
//! telemetry layer already maintains.
//!
//! Every thread that opens a [`span`](crate::span) (or enters a
//! [`TraceContext`](crate::TraceContext)) registers a shared
//! [`StackSlot`] holding its live span-name stack. A sampler — either
//! the blocking [`collect_profile`] or the background thread started by
//! [`start_continuous_profiler`] — periodically snapshots each slot and
//! folds the stacks into flamegraph-compatible
//! `thread;span;span count` lines ([`ProfileReport::folded`]).
//! Per-thread CPU deltas (from [`crate::cpu`]) ride along so hot stacks
//! can be ranked by CPU burned, not just samples observed.
//!
//! "Cooperative" because nothing is interrupted: the sampler reads what
//! instrumented code already publishes. Uninstrumented stretches show
//! up under the innermost enclosing span (or as `(idle)` when the
//! thread has no span open), which is exactly the resolution the
//! dotted-stage instrumentation provides — and it works on any
//! platform, in release builds, with no signal handlers or unwinding.

use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Duration;
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Aggregated samples for one folded stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Times the stack was observed.
    pub samples: u64,
    /// CPU nanoseconds the owning thread burned across those samples
    /// (tick-granular; 0 where per-tid CPU is unavailable).
    pub cpu_nanos: u64,
}

/// An aggregated profile: folded stack keys (`thread;span;...;span`,
/// innermost span last, `thread;(idle)` for threads with no open span)
/// mapped to sample counts and CPU time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Folded stack key → aggregated samples.
    pub entries: BTreeMap<String, ProfileEntry>,
    /// Total per-thread samples taken (one per registered thread per
    /// sampling tick).
    pub samples: u64,
    /// Wall time the profile covers, nanoseconds.
    pub duration_nanos: u64,
}

impl ProfileReport {
    /// Renders the profile in folded-stack format, one
    /// `stack<space>samples` line per entry, busiest stacks first —
    /// feed directly to `flamegraph.pl` / `inferno-flamegraph`.
    pub fn folded(&self) -> String {
        let mut rows: Vec<(&String, &ProfileEntry)> = self.entries.iter().collect();
        rows.sort_by(|a, b| b.1.samples.cmp(&a.1.samples).then_with(|| a.0.cmp(b.0)));
        let mut out = String::new();
        for (key, entry) in rows {
            out.push_str(key);
            out.push(' ');
            out.push_str(&entry.samples.to_string());
            out.push('\n');
        }
        out
    }

    /// Merges `other` into `self` (summing samples, CPU, and duration).
    pub fn merge(&mut self, other: &ProfileReport) {
        for (key, entry) in &other.entries {
            let slot = self.entries.entry(key.clone()).or_default();
            slot.samples += entry.samples;
            slot.cpu_nanos += entry.cpu_nanos;
        }
        self.samples += other.samples;
        self.duration_nanos += other.duration_nanos;
    }
}

/// One thread's shared profiling state: its name, kernel tid, and live
/// span-name stack. Registered on the thread's first span (or trace
/// entry) and unregistered implicitly when the thread exits (the
/// registry holds `Weak`s; the thread-local owns the only `Arc`).
#[cfg(feature = "enabled")]
pub(crate) struct StackSlot {
    name: String,
    tid: u64,
    stack: Mutex<Vec<&'static str>>,
}

#[cfg(feature = "enabled")]
fn registry() -> &'static Mutex<Vec<Weak<StackSlot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<StackSlot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(feature = "enabled")]
thread_local! {
    static SLOT: std::cell::RefCell<Option<Arc<StackSlot>>> =
        const { std::cell::RefCell::new(None) };
}

/// Returns the calling thread's slot, registering one on first use.
/// `None` during TLS teardown.
#[cfg(feature = "enabled")]
fn with_slot<R>(f: impl FnOnce(&Arc<StackSlot>) -> R) -> Option<R> {
    SLOT.try_with(|cell| {
        let mut cell = cell.borrow_mut();
        let slot = cell.get_or_insert_with(|| {
            let tid = crate::cpu::current_tid();
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| {
                    if tid != 0 {
                        format!("thread-{tid}")
                    } else {
                        "thread".to_string()
                    }
                });
            let slot = Arc::new(StackSlot {
                name,
                tid,
                stack: Mutex::new(Vec::new()),
            });
            registry().lock().unwrap().push(Arc::downgrade(&slot));
            slot
        });
        f(slot)
    })
    .ok()
}

/// Registers the calling thread with the profiler without touching its
/// span stack — pool threads call this (via `TraceContext::enter`) so
/// the sampler sees them even before their first span.
#[cfg(feature = "enabled")]
pub(crate) fn ensure_registered() {
    let _ = with_slot(|_| ());
}

#[cfg(not(feature = "enabled"))]
#[allow(dead_code)]
pub(crate) fn ensure_registered() {}

/// Pushes a span name onto the calling thread's published stack.
/// Called from [`span`](crate::span); must mirror [`pop_span`].
#[cfg(feature = "enabled")]
pub(crate) fn push_span(name: &'static str) {
    let _ = with_slot(|slot| slot.stack.lock().unwrap().push(name));
}

/// Pops the calling thread's published stack (on `SpanGuard` drop).
#[cfg(feature = "enabled")]
pub(crate) fn pop_span() {
    let _ = with_slot(|slot| {
        slot.stack.lock().unwrap().pop();
    });
}

/// One sampling tick: fold every registered thread's current stack into
/// `report`, weighting by the CPU each thread burned since its last
/// observation (tracked in `cpu_last`).
#[cfg(feature = "enabled")]
fn sample_once(cpu_last: &mut BTreeMap<u64, u64>, report: &mut ProfileReport) {
    let slots: Vec<Arc<StackSlot>> = {
        let mut reg = registry().lock().unwrap();
        reg.retain(|w| w.strong_count() > 0);
        reg.iter().filter_map(Weak::upgrade).collect()
    };
    for slot in slots {
        let stack = slot.stack.lock().unwrap().clone();
        let mut key = slot.name.clone();
        if stack.is_empty() {
            key.push_str(";(idle)");
        } else {
            for name in &stack {
                key.push(';');
                key.push_str(name);
            }
        }
        let cpu_delta = match crate::cpu::tid_cpu_nanos(slot.tid) {
            Some(now) => {
                let prev = cpu_last.insert(slot.tid, now);
                prev.map_or(0, |p| now.saturating_sub(p))
            }
            None => 0,
        };
        let entry = report.entries.entry(key).or_default();
        entry.samples += 1;
        entry.cpu_nanos += cpu_delta;
        report.samples += 1;
    }
    crate::metrics::counter(crate::names::RESOURCE_PROFILE_SAMPLES).add(1);
}

/// Primes per-tid CPU baselines so the first counted tick measures a
/// real delta instead of each thread's lifetime CPU.
#[cfg(feature = "enabled")]
fn prime_cpu(cpu_last: &mut BTreeMap<u64, u64>) {
    let slots: Vec<Arc<StackSlot>> = registry()
        .lock()
        .unwrap()
        .iter()
        .filter_map(Weak::upgrade)
        .collect();
    for slot in slots {
        if let Some(now) = crate::cpu::tid_cpu_nanos(slot.tid) {
            cpu_last.insert(slot.tid, now);
        }
    }
}

/// Samples every registered thread at `hz` (clamped to 1..=1000) for
/// `duration`, blocking the calling thread, and returns the aggregate.
/// Empty when telemetry is compiled out.
pub fn collect_profile(duration: Duration, hz: u32) -> ProfileReport {
    #[cfg(feature = "enabled")]
    {
        let hz = hz.clamp(1, 1000);
        let interval = Duration::from_nanos(1_000_000_000 / hz as u64);
        let start = Instant::now();
        let mut cpu_last = BTreeMap::new();
        prime_cpu(&mut cpu_last);
        let mut report = ProfileReport::default();
        while start.elapsed() < duration {
            std::thread::sleep(interval);
            sample_once(&mut cpu_last, &mut report);
        }
        report.duration_nanos = start.elapsed().as_nanos() as u64;
        report
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (duration, hz);
        ProfileReport::default()
    }
}

#[cfg(feature = "enabled")]
fn continuous() -> &'static Mutex<ProfileReport> {
    static CONTINUOUS: OnceLock<Mutex<ProfileReport>> = OnceLock::new();
    CONTINUOUS.get_or_init(|| Mutex::new(ProfileReport::default()))
}

#[cfg(feature = "enabled")]
static CONTINUOUS_RUNNING: AtomicBool = AtomicBool::new(false);

/// Starts the process-lifetime continuous profiler: a background thread
/// sampling at `hz` (clamped to 1..=1000) into a global aggregate that
/// [`continuous_profile_snapshot`] reads. Returns `false` (and does
/// nothing) if it is already running or telemetry is compiled out.
///
/// Off-beat rates (19, 97, …) avoid aliasing with periodic work.
pub fn start_continuous_profiler(hz: u32) -> bool {
    #[cfg(feature = "enabled")]
    {
        if CONTINUOUS_RUNNING.swap(true, Ordering::AcqRel) {
            return false;
        }
        let hz = hz.clamp(1, 1000);
        let interval = Duration::from_nanos(1_000_000_000 / hz as u64);
        std::thread::Builder::new()
            .name("sketchql-profiler".to_string())
            .spawn(move || {
                let mut cpu_last = BTreeMap::new();
                prime_cpu(&mut cpu_last);
                let start = Instant::now();
                let mut last_flush = start;
                loop {
                    std::thread::sleep(interval);
                    let mut tick = ProfileReport::default();
                    sample_once(&mut cpu_last, &mut tick);
                    let now = Instant::now();
                    tick.duration_nanos = now.duration_since(last_flush).as_nanos() as u64;
                    last_flush = now;
                    continuous().lock().unwrap().merge(&tick);
                }
            })
            .expect("spawn profiler thread");
        true
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = hz;
        false
    }
}

/// A snapshot of the continuous profiler's aggregate since it started,
/// or `None` if [`start_continuous_profiler`] was never called (or
/// telemetry is compiled out).
pub fn continuous_profile_snapshot() -> Option<ProfileReport> {
    #[cfg(feature = "enabled")]
    {
        if !CONTINUOUS_RUNNING.load(Ordering::Acquire) {
            return None;
        }
        Some(continuous().lock().unwrap().clone())
    }
    #[cfg(not(feature = "enabled"))]
    {
        None
    }
}
