//! A standalone plaintext metrics scrape listener.
//!
//! Serves the telemetry registry in Prometheus text exposition format
//! over minimal HTTP/1.0, so a scraper (or `curl`) can poll the server
//! without speaking the SketchQL wire protocol. One thread accepts, one
//! short-lived thread per scrape; every request path answers with the
//! full registry snapshot — there is nothing else to route.
//!
//! The listener is independent of [`Server`](crate::Server): it can run
//! next to a wire server, next to a bare [`Engine`](crate::Engine), or
//! alone in a process that only uses the matcher directly.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sketchql_telemetry as telemetry;

/// How long a scrape connection may dribble its request before we give
/// up on it. Scrapers send one short request line; anything slower is
/// not worth a thread.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics scrape endpoint.
///
/// Dropping the handle without calling [`MetricsListener::shutdown`]
/// leaves the accept thread running detached until the process exits;
/// call `shutdown` for a clean join.
pub struct MetricsListener {
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsListener {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts answering scrapes.
    pub fn start(addr: &str) -> std::io::Result<MetricsListener> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let accept_thread = {
            let running = Arc::clone(&running);
            std::thread::Builder::new()
                .name("sketchql-scrape".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if !running.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = std::thread::Builder::new()
                            .name("sketchql-scrape-conn".into())
                            .spawn(move || serve_scrape(stream));
                    }
                })?
        };
        Ok(MetricsListener {
            local_addr,
            running,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting scrapes and joins the accept thread. In-flight
    /// scrape responses finish on their own threads.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the cleared running flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Answers one scrape: read the request line (and discard headers up to
/// the blank line, HTTP/1.0 style), then write the whole registry. Any
/// method or path gets the metrics — a scrape endpoint has one page.
fn serve_scrape(stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(SCRAPE_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SCRAPE_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return;
    }
    // Drain headers so well-behaved HTTP clients see a clean exchange;
    // stop at the blank line or on any read problem.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let body = telemetry::snapshot_prometheus();
    let mut writer = stream;
    let _ = write!(
        writer,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = writer.flush();
}
