//! Retrieval-quality metrics.
//!
//! Scores a ranked list of predicted video moments against the ground-truth
//! annotations of the queried event kind, using temporal-IoU matching with
//! one-to-one assignment (each ground-truth event can satisfy at most one
//! prediction).

use crate::generator::EventAnnotation;
use serde::{Deserialize, Serialize};

/// Minimum temporal IoU for a predicted moment to count as a hit.
pub const TIOU_THRESH: f32 = 0.3;

/// A predicted video moment: frame range plus a similarity score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedMoment {
    /// First frame of the predicted moment.
    pub start: u32,
    /// Last frame (inclusive).
    pub end: u32,
    /// Similarity score (higher = better); the list is ranked by this.
    pub score: f32,
}

/// Retrieval quality summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrievalReport {
    /// Precision within the top-k predictions (k = number of ground-truth
    /// events, i.e. R-precision).
    pub precision_at_k: f32,
    /// Recall over all predictions.
    pub recall: f32,
    /// F1 of precision@k and recall.
    pub f1: f32,
    /// Average precision (area under the ranked precision/recall curve).
    pub average_precision: f32,
    /// Number of ground-truth events.
    pub num_truth: usize,
    /// Number of predictions scored.
    pub num_predictions: usize,
}

/// Scores ranked predictions against ground truth.
///
/// Predictions are processed in descending score order; each prediction
/// greedily claims the unmatched ground-truth event with the highest
/// temporal IoU at or above [`TIOU_THRESH`].
pub fn evaluate_retrieval(
    predictions: &[PredictedMoment],
    truth: &[&EventAnnotation],
) -> RetrievalReport {
    let mut ranked: Vec<PredictedMoment> = predictions.to_vec();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut matched_truth = vec![false; truth.len()];
    // hits[i] = whether ranked prediction i matched a fresh truth event.
    let mut hits = Vec::with_capacity(ranked.len());
    for p in &ranked {
        let mut best: Option<(usize, f32)> = None;
        for (ti, t) in truth.iter().enumerate() {
            if matched_truth[ti] {
                continue;
            }
            let iou = t.temporal_iou(p.start, p.end);
            if iou >= TIOU_THRESH && best.is_none_or(|(_, b)| iou > b) {
                best = Some((ti, iou));
            }
        }
        if let Some((ti, _)) = best {
            matched_truth[ti] = true;
            hits.push(true);
        } else {
            hits.push(false);
        }
    }

    let k = truth.len();
    let hits_at_k = hits.iter().take(k).filter(|&&h| h).count();
    let total_hits = hits.iter().filter(|&&h| h).count();
    let precision_at_k = if k == 0 {
        0.0
    } else {
        hits_at_k as f32 / k as f32
    };
    let recall = if k == 0 {
        0.0
    } else {
        total_hits as f32 / k as f32
    };
    let f1 = if precision_at_k + recall <= f32::EPSILON {
        0.0
    } else {
        2.0 * precision_at_k * recall / (precision_at_k + recall)
    };

    // Average precision over the ranked list.
    let mut ap = 0.0;
    let mut cum_hits = 0usize;
    for (i, &h) in hits.iter().enumerate() {
        if h {
            cum_hits += 1;
            ap += cum_hits as f32 / (i + 1) as f32;
        }
    }
    let average_precision = if k == 0 { 0.0 } else { ap / k as f32 };

    RetrievalReport {
        precision_at_k,
        recall,
        f1,
        average_precision,
        num_truth: k,
        num_predictions: ranked.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn ann(start: u32, end: u32) -> EventAnnotation {
        EventAnnotation {
            kind: EventKind::LeftTurn,
            start,
            end,
            object_ids: vec![0],
        }
    }

    fn pm(start: u32, end: u32, score: f32) -> PredictedMoment {
        PredictedMoment { start, end, score }
    }

    #[test]
    fn perfect_retrieval() {
        let t1 = ann(100, 190);
        let t2 = ann(400, 490);
        let truth = vec![&t1, &t2];
        let preds = vec![pm(100, 190, 0.9), pm(400, 490, 0.8)];
        let r = evaluate_retrieval(&preds, &truth);
        assert_eq!(r.precision_at_k, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
        assert!((r.average_precision - 1.0).abs() < 1e-6);
    }

    #[test]
    fn one_miss_one_hit() {
        let t1 = ann(100, 190);
        let t2 = ann(400, 490);
        let truth = vec![&t1, &t2];
        let preds = vec![pm(100, 190, 0.9), pm(700, 790, 0.8)];
        let r = evaluate_retrieval(&preds, &truth);
        assert_eq!(r.precision_at_k, 0.5);
        assert_eq!(r.recall, 0.5);
    }

    #[test]
    fn each_truth_matches_once() {
        let t1 = ann(100, 190);
        let truth = vec![&t1];
        // Two predictions on the same event: only the higher-ranked counts.
        let preds = vec![pm(100, 190, 0.9), pm(105, 195, 0.8)];
        let r = evaluate_retrieval(&preds, &truth);
        assert_eq!(r.precision_at_k, 1.0);
        assert_eq!(r.recall, 1.0);
        // AP unaffected by the duplicate below rank k.
        assert!((r.average_precision - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ranking_matters_for_ap() {
        let t1 = ann(100, 190);
        let t2 = ann(400, 490);
        let truth = vec![&t1, &t2];
        // Hit at rank 1 and rank 3 (rank 2 is a false positive).
        let good_first = vec![pm(100, 190, 0.9), pm(700, 790, 0.8), pm(400, 490, 0.7)];
        let r1 = evaluate_retrieval(&good_first, &truth);
        // Hits at ranks 2 and 3.
        let bad_first = vec![pm(700, 790, 0.9), pm(100, 190, 0.8), pm(400, 490, 0.7)];
        let r2 = evaluate_retrieval(&bad_first, &truth);
        assert!(r1.average_precision > r2.average_precision);
        assert_eq!(r1.recall, r2.recall);
    }

    #[test]
    fn partial_overlap_above_threshold_counts() {
        let t1 = ann(100, 199);
        let truth = vec![&t1];
        // 60% overlap.
        let preds = vec![pm(140, 239, 0.9)];
        let r = evaluate_retrieval(&preds, &truth);
        assert_eq!(r.recall, 1.0);
    }

    #[test]
    fn tiny_overlap_does_not_count() {
        let t1 = ann(100, 199);
        let truth = vec![&t1];
        let preds = vec![pm(190, 400, 0.9)];
        let r = evaluate_retrieval(&preds, &truth);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
    }

    #[test]
    fn empty_inputs() {
        let r = evaluate_retrieval(&[], &[]);
        assert_eq!(r.precision_at_k, 0.0);
        assert_eq!(r.num_truth, 0);
        let t1 = ann(0, 10);
        let truth = vec![&t1];
        let r = evaluate_retrieval(&[], &truth);
        assert_eq!(r.recall, 0.0);
    }
}
