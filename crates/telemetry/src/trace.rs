//! Per-query trace contexts: the spine of end-to-end query tracing.
//!
//! A [`TraceContext`] is minted where a query is born (the wire client,
//! or [`Recorder::begin`](crate::Recorder::begin) for in-process
//! sessions) and handed along the query path — wire protocol, admission
//! queue, worker thread, fusion batch. Any thread that is about to do
//! work on behalf of the query calls [`TraceContext::enter`]; while the
//! returned guard lives, every span completed on that thread is
//! delivered into the trace instead of the thread-local buffer. A
//! thread may enter several contexts at once (a fused batch executes
//! one shared scan for many queries), in which case each completed span
//! is delivered to *all* of them — every member query still gets a
//! complete span tree.
//!
//! When the query is done, [`TraceContext::finalize`] snapshots the
//! spans into an immutable [`QueryTrace`], records it in the global
//! [flight recorder](crate::flight_recorder), and offers it to the
//! [slow-query log](crate::configure_slow_query_log). Finalization is
//! idempotent and also runs from `Drop` as a safety net, so shed or
//! abandoned queries still leave a trace.
//!
//! Trace ids are 48-bit so they survive JSON transports that store
//! numbers as `f64` (exact only up to 2^53).

#[cfg(feature = "enabled")]
use std::cell::RefCell;
use std::marker::PhantomData;
#[cfg(feature = "enabled")]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[cfg(not(feature = "enabled"))]
use crate::flight::QueryTrace;
#[cfg(feature = "enabled")]
use crate::flight::{flight_recorder, QueryTrace};
#[cfg(feature = "enabled")]
use crate::slowlog;
#[cfg(feature = "enabled")]
use crate::span::nanos_since_epoch;
#[cfg(feature = "enabled")]
use crate::span::SpanRecord;

/// How a traced query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The query ran to completion and returned moments.
    Completed,
    /// The query's deadline expired (in queue or mid-search).
    DeadlineExceeded,
    /// The query was cancelled by the caller.
    Cancelled,
    /// The query was shed at admission (queue full or shutdown).
    Shed,
    /// The query failed with an error.
    Failed,
}

impl TraceOutcome {
    /// Stable lowercase wire/log name for the outcome.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceOutcome::Completed => "completed",
            TraceOutcome::DeadlineExceeded => "deadline_exceeded",
            TraceOutcome::Cancelled => "cancelled",
            TraceOutcome::Shed => "shed",
            TraceOutcome::Failed => "failed",
        }
    }
}

/// Mints a fresh 48-bit trace id: unique within a process, very likely
/// unique across the processes of one deployment. Never 0 (`0` means
/// "no trace"). Available even when telemetry is compiled out, so wire
/// semantics don't change between builds.
pub fn mint_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let pid = std::process::id() as u64;
    // FNV-1a over (clock, pid, seq) — cheap, well mixed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [clock, pid, seq] {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    // 48 bits: exact in an f64, so the id round-trips through JSON.
    let id = h & 0xffff_ffff_ffff;
    if id == 0 {
        1
    } else {
        id
    }
}

/// Formats a trace id the way operators see it: 12 hex digits.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:012x}")
}

/// Parses a trace id as printed by [`format_trace_id`] (hex, with or
/// without a `0x` prefix). Returns `None` for malformed or zero ids.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim();
    let s = s.strip_prefix("0x").unwrap_or(s);
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// Buckets for the per-query attributed-allocation histogram, KiB.
#[cfg(feature = "enabled")]
const QUERY_ALLOC_KB_BOUNDS: &[f64] = &[
    16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
];

/// Buckets for the per-query attributed-CPU histogram, milliseconds.
#[cfg(feature = "enabled")]
const QUERY_CPU_MS_BOUNDS: &[f64] = &[
    0.1, 0.5, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0,
];

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct TraceMeta {
    label: String,
    outcome: TraceOutcome,
    batch_size: usize,
}

#[cfg(feature = "enabled")]
#[derive(Debug)]
pub(crate) struct TraceInner {
    id: u64,
    started: Instant,
    start_nanos: u64,
    meta: Mutex<TraceMeta>,
    spans: Mutex<Vec<SpanRecord>>,
    // Resources attributed by TraceGuard drops: every thread that
    // entered the trace adds the heap and CPU it consumed while inside.
    alloc_bytes: AtomicU64,
    alloc_count: AtomicU64,
    cpu_nanos: AtomicU64,
    finalized: AtomicBool,
}

#[cfg(feature = "enabled")]
impl TraceInner {
    /// Snapshots this trace into a [`QueryTrace`] and publishes it to
    /// the flight recorder and the slow-query log. Idempotent: the
    /// first caller (explicit [`TraceContext::finalize`] or the `Drop`
    /// safety net) wins, later calls return `None`.
    fn do_finalize(&self) -> Option<Arc<QueryTrace>> {
        if self.finalized.swap(true, Ordering::AcqRel) {
            return None;
        }
        let total_nanos = self.started.elapsed().as_nanos() as u64;
        let spans = std::mem::take(&mut *self.spans.lock().unwrap());
        let alloc_bytes = self.alloc_bytes.load(Ordering::Relaxed);
        let alloc_count = self.alloc_count.load(Ordering::Relaxed);
        let cpu_nanos = self.cpu_nanos.load(Ordering::Relaxed);
        let trace = {
            let meta = self.meta.lock().unwrap();
            Arc::new(QueryTrace {
                trace_id: self.id,
                label: meta.label.clone(),
                outcome: meta.outcome,
                batch_size: meta.batch_size,
                start_nanos: self.start_nanos,
                total_nanos,
                alloc_bytes,
                alloc_count,
                cpu_nanos,
                spans,
            })
        };
        crate::metrics::counter(crate::names::RESOURCE_ALLOC_BYTES).add(alloc_bytes);
        crate::metrics::counter(crate::names::RESOURCE_ALLOC_COUNT).add(alloc_count);
        crate::metrics::counter(crate::names::RESOURCE_CPU_NANOS).add(cpu_nanos);
        crate::metrics::histogram(crate::names::RESOURCE_QUERY_ALLOC_KB, QUERY_ALLOC_KB_BOUNDS)
            .observe(alloc_bytes as f64 / 1024.0);
        crate::metrics::histogram(crate::names::RESOURCE_QUERY_CPU_MS, QUERY_CPU_MS_BOUNDS)
            .observe(cpu_nanos as f64 / 1e6);
        flight_recorder().record(Arc::clone(&trace));
        slowlog::observe_trace(&trace);
        Some(trace)
    }
}

#[cfg(feature = "enabled")]
impl Drop for TraceInner {
    fn drop(&mut self) {
        // Safety net for abandoned queries (shed at admission, handle
        // dropped, worker panicked past the result): they still land in
        // the flight recorder and slow-query log.
        let _ = self.do_finalize();
    }
}

/// A handle on one query's trace: its id plus the span sink that
/// travels with the query. Cheap to clone (an `Arc` bump); all clones
/// share the same span buffer and finalize at most once.
///
/// With telemetry compiled out this is just the id — every operation is
/// a no-op but the id still propagates, so wire behavior is identical.
#[derive(Clone, Debug)]
pub struct TraceContext {
    id: u64,
    #[cfg(feature = "enabled")]
    inner: Option<Arc<TraceInner>>,
}

impl PartialEq for TraceContext {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl TraceContext {
    /// Starts a new trace with a freshly minted id.
    pub fn new() -> Self {
        Self::with_id(mint_trace_id())
    }

    /// Starts a new trace under an externally minted id (the id a wire
    /// client sent along with its query).
    pub fn with_id(id: u64) -> Self {
        #[cfg(feature = "enabled")]
        {
            let started = Instant::now();
            TraceContext {
                id,
                inner: Some(Arc::new(TraceInner {
                    id,
                    started,
                    start_nanos: nanos_since_epoch(started),
                    meta: Mutex::new(TraceMeta {
                        label: String::new(),
                        outcome: TraceOutcome::Completed,
                        batch_size: 1,
                    }),
                    spans: Mutex::new(Vec::new()),
                    alloc_bytes: AtomicU64::new(0),
                    alloc_count: AtomicU64::new(0),
                    cpu_nanos: AtomicU64::new(0),
                    finalized: AtomicBool::new(false),
                })),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            TraceContext { id }
        }
    }

    /// A context that only carries an id: spans entered under it are
    /// discarded and nothing is flight-recorded. What [`with_id`]
    /// returns when telemetry is compiled out.
    ///
    /// [`with_id`]: TraceContext::with_id
    pub fn inert(id: u64) -> Self {
        TraceContext {
            id,
            #[cfg(feature = "enabled")]
            inner: None,
        }
    }

    /// The trace id (0 only for inert contexts created with id 0).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Registers this trace as a span sink on the current thread; while
    /// the returned guard lives, spans completed on this thread are
    /// delivered into this trace (and into any other traces the thread
    /// has entered — fused batches enter all their members). The guard
    /// also scopes resource attribution: the heap the thread allocates
    /// and the CPU it burns while the guard lives are added to the
    /// trace's `alloc_bytes` / `alloc_count` / `cpu_nanos` on drop.
    #[must_use = "spans are only delivered to the trace while the guard is alive"]
    pub fn enter(&self) -> TraceGuard {
        #[cfg(feature = "enabled")]
        {
            crate::profiler::ensure_registered();
            let entered = self.inner.as_ref().map(|inner| {
                ACTIVE.with(|a| a.borrow_mut().push(Arc::clone(inner)));
                Arc::clone(inner)
            });
            let (base_alloc_bytes, base_alloc_count) = crate::alloc::thread_allocated();
            TraceGuard {
                entered,
                base_alloc_bytes,
                base_alloc_count,
                base_cpu: crate::cpu::stamp(),
                _not_send: PhantomData,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            TraceGuard {
                _not_send: PhantomData,
            }
        }
    }

    /// The traces the current thread has entered, as independent
    /// contexts — what a worker captures right before handing work to a
    /// helper thread, so the helper can `enter()` them too and its
    /// spans and resources attribute to the same queries. Empty when no
    /// trace is active or telemetry is compiled out.
    pub fn entered() -> Vec<TraceContext> {
        #[cfg(feature = "enabled")]
        {
            ACTIVE.with(|a| {
                a.borrow()
                    .iter()
                    .map(|inner| TraceContext {
                        id: inner.id,
                        inner: Some(Arc::clone(inner)),
                    })
                    .collect()
            })
        }
        #[cfg(not(feature = "enabled"))]
        {
            Vec::new()
        }
    }

    /// Sets the human-readable label (usually `dataset/query`).
    pub fn set_label(&self, label: impl Into<String>) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &self.inner {
            inner.meta.lock().unwrap().label = label.into();
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = label.into();
        }
    }

    /// Sets how the query ended (defaults to [`TraceOutcome::Completed`]).
    pub fn set_outcome(&self, outcome: TraceOutcome) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &self.inner {
            inner.meta.lock().unwrap().outcome = outcome;
        }
        #[cfg(not(feature = "enabled"))]
        let _ = outcome;
    }

    /// Sets the fused batch size the query executed under (default 1).
    pub fn set_batch_size(&self, batch_size: usize) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &self.inner {
            inner.meta.lock().unwrap().batch_size = batch_size;
        }
        #[cfg(not(feature = "enabled"))]
        let _ = batch_size;
    }

    /// Records a span directly into this trace, for intervals measured
    /// outside any thread's RAII scope (e.g. time spent in the
    /// admission queue, timed between two threads).
    pub fn record_span(&self, name: &'static str, depth: usize, start: Instant, nanos: u64) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &self.inner {
            inner.spans.lock().unwrap().push(SpanRecord {
                name,
                depth,
                start_nanos: nanos_since_epoch(start),
                nanos,
            });
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, depth, start, nanos);
        }
    }

    /// Closes the trace: snapshots its spans into a [`QueryTrace`],
    /// records it in the global flight recorder, and offers it to the
    /// slow-query log. Returns the snapshot, or `None` if the trace was
    /// already finalized (by another clone or the `Drop` safety net) or
    /// telemetry is compiled out.
    pub fn finalize(&self) -> Option<std::sync::Arc<QueryTrace>> {
        #[cfg(feature = "enabled")]
        {
            self.inner.as_ref().and_then(|inner| inner.do_finalize())
        }
        #[cfg(not(feature = "enabled"))]
        {
            None
        }
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        Self::new()
    }
}

// The traces the current thread has entered, innermost last. Spans
// completed on this thread are delivered to all of them.
#[cfg(feature = "enabled")]
thread_local! {
    static ACTIVE: RefCell<Vec<Arc<TraceInner>>> = const { RefCell::new(Vec::new()) };
}

/// Delivers a completed span to every trace entered on this thread.
/// Returns the record back if no trace is active (caller keeps it in
/// the thread-local buffer).
#[cfg(feature = "enabled")]
pub(crate) fn deliver(record: SpanRecord) -> Option<SpanRecord> {
    ACTIVE.with(|a| {
        let active = a.borrow();
        if active.is_empty() {
            return Some(record);
        }
        for sink in active.iter() {
            sink.spans.lock().unwrap().push(record.clone());
        }
        None
    })
}

/// RAII guard from [`TraceContext::enter`]; leaving the scope stops
/// delivering this thread's spans to the trace and attributes the heap
/// and CPU the thread consumed inside the scope to it. Not `Send`: the
/// guard must drop on the thread that entered.
#[must_use = "spans are only delivered to the trace while the guard is alive"]
pub struct TraceGuard {
    #[cfg(feature = "enabled")]
    entered: Option<Arc<TraceInner>>,
    #[cfg(feature = "enabled")]
    base_alloc_bytes: u64,
    #[cfg(feature = "enabled")]
    base_alloc_count: u64,
    #[cfg(feature = "enabled")]
    base_cpu: crate::cpu::CpuStamp,
    _not_send: PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = self.entered.take() {
            // Attribute this thread's consumption over the guard's
            // lifetime. A fused batch enters all member traces, so each
            // member sees the full cost of the shared scan — the same
            // semantics spans already have.
            let (bytes, count) = crate::alloc::thread_allocated();
            inner
                .alloc_bytes
                .fetch_add(bytes.wrapping_sub(self.base_alloc_bytes), Ordering::Relaxed);
            inner
                .alloc_count
                .fetch_add(count.wrapping_sub(self.base_alloc_count), Ordering::Relaxed);
            inner
                .cpu_nanos
                .fetch_add(crate::cpu::nanos_since(&self.base_cpu), Ordering::Relaxed);
            ACTIVE.with(|a| {
                let mut active = a.borrow_mut();
                // Remove the most recent matching entry (guards usually
                // drop LIFO, but a fused batch drops a whole set).
                if let Some(pos) = active.iter().rposition(|s| Arc::ptr_eq(s, &inner)) {
                    active.remove(pos);
                }
            });
        }
    }
}
