//! Reverse-mode automatic differentiation over a fixed op set.
//!
//! A [`Tape`] records an eager forward computation as a flat list of nodes;
//! [`Tape::backward`] then walks the list in reverse, dispatching on the op
//! enum to propagate gradients. A closed op enum (instead of boxed backward
//! closures) keeps every backward rule explicit, auditable, and individually
//! gradient-checked in the test suite.

// Index arithmetic is clearer than iterator adapters in these numeric
// kernels.
#![allow(clippy::needless_range_loop)]

use crate::tensor::Tensor;

/// Index of a node on the tape.
pub type NodeId = usize;

/// The operations the autograd engine understands.
#[derive(Debug, Clone)]
enum Op {
    /// Input / parameter node.
    Leaf,
    /// `A (RxK) @ B (KxC)`.
    MatMul(NodeId, NodeId),
    /// Matrix transpose.
    Transpose(NodeId),
    /// Element-wise sum of same-shape tensors.
    Add(NodeId, NodeId),
    /// `A (RxC) + b (1xC)` broadcast over rows (bias add).
    AddRowBroadcast(NodeId, NodeId),
    /// Element-wise difference.
    Sub(NodeId, NodeId),
    /// Element-wise (Hadamard) product.
    Mul(NodeId, NodeId),
    /// Multiplication by a compile-time constant.
    Scale(NodeId, f32),
    /// Row-wise softmax.
    SoftmaxRows(NodeId),
    /// Row-wise layer normalization with learned gain/bias:
    /// `(x, gamma 1xC, beta 1xC)`.
    LayerNormRows(NodeId, NodeId, NodeId),
    /// GELU activation (tanh approximation).
    Gelu(NodeId),
    /// ReLU activation.
    Relu(NodeId),
    /// Hyperbolic tangent activation.
    Tanh(NodeId),
    /// Mean over rows: `RxC -> 1xC` (sequence pooling).
    MeanRows(NodeId),
    /// Mean over all elements: `RxC -> 1x1`.
    MeanAll(NodeId),
    /// Column slice `[start, start+len)`.
    SliceCols(NodeId, usize, usize),
    /// Column-wise concatenation.
    ConcatCols(Vec<NodeId>),
    /// Row-wise concatenation (stacking embeddings into a batch).
    ConcatRows(Vec<NodeId>),
    /// Row-wise L2 normalization (unit embeddings).
    L2NormalizeRows(NodeId),
    /// Mean cross-entropy of row `i` of the logits against class
    /// `targets[i]`; produces a `1x1` loss.
    CrossEntropyRows(NodeId, Vec<usize>),
    /// Element-wise product with a fixed 0/`1/keep` mask (inverted dropout).
    Dropout(NodeId, Vec<f32>),
}

pub(crate) const LN_EPS: f32 = 1e-5;

/// Gradients produced by [`Tape::backward`], indexed by [`NodeId`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the loss w.r.t. node `id`, if that node influenced
    /// the loss.
    pub fn get(&self, id: NodeId) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }
}

/// A recorded forward computation.
#[derive(Default)]
pub struct Tape {
    ops: Vec<Op>,
    values: Vec<Tensor>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.values[id]
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        debug_assert!(value.is_finite(), "non-finite forward value from {op:?}");
        self.ops.push(op);
        self.values.push(value);
        self.ops.len() - 1
    }

    /// Inserts an input or parameter tensor.
    pub fn leaf(&mut self, t: Tensor) -> NodeId {
        self.push(Op::Leaf, t)
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a].matmul(&self.values[b]);
        self.push(Op::MatMul(a, b), v)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a].transposed();
        self.push(Op::Transpose(a), v)
    }

    /// Element-wise sum (same shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.values[a], &self.values[b]);
        assert_eq!((va.rows, va.cols), (vb.rows, vb.cols), "add shape mismatch");
        let data = va.data.iter().zip(&vb.data).map(|(x, y)| x + y).collect();
        let v = Tensor::from_vec(va.rows, va.cols, data);
        self.push(Op::Add(a, b), v)
    }

    /// Adds a `1 x C` bias to every row of an `R x C` tensor.
    pub fn add_row_broadcast(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.values[a], &self.values[b]);
        assert_eq!(vb.rows, 1, "bias must be 1 x C");
        assert_eq!(va.cols, vb.cols, "bias width mismatch");
        let mut v = va.clone();
        for r in 0..v.rows {
            for c in 0..v.cols {
                v.data[r * v.cols + c] += vb.data[c];
            }
        }
        self.push(Op::AddRowBroadcast(a, b), v)
    }

    /// Element-wise difference (same shapes).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.values[a], &self.values[b]);
        assert_eq!((va.rows, va.cols), (vb.rows, vb.cols), "sub shape mismatch");
        let data = va.data.iter().zip(&vb.data).map(|(x, y)| x - y).collect();
        let v = Tensor::from_vec(va.rows, va.cols, data);
        self.push(Op::Sub(a, b), v)
    }

    /// Element-wise product (same shapes).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.values[a], &self.values[b]);
        assert_eq!((va.rows, va.cols), (vb.rows, vb.cols), "mul shape mismatch");
        let data = va.data.iter().zip(&vb.data).map(|(x, y)| x * y).collect();
        let v = Tensor::from_vec(va.rows, va.cols, data);
        self.push(Op::Mul(a, b), v)
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.values[a].map(|x| x * s);
        self.push(Op::Scale(a, s), v)
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let va = &self.values[a];
        let mut v = va.clone();
        for r in 0..v.rows {
            crate::kernels::softmax_row_scalar(v.row_mut(r));
        }
        self.push(Op::SoftmaxRows(a), v)
    }

    /// Row-wise layer norm with learned `gamma` (gain) and `beta` (bias).
    pub fn layer_norm_rows(&mut self, x: NodeId, gamma: NodeId, beta: NodeId) -> NodeId {
        let (vx, vg, vb) = (&self.values[x], &self.values[gamma], &self.values[beta]);
        assert_eq!(vg.rows, 1);
        assert_eq!(vb.rows, 1);
        assert_eq!(vg.cols, vx.cols);
        assert_eq!(vb.cols, vx.cols);
        let mut v = vx.clone();
        for r in 0..v.rows {
            crate::kernels::layer_norm_row_scalar(v.row_mut(r), &vg.data, &vb.data, LN_EPS);
        }
        self.push(Op::LayerNormRows(x, gamma, beta), v)
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a].map(gelu_fwd);
        self.push(Op::Gelu(a), v)
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a].map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Tanh activation.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a].map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Mean over rows (`R x C -> 1 x C`).
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let va = &self.values[a];
        let mut v = Tensor::zeros(1, va.cols);
        for r in 0..va.rows {
            for c in 0..va.cols {
                v.data[c] += va.data[r * va.cols + c];
            }
        }
        for x in &mut v.data {
            *x /= va.rows as f32;
        }
        self.push(Op::MeanRows(a), v)
    }

    /// Mean over all elements (`R x C -> 1 x 1`).
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let va = &self.values[a];
        let m = va.data.iter().sum::<f32>() / va.len() as f32;
        self.push(Op::MeanAll(a), Tensor::scalar(m))
    }

    /// Column slice `[start, start+len)`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let va = &self.values[a];
        assert!(start + len <= va.cols, "slice out of range");
        let mut v = Tensor::zeros(va.rows, len);
        for r in 0..va.rows {
            v.row_mut(r).copy_from_slice(&va.row(r)[start..start + len]);
        }
        self.push(Op::SliceCols(a, start, len), v)
    }

    /// Column-wise concatenation of same-height tensors.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let rows = self.values[parts[0]].rows;
        let total: usize = parts.iter().map(|&p| self.values[p].cols).sum();
        let mut v = Tensor::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let vp = &self.values[p];
            assert_eq!(vp.rows, rows, "concat_cols row mismatch");
            for r in 0..rows {
                v.row_mut(r)[off..off + vp.cols].copy_from_slice(vp.row(r));
            }
            off += vp.cols;
        }
        self.push(Op::ConcatCols(parts.to_vec()), v)
    }

    /// Row-wise concatenation of same-width tensors.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let cols = self.values[parts[0]].cols;
        let total: usize = parts.iter().map(|&p| self.values[p].rows).sum();
        let mut v = Tensor::zeros(total, cols);
        let mut off = 0;
        for &p in parts {
            let vp = &self.values[p];
            assert_eq!(vp.cols, cols, "concat_rows col mismatch");
            v.data[off..off + vp.len()].copy_from_slice(&vp.data);
            off += vp.len();
        }
        self.push(Op::ConcatRows(parts.to_vec()), v)
    }

    /// Row-wise L2 normalization.
    pub fn l2_normalize_rows(&mut self, a: NodeId) -> NodeId {
        let va = &self.values[a];
        let mut v = va.clone();
        for r in 0..v.rows {
            let row = v.row_mut(r);
            let n = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8);
            for x in row.iter_mut() {
                *x /= n;
            }
        }
        self.push(Op::L2NormalizeRows(a), v)
    }

    /// Mean cross-entropy of each logit row against its target class.
    pub fn cross_entropy_rows(&mut self, logits: NodeId, targets: Vec<usize>) -> NodeId {
        let vl = &self.values[logits];
        assert_eq!(vl.rows, targets.len(), "one target per row");
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < vl.cols, "target out of range");
            let row = vl.row(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let logsum = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            loss += logsum - row[t];
        }
        let v = Tensor::scalar(loss / targets.len() as f32);
        self.push(Op::CrossEntropyRows(logits, targets), v)
    }

    /// Inverted dropout with the given keep mask (entries are `0` or
    /// `1/keep_prob`). The caller samples the mask so training is seedable.
    pub fn dropout(&mut self, a: NodeId, mask: Vec<f32>) -> NodeId {
        let va = &self.values[a];
        assert_eq!(mask.len(), va.len(), "mask size mismatch");
        let data = va.data.iter().zip(&mask).map(|(x, m)| x * m).collect();
        let v = Tensor::from_vec(va.rows, va.cols, data);
        self.push(Op::Dropout(a, mask), v)
    }

    /// Runs reverse-mode differentiation from `loss` (must be `1 x 1`).
    pub fn backward(&self, loss: NodeId) -> Gradients {
        assert_eq!(
            (self.values[loss].rows, self.values[loss].cols),
            (1, 1),
            "backward() expects a scalar loss"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.ops.len()];
        grads[loss] = Some(Tensor::scalar(1.0));

        for id in (0..=loss).rev() {
            let Some(g) = grads[id].take() else {
                continue;
            };
            self.backprop_node(id, &g, &mut grads);
            grads[id] = Some(g);
        }
        Gradients { grads }
    }

    /// Accumulates `delta` into `grads[target]`.
    fn accum(grads: &mut [Option<Tensor>], target: NodeId, delta: Tensor) {
        match &mut grads[target] {
            Some(g) => g.add_scaled(&delta, 1.0),
            slot @ None => *slot = Some(delta),
        }
    }

    fn backprop_node(&self, id: NodeId, g: &Tensor, grads: &mut [Option<Tensor>]) {
        match &self.ops[id] {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let (va, vb) = (&self.values[*a], &self.values[*b]);
                Self::accum(grads, *a, g.matmul(&vb.transposed()));
                Self::accum(grads, *b, va.transposed().matmul(g));
            }
            Op::Transpose(a) => {
                Self::accum(grads, *a, g.transposed());
            }
            Op::Add(a, b) => {
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *b, g.clone());
            }
            Op::AddRowBroadcast(a, b) => {
                Self::accum(grads, *a, g.clone());
                let mut gb = Tensor::zeros(1, g.cols);
                for r in 0..g.rows {
                    for c in 0..g.cols {
                        gb.data[c] += g.data[r * g.cols + c];
                    }
                }
                Self::accum(grads, *b, gb);
            }
            Op::Sub(a, b) => {
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *b, g.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let (va, vb) = (&self.values[*a], &self.values[*b]);
                let ga = Tensor::from_vec(
                    g.rows,
                    g.cols,
                    g.data.iter().zip(&vb.data).map(|(x, y)| x * y).collect(),
                );
                let gb = Tensor::from_vec(
                    g.rows,
                    g.cols,
                    g.data.iter().zip(&va.data).map(|(x, y)| x * y).collect(),
                );
                Self::accum(grads, *a, ga);
                Self::accum(grads, *b, gb);
            }
            Op::Scale(a, s) => {
                Self::accum(grads, *a, g.map(|x| x * s));
            }
            Op::SoftmaxRows(a) => {
                let y = &self.values[id];
                let mut ga = Tensor::zeros(g.rows, g.cols);
                for r in 0..g.rows {
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(yv, gv)| yv * gv).sum();
                    for c in 0..g.cols {
                        ga.data[r * g.cols + c] = yr[c] * (gr[c] - dot);
                    }
                }
                Self::accum(grads, *a, ga);
            }
            Op::LayerNormRows(x, gamma, beta) => {
                let vx = &self.values[*x];
                let vg = &self.values[*gamma];
                let n = vx.cols as f32;
                let mut gx = Tensor::zeros(vx.rows, vx.cols);
                let mut ggamma = Tensor::zeros(1, vx.cols);
                let mut gbeta = Tensor::zeros(1, vx.cols);
                for r in 0..vx.rows {
                    let row = vx.row(r);
                    let mean = row.iter().sum::<f32>() / n;
                    let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
                    let inv_std = 1.0 / (var + LN_EPS).sqrt();
                    let gr = g.row(r);
                    // xhat and the two reduction terms of the standard
                    // layer-norm backward.
                    let xhat: Vec<f32> = row.iter().map(|v| (v - mean) * inv_std).collect();
                    let dxhat: Vec<f32> = gr
                        .iter()
                        .enumerate()
                        .map(|(c, gv)| gv * vg.data[c])
                        .collect();
                    let mean_dxhat = dxhat.iter().sum::<f32>() / n;
                    let mean_dxhat_xhat =
                        dxhat.iter().zip(&xhat).map(|(a, b)| a * b).sum::<f32>() / n;
                    for c in 0..vx.cols {
                        gx.data[r * vx.cols + c] =
                            inv_std * (dxhat[c] - mean_dxhat - xhat[c] * mean_dxhat_xhat);
                        ggamma.data[c] += gr[c] * xhat[c];
                        gbeta.data[c] += gr[c];
                    }
                }
                Self::accum(grads, *x, gx);
                Self::accum(grads, *gamma, ggamma);
                Self::accum(grads, *beta, gbeta);
            }
            Op::Gelu(a) => {
                let va = &self.values[*a];
                let ga = Tensor::from_vec(
                    g.rows,
                    g.cols,
                    g.data
                        .iter()
                        .zip(&va.data)
                        .map(|(gv, &x)| gv * gelu_bwd(x))
                        .collect(),
                );
                Self::accum(grads, *a, ga);
            }
            Op::Relu(a) => {
                let va = &self.values[*a];
                let ga = Tensor::from_vec(
                    g.rows,
                    g.cols,
                    g.data
                        .iter()
                        .zip(&va.data)
                        .map(|(gv, &x)| if x > 0.0 { *gv } else { 0.0 })
                        .collect(),
                );
                Self::accum(grads, *a, ga);
            }
            Op::Tanh(a) => {
                let y = &self.values[id];
                let ga = Tensor::from_vec(
                    g.rows,
                    g.cols,
                    g.data
                        .iter()
                        .zip(&y.data)
                        .map(|(gv, &yv)| gv * (1.0 - yv * yv))
                        .collect(),
                );
                Self::accum(grads, *a, ga);
            }
            Op::MeanRows(a) => {
                let va = &self.values[*a];
                let mut ga = Tensor::zeros(va.rows, va.cols);
                let inv = 1.0 / va.rows as f32;
                for r in 0..va.rows {
                    for c in 0..va.cols {
                        ga.data[r * va.cols + c] = g.data[c] * inv;
                    }
                }
                Self::accum(grads, *a, ga);
            }
            Op::MeanAll(a) => {
                let va = &self.values[*a];
                let inv = g.item() / va.len() as f32;
                Self::accum(grads, *a, Tensor::full(va.rows, va.cols, inv));
            }
            Op::SliceCols(a, start, len) => {
                let va = &self.values[*a];
                let mut ga = Tensor::zeros(va.rows, va.cols);
                for r in 0..va.rows {
                    ga.row_mut(r)[*start..*start + *len].copy_from_slice(g.row(r));
                }
                Self::accum(grads, *a, ga);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let vp = &self.values[p];
                    let mut gp = Tensor::zeros(vp.rows, vp.cols);
                    for r in 0..vp.rows {
                        gp.row_mut(r).copy_from_slice(&g.row(r)[off..off + vp.cols]);
                    }
                    off += vp.cols;
                    Self::accum(grads, p, gp);
                }
            }
            Op::ConcatRows(parts) => {
                let mut off = 0;
                for &p in parts {
                    let vp = &self.values[p];
                    let gp =
                        Tensor::from_vec(vp.rows, vp.cols, g.data[off..off + vp.len()].to_vec());
                    off += vp.len();
                    Self::accum(grads, p, gp);
                }
            }
            Op::L2NormalizeRows(a) => {
                let va = &self.values[*a];
                let y = &self.values[id];
                let mut ga = Tensor::zeros(va.rows, va.cols);
                for r in 0..va.rows {
                    let xr = va.row(r);
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let n = xr.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8);
                    let dot: f32 = yr.iter().zip(gr).map(|(yv, gv)| yv * gv).sum();
                    for c in 0..va.cols {
                        ga.data[r * va.cols + c] = (gr[c] - yr[c] * dot) / n;
                    }
                }
                Self::accum(grads, *a, ga);
            }
            Op::CrossEntropyRows(logits, targets) => {
                let vl = &self.values[*logits];
                let scale = g.item() / targets.len() as f32;
                let mut gl = Tensor::zeros(vl.rows, vl.cols);
                for (r, &t) in targets.iter().enumerate() {
                    let row = vl.row(r);
                    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
                    let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
                    let sum: f32 = exps.iter().sum();
                    for c in 0..vl.cols {
                        let p = exps[c] / sum;
                        gl.data[r * vl.cols + c] = scale * (p - if c == t { 1.0 } else { 0.0 });
                    }
                }
                Self::accum(grads, *logits, gl);
            }
            Op::Dropout(a, mask) => {
                let ga = Tensor::from_vec(
                    g.rows,
                    g.cols,
                    g.data.iter().zip(mask).map(|(gv, m)| gv * m).collect(),
                );
                Self::accum(grads, *a, ga);
            }
        }
    }
}

use crate::kernels::{GELU_A, GELU_C};

pub(crate) use crate::kernels::gelu_scalar as gelu_fwd;

fn gelu_bwd(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = crate::kernels::fast_tanh(u);
    let du = GELU_C * (1.0 + 3.0 * GELU_A * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Numerically checks `d loss / d input` for a graph builder `f` that
    /// maps leaf tensors to a scalar loss node.
    fn grad_check(inputs: &[Tensor], f: impl Fn(&mut Tape, &[NodeId]) -> NodeId) {
        // Analytic gradients.
        let mut tape = Tape::new();
        let ids: Vec<NodeId> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
        let loss = f(&mut tape, &ids);
        let grads = tape.backward(loss);

        let eps = 1e-2f32;
        for (k, input) in inputs.iter().enumerate() {
            let analytic = grads
                .get(ids[k])
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(input.rows, input.cols));
            for i in 0..input.len() {
                let mut plus = inputs.to_vec();
                plus[k].data[i] += eps;
                let mut minus = inputs.to_vec();
                minus[k].data[i] -= eps;
                let eval = |ts: &[Tensor]| {
                    let mut tape = Tape::new();
                    let ids: Vec<NodeId> = ts.iter().map(|t| tape.leaf(t.clone())).collect();
                    let l = f(&mut tape, &ids);
                    tape.value(l).item()
                };
                let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
                let a = analytic.data[i];
                let tol = 1e-2 * (1.0 + a.abs().max(numeric.abs()));
                assert!(
                    (a - numeric).abs() < tol,
                    "input {k} element {i}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    fn randt(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn grad_matmul() {
        grad_check(&[randt(3, 4, 1), randt(4, 2, 2)], |t, ids| {
            let m = t.matmul(ids[0], ids[1]);
            t.mean_all(m)
        });
    }

    #[test]
    fn grad_add_sub_mul_scale() {
        grad_check(&[randt(2, 3, 3), randt(2, 3, 4)], |t, ids| {
            let a = t.add(ids[0], ids[1]);
            let s = t.sub(a, ids[1]);
            let m = t.mul(s, ids[0]);
            let sc = t.scale(m, 1.7);
            t.mean_all(sc)
        });
    }

    #[test]
    fn grad_add_row_broadcast() {
        grad_check(&[randt(3, 4, 5), randt(1, 4, 6)], |t, ids| {
            let a = t.add_row_broadcast(ids[0], ids[1]);
            t.mean_all(a)
        });
    }

    #[test]
    fn grad_transpose() {
        grad_check(&[randt(2, 5, 7)], |t, ids| {
            let tr = t.transpose(ids[0]);
            let m = t.mul(tr, tr);
            t.mean_all(m)
        });
    }

    #[test]
    fn grad_softmax() {
        grad_check(&[randt(3, 5, 8)], |t, ids| {
            let s = t.softmax_rows(ids[0]);
            let sq = t.mul(s, s);
            t.mean_all(sq)
        });
    }

    #[test]
    fn grad_layer_norm() {
        grad_check(
            &[randt(3, 6, 9), randt(1, 6, 10), randt(1, 6, 11)],
            |t, ids| {
                let ln = t.layer_norm_rows(ids[0], ids[1], ids[2]);
                let sq = t.mul(ln, ln);
                t.mean_all(sq)
            },
        );
    }

    #[test]
    fn grad_activations() {
        grad_check(&[randt(2, 4, 12)], |t, ids| {
            let g = t.gelu(ids[0]);
            let r = t.relu(g);
            let th = t.tanh(r);
            t.mean_all(th)
        });
    }

    #[test]
    fn grad_mean_rows() {
        grad_check(&[randt(4, 3, 13)], |t, ids| {
            let m = t.mean_rows(ids[0]);
            let sq = t.mul(m, m);
            t.mean_all(sq)
        });
    }

    #[test]
    fn grad_slice_and_concat_cols() {
        grad_check(&[randt(2, 6, 14)], |t, ids| {
            let a = t.slice_cols(ids[0], 0, 3);
            let b = t.slice_cols(ids[0], 3, 3);
            let swapped = t.concat_cols(&[b, a]);
            let m = t.mul(swapped, swapped);
            t.mean_all(m)
        });
    }

    #[test]
    fn grad_concat_rows() {
        grad_check(&[randt(2, 3, 15), randt(3, 3, 16)], |t, ids| {
            let c = t.concat_rows(&[ids[0], ids[1]]);
            let sq = t.mul(c, c);
            t.mean_all(sq)
        });
    }

    #[test]
    fn grad_l2_normalize() {
        grad_check(&[randt(3, 4, 17)], |t, ids| {
            let n = t.l2_normalize_rows(ids[0]);
            let sq = t.mul(n, n);
            let w = t.leaf(randt(4, 1, 18));
            let proj = t.matmul(sq, w);
            t.mean_all(proj)
        });
    }

    #[test]
    fn grad_cross_entropy() {
        grad_check(&[randt(3, 4, 19)], |t, ids| {
            t.cross_entropy_rows(ids[0], vec![0, 2, 3])
        });
    }

    #[test]
    fn grad_dropout_mask_applied() {
        let mask = vec![0.0, 2.0, 2.0, 0.0, 2.0, 2.0];
        let mask2 = mask.clone();
        grad_check(&[randt(2, 3, 20)], move |t, ids| {
            let d = t.dropout(ids[0], mask2.clone());
            t.mean_all(d)
        });
        // Zeroed positions get zero gradient.
        let mut tape = Tape::new();
        let x = tape.leaf(randt(2, 3, 21));
        let d = tape.dropout(x, mask);
        let l = tape.mean_all(d);
        let g = tape.backward(l);
        let gx = g.get(x).unwrap();
        assert_eq!(gx.data[0], 0.0);
        assert_eq!(gx.data[3], 0.0);
        assert!(gx.data[1] > 0.0);
    }

    #[test]
    fn grad_attention_shaped_graph() {
        // A miniature single-head attention block, gradient-checked
        // end-to-end: x @ Wq, x @ Wk, x @ Wv, softmax(QK^T/s) V.
        grad_check(
            &[
                randt(4, 3, 22),
                randt(3, 3, 23),
                randt(3, 3, 24),
                randt(3, 3, 25),
            ],
            |t, ids| {
                let q = t.matmul(ids[0], ids[1]);
                let k = t.matmul(ids[0], ids[2]);
                let v = t.matmul(ids[0], ids[3]);
                let kt = t.transpose(k);
                let scores = t.matmul(q, kt);
                let scaled = t.scale(scores, 1.0 / (3.0f32).sqrt());
                let attn = t.softmax_rows(scaled);
                let out = t.matmul(attn, v);
                let sq = t.mul(out, out);
                t.mean_all(sq)
            },
        );
    }

    #[test]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let x = tape.leaf(randt(2, 2, 26));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.backward(x);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn unreached_nodes_have_no_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(randt(2, 2, 27));
        let unused = tape.leaf(randt(2, 2, 28));
        let l = tape.mean_all(x);
        let g = tape.backward(l);
        assert!(g.get(x).is_some());
        assert!(g.get(unused).is_none());
    }

    #[test]
    fn grad_accumulates_over_shared_use() {
        // loss = mean(x + x) → dloss/dx = 2/len.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(2, 2));
        let s = tape.add(x, x);
        let l = tape.mean_all(s);
        let g = tape.backward(l);
        let gx = g.get(x).unwrap();
        for v in &gx.data {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }
}
