//! The on-disk shard format: one frame-range segment of a sharded store.
//!
//! A sharded store splits a dataset's window rows into frame-range
//! shards; each shard is a self-contained columnar file carrying its own
//! rows, vectors, IVF posting lists (against the shard set's *shared*
//! coarse quantizer), and trailing checksum. The set-level metadata —
//! dataset identity, fingerprints, quantizer centroids, per-shard
//! checksums — lives in the manifest ([`crate::manifest`]), so opening a
//! shard set touches only the manifest and each shard's fixed-size
//! header; shard payloads are memory-mapped and first read (and checksum
//! verified) on first probe.
//!
//! Layout (all little-endian; floats by bit pattern):
//!
//! ```text
//! magic        8 bytes   "SKQLSHRD"
//! version      u32       SHARD_VERSION
//! shard_id     u32       position in the shard set
//! frame_start  u32       first frame this shard owns (inclusive)
//! frame_end    u32       last frame this shard owns (inclusive)
//! rows         u32       n, number of window rows
//! dim          u32       embedding dimensionality
//! nlist        u32       posting lists (== shared quantizer centroids)
//! pad          zeros     to byte 64
//! track_ids    n × u64                       (8-byte aligned)
//! starts       n × u32
//! ends         n × u32
//! classes      n × u8    (format.rs class-code table)
//! pad          zeros     to a 4-byte boundary
//! list_lens    nlist × u32                   rows per posting list
//! list_rows    n × u32   concatenated posting lists (local row ids)
//! vectors      n × dim × f32                 (4-byte aligned)
//! checksum     u64       FNV-1a 64 over every preceding byte
//! ```
//!
//! Column offsets are a pure function of `(rows, dim, nlist)`, and every
//! multi-byte column starts aligned to its element size, so a
//! little-endian host reads the vector column zero-copy straight out of
//! the mapping. Hosts where that doesn't hold (big-endian, or an owned
//! fallback buffer that happens to be misaligned) decode the column once
//! into an owned buffer — same values, same bits.

use std::path::{Path, PathBuf};

use sketchql_trajectory::{ObjectClass, TrackId};

use crate::format::{class_code, class_from_code};
use crate::mmap::Mmap;
use crate::{Fnv64, StoreError, StoreRow};

/// Magic bytes opening every shard file.
pub const SHARD_MAGIC: [u8; 8] = *b"SKQLSHRD";

/// Current shard format version; bumped on incompatible layout changes.
pub const SHARD_VERSION: u32 = 1;

/// Extension shard files carry inside a shard-set directory.
pub const SHARD_EXT: &str = "skshard";

/// Bytes of the fixed shard header (magic through padding).
pub const SHARD_HEADER_LEN: usize = 64;

/// The fixed-size shard header: everything attach-time validation needs
/// without touching the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// Position of this shard in its set.
    pub shard_id: u32,
    /// First frame this shard owns (inclusive).
    pub frame_start: u32,
    /// Last frame this shard owns (inclusive).
    pub frame_end: u32,
    /// Number of window rows stored.
    pub rows: u32,
    /// Embedding dimensionality.
    pub dim: u32,
    /// Number of posting lists (the shard set's shared `nlist`).
    pub nlist: u32,
}

/// Byte offsets of each section, derived from the header alone.
#[derive(Debug, Clone, Copy)]
struct Offsets {
    track_ids: usize,
    starts: usize,
    ends: usize,
    classes: usize,
    list_lens: usize,
    list_rows: usize,
    vectors: usize,
    /// Total file length including the trailing checksum.
    total: usize,
}

impl ShardHeader {
    fn offsets(&self) -> Offsets {
        let n = self.rows as usize;
        let track_ids = SHARD_HEADER_LEN;
        let starts = track_ids + n * 8;
        let ends = starts + n * 4;
        let classes = ends + n * 4;
        let unpadded = classes + n;
        let list_lens = unpadded + (4 - unpadded % 4) % 4;
        let list_rows = list_lens + self.nlist as usize * 4;
        let vectors = list_rows + n * 4;
        let total = vectors + n * self.dim as usize * 4 + 8;
        Offsets {
            track_ids,
            starts,
            ends,
            classes,
            list_lens,
            list_rows,
            vectors,
            total,
        }
    }

    /// Total file length a well-formed shard with this header must have.
    pub fn expected_len(&self) -> usize {
        self.offsets().total
    }

    fn to_bytes(self) -> [u8; SHARD_HEADER_LEN] {
        let mut out = [0u8; SHARD_HEADER_LEN];
        out[..8].copy_from_slice(&SHARD_MAGIC);
        out[8..12].copy_from_slice(&SHARD_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.shard_id.to_le_bytes());
        out[16..20].copy_from_slice(&self.frame_start.to_le_bytes());
        out[20..24].copy_from_slice(&self.frame_end.to_le_bytes());
        out[24..28].copy_from_slice(&self.rows.to_le_bytes());
        out[28..32].copy_from_slice(&self.dim.to_le_bytes());
        out[32..36].copy_from_slice(&self.nlist.to_le_bytes());
        out
    }

    fn from_bytes(path: &Path, bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < SHARD_HEADER_LEN {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                detail: format!(
                    "shard header (need {SHARD_HEADER_LEN} bytes, file has {})",
                    bytes.len()
                ),
            });
        }
        if bytes[..8] != SHARD_MAGIC {
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let u32_at = |off: usize| {
            u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
        };
        let version = u32_at(8);
        if version != SHARD_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                found: version,
            });
        }
        Ok(ShardHeader {
            shard_id: u32_at(12),
            frame_start: u32_at(16),
            frame_end: u32_at(20),
            rows: u32_at(24),
            dim: u32_at(28),
            nlist: u32_at(32),
        })
    }
}

/// Reads and validates a shard's header without touching the payload:
/// magic, version, and that the file length is exactly what the header
/// implies. This is the whole cost of attaching a shard at server start.
pub fn read_shard_header(path: &Path) -> Result<ShardHeader, StoreError> {
    let io = |source| StoreError::Io {
        path: path.to_path_buf(),
        source,
    };
    let mut file = std::fs::File::open(path).map_err(io)?;
    let file_len = file.metadata().map_err(io)?.len();
    let mut buf = [0u8; SHARD_HEADER_LEN];
    let take = (file_len as usize).min(SHARD_HEADER_LEN);
    std::io::Read::read_exact(&mut file, &mut buf[..take]).map_err(io)?;
    let header = ShardHeader::from_bytes(path, &buf[..take])?;
    let expected = header.expected_len() as u64;
    if file_len != expected {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            detail: format!("shard payload (header implies {expected} bytes, file has {file_len})"),
        });
    }
    Ok(header)
}

/// An in-memory shard being built: rows + vectors + posting lists.
/// Serialize with [`ShardData::save`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardData {
    /// Position of this shard in its set.
    pub shard_id: u32,
    /// First frame this shard owns (inclusive).
    pub frame_start: u32,
    /// Last frame this shard owns (inclusive).
    pub frame_end: u32,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Window rows, in enumeration order.
    pub rows: Vec<StoreRow>,
    /// Flat row-major vectors (`rows.len() × dim`).
    pub vectors: Vec<f32>,
    /// Posting lists against the shared quantizer: `lists[c]` holds the
    /// local row ids assigned to centroid `c`. Every row appears exactly
    /// once across all lists.
    pub lists: Vec<Vec<u32>>,
}

impl ShardData {
    fn header(&self) -> ShardHeader {
        ShardHeader {
            shard_id: self.shard_id,
            frame_start: self.frame_start,
            frame_end: self.frame_end,
            rows: self.rows.len() as u32,
            dim: self.dim as u32,
            nlist: self.lists.len() as u32,
        }
    }

    /// Serializes the shard to its binary layout (see module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = self.header();
        let off = header.offsets();
        let mut out = Vec::with_capacity(off.total);
        out.extend_from_slice(&header.to_bytes());
        for r in &self.rows {
            out.extend_from_slice(&r.track_id.to_le_bytes());
        }
        for r in &self.rows {
            out.extend_from_slice(&r.start.to_le_bytes());
        }
        for r in &self.rows {
            out.extend_from_slice(&r.end.to_le_bytes());
        }
        for r in &self.rows {
            out.push(class_code(r.class));
        }
        out.resize(off.list_lens, 0);
        for list in &self.lists {
            out.extend_from_slice(&(list.len() as u32).to_le_bytes());
        }
        for list in &self.lists {
            for &row in list {
                out.extend_from_slice(&row.to_le_bytes());
            }
        }
        debug_assert_eq!(out.len(), off.vectors);
        for &v in &self.vectors {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut h = Fnv64::new();
        h.write(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        debug_assert_eq!(out.len(), off.total);
        out
    }

    /// Writes the shard to `path` (atomically: temp file + rename) and
    /// returns its checksum for the manifest.
    pub fn save(&self, path: &Path) -> Result<u64, StoreError> {
        let io = |source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io)?;
            }
        }
        let bytes = self.to_bytes();
        let checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)?;
        Ok(checksum)
    }
}

/// A shard faulted into memory: the mapping plus decoded metadata
/// columns and posting lists. The vector column stays in the mapping
/// (zero-copy) on little-endian hosts with an aligned base; otherwise it
/// is decoded once into `vectors_owned`.
#[derive(Debug)]
pub struct LoadedShard {
    path: PathBuf,
    map: Mmap,
    header: ShardHeader,
    track_ids: Vec<TrackId>,
    classes: Vec<ObjectClass>,
    starts: Vec<u32>,
    ends: Vec<u32>,
    lists: Vec<Vec<u32>>,
    vectors_off: usize,
    vectors_owned: Option<Vec<f32>>,
}

impl LoadedShard {
    /// Maps `path`, verifies its full checksum (this is the deferred
    /// integrity pass — a flipped byte anywhere in the file fails here,
    /// naming the shard), optionally cross-checks the checksum recorded
    /// in the manifest, and decodes the metadata columns.
    pub fn open(path: &Path, manifest_checksum: Option<u64>) -> Result<Self, StoreError> {
        let map = Mmap::open(path).map_err(|source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let header = ShardHeader::from_bytes(path, &map)?;
        let off = header.offsets();
        if map.len() != off.total {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                detail: format!(
                    "shard payload (header implies {} bytes, file has {})",
                    off.total,
                    map.len()
                ),
            });
        }
        let payload = &map[..off.total - 8];
        let stored = u64::from_le_bytes(map[off.total - 8..].try_into().unwrap());
        let mut h = Fnv64::new();
        h.write(payload);
        let found = h.finish();
        if found != stored {
            return Err(StoreError::ChecksumMismatch {
                path: path.to_path_buf(),
                expected: stored,
                found,
            });
        }
        if let Some(expected) = manifest_checksum {
            if expected != stored {
                return Err(StoreError::BadHeader {
                    path: path.to_path_buf(),
                    detail: format!(
                        "shard checksum {stored:#018x} does not match manifest {expected:#018x}"
                    ),
                });
            }
        }

        let n = header.rows as usize;
        let u32s = |at: usize, count: usize| -> Vec<u32> {
            (0..count)
                .map(|i| {
                    let o = at + i * 4;
                    u32::from_le_bytes(map[o..o + 4].try_into().unwrap())
                })
                .collect()
        };
        let track_ids: Vec<TrackId> = (0..n)
            .map(|i| {
                let o = off.track_ids + i * 8;
                u64::from_le_bytes(map[o..o + 8].try_into().unwrap())
            })
            .collect();
        let starts = u32s(off.starts, n);
        let ends = u32s(off.ends, n);
        let mut classes = Vec::with_capacity(n);
        for i in 0..n {
            let code = map[off.classes + i];
            classes.push(class_from_code(code).ok_or(StoreError::BadClass {
                path: path.to_path_buf(),
                code,
            })?);
        }
        let lens = u32s(off.list_lens, header.nlist as usize);
        let mut lists = Vec::with_capacity(header.nlist as usize);
        let mut cursor = off.list_rows;
        let mut assigned = 0usize;
        for &len in &lens {
            let len = len as usize;
            assigned += len;
            if assigned > n {
                return Err(StoreError::BadHeader {
                    path: path.to_path_buf(),
                    detail: format!("posting lists assign {assigned} rows but shard has {n}"),
                });
            }
            lists.push(u32s(cursor, len));
            cursor += len * 4;
        }
        if assigned != n {
            return Err(StoreError::BadHeader {
                path: path.to_path_buf(),
                detail: format!("posting lists assign {assigned} rows but shard has {n}"),
            });
        }
        for list in &lists {
            if list.iter().any(|&r| r as usize >= n) {
                return Err(StoreError::BadHeader {
                    path: path.to_path_buf(),
                    detail: "posting list references a row beyond the shard".into(),
                });
            }
        }

        // Zero-copy vector column where bit layout allows; decode once
        // otherwise. Either way `vector(i)` returns the same bits.
        let zero_copy = cfg!(target_endian = "little")
            && (map.as_ptr() as usize + off.vectors).is_multiple_of(std::mem::align_of::<f32>());
        let vectors_owned = if zero_copy {
            None
        } else {
            Some(
                (0..n * header.dim as usize)
                    .map(|i| {
                        let o = off.vectors + i * 4;
                        f32::from_bits(u32::from_le_bytes(map[o..o + 4].try_into().unwrap()))
                    })
                    .collect(),
            )
        };

        Ok(LoadedShard {
            path: path.to_path_buf(),
            map,
            header,
            track_ids,
            classes,
            starts,
            ends,
            lists,
            vectors_off: off.vectors,
            vectors_owned,
        })
    }

    /// The shard's header.
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// The file this shard was loaded from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.track_ids.len()
    }

    /// Whether the shard holds no rows.
    pub fn is_empty(&self) -> bool {
        self.track_ids.is_empty()
    }

    /// Metadata of local row `i`.
    pub fn row(&self, i: usize) -> StoreRow {
        StoreRow {
            track_id: self.track_ids[i],
            class: self.classes[i],
            start: self.starts[i],
            end: self.ends[i],
        }
    }

    /// Vector of local row `i`, bit-identical to what was ingested.
    pub fn vector(&self, i: usize) -> &[f32] {
        let dim = self.header.dim as usize;
        match &self.vectors_owned {
            Some(v) => &v[i * dim..(i + 1) * dim],
            None => {
                let start = self.vectors_off + i * dim * 4;
                let bytes = &self.map[start..start + dim * 4];
                // SAFETY: offset alignment was checked at load (the
                // owned fallback handles the misaligned case), the range
                // is in bounds, and f32 has no invalid bit patterns.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f32, dim) }
            }
        }
    }

    /// Local row ids assigned to centroid `c` (empty when `c` is out of
    /// range — a shard never has rows for a centroid it never saw).
    pub fn list(&self, c: usize) -> &[u32] {
        self.lists.get(c).map_or(&[], Vec::as_slice)
    }

    /// Bytes this shard keeps resident (the mapping itself).
    pub fn bytes(&self) -> usize {
        self.map.len()
    }

    /// Whether the shard payload is memory-mapped (vs owned fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_shard() -> ShardData {
        let rows = vec![
            StoreRow {
                track_id: 7,
                class: ObjectClass::Car,
                start: 0,
                end: 89,
            },
            StoreRow {
                track_id: u64::MAX,
                class: ObjectClass::Any,
                start: 30,
                end: 119,
            },
            StoreRow {
                track_id: 9,
                class: ObjectClass::Person,
                start: 60,
                end: 149,
            },
        ];
        ShardData {
            shard_id: 2,
            frame_start: 0,
            frame_end: 149,
            dim: 3,
            rows,
            vectors: vec![
                0.5,
                -1.0,
                f32::MIN_POSITIVE,
                -0.0,
                3.25,
                1.0e-38,
                0.1,
                0.2,
                0.3,
            ],
            lists: vec![vec![1], vec![], vec![0, 2]],
        }
    }

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "skql-shard-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let shard = sample_shard();
        let path = temp_dir().join("rt.skshard");
        let checksum = shard.save(&path).unwrap();

        let header = read_shard_header(&path).unwrap();
        assert_eq!(header.shard_id, 2);
        assert_eq!(header.rows, 3);
        assert_eq!(header.nlist, 3);

        let loaded = LoadedShard::open(&path, Some(checksum)).unwrap();
        assert_eq!(loaded.len(), 3);
        for (i, row) in shard.rows.iter().enumerate() {
            assert_eq!(loaded.row(i), *row);
            let want: Vec<u32> = shard.vectors[i * 3..(i + 1) * 3]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let got: Vec<u32> = loaded.vector(i).iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "row {i}");
        }
        for c in 0..3 {
            assert_eq!(loaded.list(c), shard.lists[c].as_slice());
        }
        assert!(loaded.list(99).is_empty());
    }

    #[test]
    fn every_flipped_byte_fails_loudly_with_the_path() {
        let shard = sample_shard();
        let dir = temp_dir();
        let good = shard.to_bytes();
        // Flip every byte of the file, one at a time: each corruption
        // must be rejected (magic/version/size/checksum/class — any
        // loud error will do) and the error must name the shard file.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            let path = dir.join("flip.skshard");
            std::fs::write(&path, &bad).unwrap();
            let err = LoadedShard::open(&path, None)
                .err()
                .unwrap_or_else(|| panic!("flipped byte {i} was accepted"));
            assert!(
                err.to_string().contains("flip.skshard"),
                "error for byte {i} does not name the shard: {err}"
            );
        }
    }

    #[test]
    fn truncation_is_detected_by_header_validation_alone() {
        let shard = sample_shard();
        let bytes = shard.to_bytes();
        let dir = temp_dir();
        let path = dir.join("trunc.skshard");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = read_shard_header(&path).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }), "{err}");
        assert!(err.to_string().contains("trunc.skshard"));
    }

    #[test]
    fn manifest_checksum_mismatch_is_rejected() {
        let shard = sample_shard();
        let path = temp_dir().join("manifest.skshard");
        let checksum = shard.save(&path).unwrap();
        let err = LoadedShard::open(&path, Some(checksum ^ 1)).unwrap_err();
        assert!(err.to_string().contains("manifest"), "{err}");
    }

    #[test]
    fn empty_shard_round_trips() {
        let shard = ShardData {
            shard_id: 0,
            frame_start: 0,
            frame_end: 0,
            dim: 4,
            rows: Vec::new(),
            vectors: Vec::new(),
            lists: vec![Vec::new(); 5],
        };
        let path = temp_dir().join("empty.skshard");
        shard.save(&path).unwrap();
        let loaded = LoadedShard::open(&path, None).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.header().nlist, 5);
    }

    #[test]
    fn posting_list_overflow_is_rejected() {
        // A list-length column claiming more rows than the shard has
        // must not pass validation even when the checksum is restamped
        // to be consistent with the damage.
        let shard = sample_shard();
        let mut bytes = shard.to_bytes();
        // list_lens starts after the padded metadata columns: n=3 rows.
        let n = 3usize;
        let unpadded = SHARD_HEADER_LEN + n * 8 + n * 4 + n * 4 + n;
        let list_lens = unpadded + (4 - unpadded % 4) % 4;
        bytes[list_lens..list_lens + 4].copy_from_slice(&3u32.to_le_bytes()); // was 1
        let payload = bytes.len() - 8;
        let mut h = Fnv64::new();
        h.write(&bytes[..payload]);
        let sum = h.finish().to_le_bytes();
        bytes[payload..].copy_from_slice(&sum);
        let path = temp_dir().join("overflow.skshard");
        std::fs::write(&path, &bytes).unwrap();
        let err = LoadedShard::open(&path, None).unwrap_err();
        assert!(err.to_string().contains("posting lists"), "{err}");
    }
}
