//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde-shaped serialization layer: data structures
//! convert to and from a JSON-like [`Value`] tree, and
//! `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` proc-macro (re-exported here, as upstream does).
//!
//! The surface intentionally covers only what this workspace uses:
//! structs with named fields, tuple structs, enums with unit / tuple /
//! struct variants, the std containers below, and JSON round-trips via
//! the sibling `serde_json` shim. It is not wire-compatible with real
//! serde_json output for every corner case (e.g. non-finite floats
//! serialize as `null`), but it is self-consistent, which is what the
//! persistence layer and tests require.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers are exact up to 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, in insertion order.
    Obj(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error describing an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        };
        DeError(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null; restore NaN for
                    // float targets, reject for integers.
                    Value::Null if <$t>::ALLOWS_NULL => Ok(<$t>::NULL_VALUE),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

/// Internal: which numeric types accept `null` (as NaN) when deserializing.
trait NumNull {
    const ALLOWS_NULL: bool;
    const NULL_VALUE: Self;
}

macro_rules! impl_num_null {
    (int: $($t:ty),*) => {$(
        impl NumNull for $t {
            const ALLOWS_NULL: bool = false;
            const NULL_VALUE: Self = 0;
        }
    )*};
    (float: $($t:ty),*) => {$(
        impl NumNull for $t {
            const ALLOWS_NULL: bool = true;
            const NULL_VALUE: Self = <$t>::NAN;
        }
    )*};
}

impl_num_null!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl_num_null!(float: f32, f64);
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => {
                        let expect = [$(stringify!($n)),+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected {expect}-tuple, got array of {}", items.len())));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

/// Map keys convertible to/from JSON object keys (strings). Mirrors
/// `serde_json`'s stringification of integer map keys.
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse::<$t>()
                    .map_err(|_| DeError(format!("invalid integer map key {key:?}")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

/// Support code referenced by `serde_derive` expansions; not public API.
pub mod __private {
    use super::{DeError, Value};

    /// Looks up a field in an object's entry list.
    pub fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError(format!("missing field {key:?}")))
    }

    /// Unwraps an object value or errors.
    pub fn as_obj<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
        match v {
            Value::Obj(fields) => Ok(fields),
            other => Err(DeError::expected(ty, other)),
        }
    }

    /// Unwraps an array value or errors.
    pub fn as_arr<'a>(v: &'a Value, ty: &str) -> Result<&'a [Value], DeError> {
        match v {
            Value::Arr(items) => Ok(items),
            other => Err(DeError::expected(ty, other)),
        }
    }
}
