//! Exporters: JSON snapshot, Prometheus text format, and a
//! human-readable table for query reports.

use crate::flight::QueryTrace;
use crate::metrics::MetricsSnapshot;
use crate::report::QueryReport;
use crate::trace::format_trace_id;
use std::fmt::Write;

/// Serializes the full metric registry as a JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
///
/// With telemetry disabled this returns the same shape with empty maps —
/// still valid JSON, so downstream consumers need no special case.
pub fn snapshot_json() -> String {
    publish_process_gauges();
    let snap = MetricsSnapshot::capture();
    let mut out = String::new();
    out.push_str("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), v);
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), json_number(*v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{{\"buckets\":[", json_string(name));
        for (j, (bound, count)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", json_number(*bound), count);
        }
        let _ = write!(
            out,
            "],\"sum\":{},\"count\":{}}}",
            json_number(h.sum),
            h.count
        );
    }
    out.push_str("}}");
    out
}

/// Refreshes the process-level resource gauges from the counting
/// allocator so every export carries current numbers. No-op (gauges
/// stay 0 and are absent from the registry) when telemetry is disabled.
fn publish_process_gauges() {
    #[cfg(feature = "enabled")]
    {
        let (bytes, count) = crate::alloc::process_allocated();
        crate::metrics::gauge(crate::names::RESOURCE_PROCESS_ALLOC_BYTES).set(bytes as f64);
        crate::metrics::gauge(crate::names::RESOURCE_PROCESS_ALLOC_COUNT).set(count as f64);
    }
}

/// One-line `# HELP` text for a metric family, keyed by the dotted
/// (unsanitized) name. Families without a curated line get a generic
/// one so the exposition is still well-formed.
fn prom_help(name: &str) -> &'static str {
    use crate::names;
    match name {
        names::RESOURCE_ALLOC_BYTES => "Heap bytes attributed to finalized query traces.",
        names::RESOURCE_ALLOC_COUNT => "Heap allocations attributed to finalized query traces.",
        names::RESOURCE_CPU_NANOS => "CPU nanoseconds attributed to finalized query traces.",
        names::RESOURCE_QUERY_ALLOC_KB => "Per-query attributed heap allocation, KiB.",
        names::RESOURCE_QUERY_CPU_MS => "Per-query attributed CPU time, milliseconds.",
        names::RESOURCE_PROCESS_ALLOC_BYTES => {
            "Cumulative heap bytes allocated by the process (not live heap)."
        }
        names::RESOURCE_PROCESS_ALLOC_COUNT => "Cumulative heap allocations by the process.",
        names::RESOURCE_PROFILE_SAMPLES => "Sampling ticks taken by the cooperative profiler.",
        names::SERVER_QUEUE_DEPTH => "Queries waiting in the admission queue.",
        names::SERVER_IN_FLIGHT => "Queries currently executing on workers.",
        names::SERVER_QUEUE_WAIT_MS => "Milliseconds queries waited in the admission queue.",
        names::SERVER_EXECUTE_MS => "Milliseconds queries spent executing on a worker.",
        names::SERVER_DEADLINE_MARGIN_MS => {
            "Milliseconds between query completion and its deadline (negative = late)."
        }
        names::WINDOW_SCORE => "Similarity score of each scored window.",
        names::EMBED_BATCH_SIZE => "Clips per batched encoder forward pass.",
        names::TRAINING_STEP_MS => "Per-training-step wall time, milliseconds.",
        names::SERVER_FUSED_BATCH => "Queries fused into one shared engine scan.",
        names::STORE_PROBE_ROWS => "Rows returned per ANN probe.",
        names::SHARD_RESIDENT => "Shards currently resident across attached shard sets.",
        names::SHARD_LOADS => "Shard files faulted in on first probe.",
        names::SHARD_LOAD_ERRORS => "Shard loads that failed (corrupt or unreadable shards).",
        names::SHARD_PROBES => "Shards consulted (loaded and gathered) by probes.",
        names::SHARD_SKIPPED => "Shards skipped by probes via manifest list counts.",
        names::SHARD_BYTES_MAPPED => "Bytes of shard payload currently memory-mapped.",
        _ => "SketchQL metric; see the names module in crates/telemetry.",
    }
}

/// Serializes the full metric registry in Prometheus text exposition
/// format. Dotted metric names are sanitized to underscores; each
/// family gets one `# HELP` and one `# TYPE` line; histogram buckets
/// use cumulative `le` labels, ending with `le="+Inf"`.
pub fn snapshot_prometheus() -> String {
    publish_process_gauges();
    let snap = MetricsSnapshot::capture();
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let help = prom_help(name);
        let name = prom_name(name);
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let help = prom_help(name);
        let name = prom_name(name);
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", prom_number(*v));
    }
    for (name, h) in &snap.histograms {
        let help = prom_help(name);
        let name = prom_name(name);
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (bound, count) in &h.buckets {
            let le = if bound.is_infinite() {
                "+Inf".to_string()
            } else {
                prom_number(*bound)
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {count}");
        }
        let _ = writeln!(out, "{name}_sum {}", prom_number(h.sum));
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

impl QueryReport {
    /// Serializes this report as one JSON object (valid JSON whether or
    /// not telemetry was enabled when it was recorded).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"label\":{}", json_string(&self.label));
        if self.trace_id != 0 {
            let _ = write!(
                out,
                ",\"trace_id\":{}",
                json_string(&format_trace_id(self.trace_id))
            );
        }
        for (name, v) in self.counter_values() {
            let _ = write!(out, ",{}:{}", json_string(name), v);
        }
        if let Some(rate) = self.embed_cache_hit_rate() {
            let _ = write!(out, ",\"embed_cache_hit_rate\":{}", json_number(rate));
        }
        let _ = write!(out, ",\"total_nanos\":{}", self.total_nanos);
        let _ = write!(
            out,
            ",\"alloc_bytes\":{},\"alloc_count\":{},\"cpu_nanos\":{}",
            self.alloc_bytes, self.alloc_count, self.cpu_nanos
        );
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"depth\":{},\"nanos\":{}}}",
                json_string(s.name),
                s.depth,
                s.nanos
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders this report as an aligned, human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "query report: {}", self.label);
        if self.trace_id != 0 {
            let _ = writeln!(out, "  trace id: {}", format_trace_id(self.trace_id));
        }
        let _ = writeln!(
            out,
            "  total wall time: {:.3} ms",
            self.total_nanos as f64 / 1e6
        );
        if self.cpu_nanos > 0 {
            let pct = if self.total_nanos > 0 {
                100.0 * self.cpu_nanos as f64 / self.total_nanos as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  cpu time: {:.3} ms ({pct:.0}% of wall)",
                self.cpu_nanos as f64 / 1e6
            );
        }
        if self.alloc_count > 0 {
            let _ = writeln!(
                out,
                "  allocated: {:.1} KiB in {} allocations",
                self.alloc_bytes as f64 / 1024.0,
                self.alloc_count
            );
        }
        let stages = self.stages();
        if !stages.is_empty() {
            let _ = writeln!(out, "  stages:");
            let width = stages.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, nanos) in &stages {
                let ms = *nanos as f64 / 1e6;
                let pct = if self.total_nanos > 0 {
                    100.0 * *nanos as f64 / self.total_nanos as f64
                } else {
                    0.0
                };
                let _ = writeln!(out, "    {name:<width$}  {ms:>10.3} ms  {pct:>5.1}%");
            }
        }
        let _ = writeln!(out, "  counters:");
        let width = self
            .counter_values()
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        for (name, v) in self.counter_values() {
            let _ = writeln!(out, "    {name:<width$}  {v:>12}");
        }
        if let Some(rate) = self.embed_cache_hit_rate() {
            let _ = writeln!(out, "  embed cache hit rate: {:.1}%", rate * 100.0);
        }
        out
    }
}

impl QueryTrace {
    /// Serializes this trace as one JSON object — the slow-query log
    /// line format. Span `start` offsets are nanoseconds relative to
    /// the trace start, so each line is a self-contained waterfall:
    ///
    /// ```json
    /// {"trace_id":"00a1b2c3d4e5","label":"traffic/left_turn",
    ///  "outcome":"completed","batch_size":1,"total_nanos":1234567,
    ///  "alloc_bytes":52480,"alloc_count":120,"cpu_nanos":1100000,
    ///  "spans":[{"name":"sketchql.server.queue_wait","depth":0,
    ///            "start_nanos":0,"nanos":2000}, ...]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"label\":{},\"outcome\":{},\"batch_size\":{},\"total_nanos\":{}",
            json_string(&format_trace_id(self.trace_id)),
            json_string(&self.label),
            json_string(self.outcome.as_str()),
            self.batch_size,
            self.total_nanos
        );
        let _ = write!(
            out,
            ",\"alloc_bytes\":{},\"alloc_count\":{},\"cpu_nanos\":{}",
            self.alloc_bytes, self.alloc_count, self.cpu_nanos
        );
        out.push_str(",\"spans\":[");
        for (i, (name, depth, offset, nanos)) in self.waterfall().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"depth\":{},\"start_nanos\":{},\"nanos\":{}}}",
                json_string(name),
                depth,
                offset,
                nanos
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

/// Formats an `f64` for Prometheus text format.
fn prom_number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Sanitizes a dotted metric name for Prometheus.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}
