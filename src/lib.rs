//! Shared helpers for the SketchQL examples, integration tests, and the
//! experiment harness: a cached demo model and canonical demo videos, so
//! every binary does not retrain/regenerate from scratch.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::training::{TrainedModel, TrainingConfig};
use sketchql_datasets::{generate_video, SceneFamily, SyntheticVideo, VideoConfig};
use std::path::PathBuf;

/// Directory used to cache trained models and other artifacts.
pub fn cache_dir() -> PathBuf {
    std::env::var_os("SKETCHQL_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/sketchql-cache"))
}

/// Loads (or trains and caches) the small demo model shared by examples
/// and experiments.
pub fn demo_model() -> TrainedModel {
    let path = cache_dir().join("model_default.json");
    TrainedModel::load_or_train(&path, TrainingConfig::default())
}

/// Generates the canonical demo surveillance video for a family and seed:
/// two occurrences of every event kind plus distractor traffic.
pub fn demo_video(family: SceneFamily, seed: u64) -> SyntheticVideo {
    let cfg = VideoConfig::standard(family);
    generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed))
}

/// Formats one fixed-width table row (experiment output).
pub fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}", w = w))
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_video_is_deterministic() {
        let a = demo_video(SceneFamily::ParkingLot, 3);
        let b = demo_video(SceneFamily::ParkingLot, 3);
        assert_eq!(a.events, b.events);
        assert_eq!(a.name, "parking_lot_3");
    }

    #[test]
    fn fmt_row_pads() {
        let r = fmt_row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "a   | bb  ");
    }
}
