//! Shard-tier bench — cold attach vs monolithic full load, parallel vs
//! single-thread sharded ingest, and recall parity with the monolithic
//! store (`scripts/bench_shard.sh` gates the numbers).
//!
//! Before timing anything, the bench asserts the hard invariant: with
//! exhaustive probing the sharded path, the monolithic store path, and
//! the full scan return identical moments with bit-identical scores.
//!
//! Besides the usual `BENCH` lines this prints two `SHARD` lines:
//!
//! ```text
//! SHARD shard_recall sharded_recall_at_10=1.000 monolithic_recall_at_10=1.000 queries=4 shards=6
//! SHARD shard_ingest single_thread_ns=123 multi_thread_ns=61 threads=4 cpus=4
//! ```

use sketchql::{
    ingest, ingest_sharded, CancelToken, IngestConfig, Matcher, MatcherConfig, RetrievedMoment,
    ShardSet, VideoIndex,
};
use sketchql_bench::harness::Harness;
use sketchql_bench::{bench_model, bench_video};
use sketchql_datasets::{query_clip, EventKind};
use std::hint::black_box;
use std::path::PathBuf;

/// Single-object query kinds (multi-object sketches always fall back).
const QUERIES: &[EventKind] = &[
    EventKind::LeftTurn,
    EventKind::StopAndGo,
    EventKind::LaneChange,
    EventKind::UTurn,
];

fn key(m: &RetrievedMoment) -> (u32, u32, Vec<u64>) {
    (m.start, m.end, m.track_ids.clone())
}

fn recall_at_10(got: &[RetrievedMoment], scan: &[RetrievedMoment]) -> (usize, usize) {
    let top: Vec<_> = scan.iter().take(10).map(key).collect();
    let hits = top
        .iter()
        .filter(|k| got.iter().take(10).any(|m| &key(m) == *k))
        .count();
    (hits, top.len())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skql-bench-shard-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn main() {
    println!(
        "# shard benches (telemetry feature: {})",
        if cfg!(feature = "telemetry") {
            "on"
        } else {
            "off"
        }
    );
    let quick = std::env::var_os("SKETCHQL_BENCH_QUICK").is_some();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let model = bench_model();
    let video = bench_video(if quick { 1 } else { 2 }, 47);
    let index = VideoIndex::from_truth(&video);
    let m = Matcher::with_config(model.similarity(), MatcherConfig::default());

    let spans: Vec<u32> = QUERIES.iter().map(|&k| query_clip(k).span()).collect();
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &spans);
    // Shard width chosen so the fixture splits into a handful of shards.
    let shard_frames = (index.frames / 6).max(1);

    // Timed ingest: single-thread, then one worker per CPU. Embeddings
    // are deterministic, so both runs write byte-identical sets.
    let work = temp_dir("sets");
    let mut single_cfg = ingest_cfg.clone();
    single_cfg.threads = 1;
    let started = std::time::Instant::now();
    ingest_sharded(
        &m.sim,
        &index,
        "bench",
        &single_cfg,
        shard_frames,
        &work.join("single.skset"),
        &|_| {},
    )
    .expect("single-thread sharded ingest");
    let single_ns = started.elapsed().as_nanos();

    let mut multi_cfg = ingest_cfg.clone();
    multi_cfg.threads = cpus;
    let started = std::time::Instant::now();
    let set = ingest_sharded(
        &m.sim,
        &index,
        "bench",
        &multi_cfg,
        shard_frames,
        &work.join("multi.skset"),
        &|_| {},
    )
    .expect("parallel sharded ingest");
    let multi_ns = started.elapsed().as_nanos();
    let shard_dir = work.join("multi.skset");
    let shards = set.shard_count();
    drop(set);
    println!("SHARD shard_ingest single_thread_ns={single_ns} multi_thread_ns={multi_ns} threads={cpus} cpus={cpus}");

    // The monolithic reference, persisted so both cold paths read disk.
    let mut mono = ingest(&m.sim, &index, "bench", &ingest_cfg);
    let mono_path = work.join("bench.skstore");
    mono.save(&mono_path).expect("save monolithic store");

    // Hard invariant first: exhaustive probing makes all three paths
    // identical, moments and score bits alike.
    mono.nprobe = mono.nlist();
    let mut set = ShardSet::open(&shard_dir).expect("attach shard set");
    set.nprobe = set.nlist();
    let mut sharded_hits = 0usize;
    let mut mono_hits = 0usize;
    let mut total = 0usize;
    for &kind in QUERIES {
        let query = query_clip(kind);
        let scan = m.search(&index, &query).expect("scan");
        let via_mono = m
            .search_with_store(&index, &mono, &query, &CancelToken::none())
            .expect("monolithic search");
        let via_shards = m
            .search_with_shards(&index, &set, &query, &CancelToken::none())
            .expect("sharded search");
        assert!(
            via_mono.from_store && via_shards.from_store,
            "{kind:?} fell back"
        );
        assert_eq!(
            via_shards.moments, scan,
            "{kind:?}: sharded path diverged from the scan"
        );
        assert_eq!(
            via_shards.moments, via_mono.moments,
            "{kind:?}: sharded path diverged from the monolithic store"
        );
        for (a, b) in via_shards.moments.iter().zip(&scan) {
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{kind:?}: score bits drifted"
            );
        }
        let (h, t) = recall_at_10(&via_shards.moments, &scan);
        sharded_hits += h;
        total += t;
        mono_hits += recall_at_10(&via_mono.moments, &scan).0;
    }
    let sharded_recall = sharded_hits as f64 / total.max(1) as f64;
    let mono_recall = mono_hits as f64 / total.max(1) as f64;
    println!(
        "SHARD shard_recall sharded_recall_at_10={sharded_recall:.3} \
         monolithic_recall_at_10={mono_recall:.3} queries={} shards={shards}",
        QUERIES.len()
    );

    // Cold-start comparison: sharded attach reads the manifest and one
    // 64-byte header per shard; the monolithic full load reads, checks,
    // and indexes the whole payload.
    let mut h = Harness::from_env();
    let mut group = h.group("shard_attach");
    group.sample_size(20);
    group.bench("attach_sharded", |b| {
        b.iter(|| black_box(ShardSet::open(black_box(&shard_dir)).expect("attach")))
    });
    group.bench("full_load_monolithic", |b| {
        b.iter(|| {
            black_box(sketchql::DatasetStore::open(black_box(&mono_path)).expect("full load"))
        })
    });
    group.finish();

    std::fs::remove_dir_all(&work).ok();
}
