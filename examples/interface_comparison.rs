//! The paper's motivating comparison (§1): three ways to ask for the same
//! events — a hand-written rule over low-level primitives (the SQL-style
//! interface), a classical trajectory distance, and a SketchQL sketch —
//! on the same videos.
//!
//! The point the demo paper makes: rules *can* work but demand expert
//! effort per query (count the tuned thresholds below), while a sketch is
//! one drag gesture and generalizes zero-shot.
//!
//! ```text
//! cargo run --release --example interface_comparison
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::{
    evaluate_rule, expert_rule, ClassicalSimilarity, Matcher, Predicate, RuleSearchConfig,
    VideoIndex,
};
use sketchql_datasets::{
    evaluate_retrieval, generate_video, query_clip, EventKind, PredictedMoment, SceneFamily,
    VideoConfig,
};
use sketchql_trajectory::DistanceKind;

/// Counts the hand-tuned numeric thresholds in a rule (specification
/// effort proxy).
fn count_thresholds(p: &Predicate) -> usize {
    match p {
        Predicate::Not(inner) => count_thresholds(inner),
        Predicate::All(ps) | Predicate::Any(ps) => ps.iter().map(count_thresholds).sum(),
        Predicate::NetTurningDeg { .. } | Predicate::WiggleRatio { .. } => 2,
        _ => 1,
    }
}

fn main() {
    let model = sketchql_suite::demo_model();
    let videos: Vec<_> = [501u64, 502]
        .iter()
        .map(|&s| {
            generate_video(
                VideoConfig::standard(SceneFamily::UrbanIntersection),
                s,
                &mut StdRng::seed_from_u64(s),
            )
        })
        .collect();
    let indexes: Vec<_> = videos.iter().map(VideoIndex::from_truth).collect();

    println!(
        "{:<24} | {:>8} | {:>8} | {:>8} | rule spec effort",
        "query", "sketch", "dtw", "rules"
    );
    println!("{}", "-".repeat(80));
    for &kind in EventKind::ALL {
        let query = query_clip(kind);
        let rule = expert_rule(kind);
        let mut ap = [0.0f32; 3];
        for (v, idx) in videos.iter().zip(&indexes) {
            let truth = v.events_of(kind);
            let eval = |results: &[sketchql::RetrievedMoment]| {
                let preds: Vec<PredictedMoment> = results
                    .iter()
                    .map(|m| PredictedMoment {
                        start: m.start,
                        end: m.end,
                        score: m.score,
                    })
                    .collect();
                evaluate_retrieval(&preds, &truth).average_precision
            };
            ap[0] += eval(
                &Matcher::new(model.similarity())
                    .search(idx, &query)
                    .expect("event queries embed"),
            );
            ap[1] += eval(
                &Matcher::new(ClassicalSimilarity::new(DistanceKind::Dtw))
                    .search(idx, &query)
                    .expect("classical prepare is infallible"),
            );
            ap[2] += eval(&evaluate_rule(idx, &rule, &RuleSearchConfig::default()));
        }
        let n = videos.len() as f32;
        let thresholds: usize = rule
            .objects
            .iter()
            .map(|(_, p)| count_thresholds(p))
            .sum::<usize>()
            + rule.relations.len() * 2;
        println!(
            "{:<24} | {:>8.2} | {:>8.2} | {:>8.2} | {} tuned thresholds, {} relations",
            kind.name(),
            ap[0] / n,
            ap[1] / n,
            ap[2] / n,
            thresholds,
            rule.relations.len()
        );
    }
    println!("\n(metric: average precision over 2 videos, oracle tracks. A sketch is one");
    println!(" gesture; every rule needed its thresholds hand-tuned per event kind.)");
}
