//! The query engine: a fixed worker pool behind a bounded admission queue.
//!
//! [`Engine::start`] takes ownership of a trained model and a set of named
//! [`VideoIndex`]es and spawns `workers` threads. Queries enter through
//! [`Engine::submit`] (non-blocking admission) or [`Engine::execute`]
//! (submit + wait). Admission is strict: a full queue returns
//! [`EngineError::Overloaded`] immediately — the queue never grows beyond
//! [`EngineConfig::queue_depth`], so an overloaded engine sheds load
//! instead of accumulating unbounded latency.
//!
//! ## Scheduling policy
//!
//! Admission and ordering are governed by an explicit [`SchedPolicy`]:
//!
//! - **Admission classes**: every query resolves to a named class
//!   (undeclared wire classes collapse into `"default"`, keeping the
//!   class set — and stats/metric cardinality — fixed at start). A class
//!   can carry a queue quota (its own slice of the admission queue,
//!   rejected with [`EngineError::Overloaded`]) and a token-bucket rate
//!   limit (rejected with [`EngineError::RateLimited`]), so one noisy
//!   tenant can't crowd out the rest.
//! - **Priority with starvation protection**: under
//!   [`SchedMode::Deadline`] workers dequeue the highest *effective*
//!   priority — the class/query base priority plus one promotion credit
//!   per [`SchedPolicy::aging_ms`] waited — with earliest-deadline-first
//!   tie-breaks and FIFO order after that. Aging bounds starvation: any
//!   query's effective priority eventually passes any fixed base.
//!   [`SchedMode::Fifo`] preserves strict arrival order (the pre-policy
//!   engine behavior; admission classes still apply).
//!
//! ## Deadlines and cancellation
//!
//! Every admitted query carries a [`CancelToken`]. Its deadline is the
//! per-query deadline if given, else [`EngineConfig::default_deadline`].
//! The token is checked when the query leaves the queue (a query whose
//! deadline passed while waiting is answered
//! [`EngineError::DeadlineExceeded`] without running) and polled
//! cooperatively inside the Matcher's scan, so a deadline that trips
//! mid-search aborts the remaining work promptly. Callers can also cancel
//! explicitly through the [`QueryHandle`].
//!
//! ## Shared-scan fusion
//!
//! When a worker dequeues a query it also drains up to
//! [`EngineConfig::fused_batch`] − 1 queued queries against the *same*
//! dataset and executes them as one fused
//! [`Matcher::search_batch`] call: candidate-segment embeddings depend
//! only on `(index, model, tracks, frame range)`, not on the query, so
//! the fused batch shares one embedding cache and one batched encoder
//! pass. Per-query results are bit-identical to running each query alone
//! (see the core matcher tests), so fusion changes throughput, never
//! answers. `fused_batch` defaults to the worker count: a 1-worker engine
//! executes query-at-a-time, an 8-worker engine amortizes encoder work
//! across up to 8 concurrent queries — which is what makes a wider pool
//! faster even on a single core.
//!
//! Batch formation is deadline-aware under [`SchedMode::Deadline`]: a
//! queued peer with a deadline joins a batch only if its remaining
//! margin covers the dataset's estimated scan time (the running mean of
//! the same per-dataset execute-stage observations that feed the
//! `sketchql.server.execute_ms` histogram), so a tight-deadline query is
//! never fused into a scan it can't survive. The shared scan runs under
//! a batch token whose deadline is the *latest* member deadline (the
//! last instant any member still wants the result); a dedicated deadline
//! monitor polls every member's own token while the scan runs, answering
//! a member whose tighter deadline expires (or that is cancelled)
//! `DeadlineExceeded`/`Cancelled` *mid-batch* — within one
//! [`SchedPolicy::poll_interval`] — and cancels the shared scan early
//! once no member still wants it.
//!
//! ## Index-backed datasets
//!
//! [`Engine::start_with_stores`] additionally accepts persistent
//! embedding stores (built offline by `sketchql::vstore::ingest`). A
//! store is warm-validated at startup — it must name a loaded dataset
//! and carry the model's and index's fingerprints — and mismatches are
//! dropped so every query against that dataset falls back to the fused
//! scan path. Concurrent queries against a stored dataset fuse too:
//! the batch runs one `Matcher::search_with_store_batch` call that ranks
//! the ANN centroid table once for all members (one pass over centroid
//! memory instead of per-member probes) and then re-ranks each member
//! exactly, under per-member tokens for exact deadline semantics.
//! Results stay byte-identical to solo [`Matcher::search_with_store`]
//! calls. Store effectiveness is mirrored in plain atomics
//! ([`EngineStats::store_hits`] and friends), so the numbers survive
//! builds with telemetry compiled out.
//!
//! ## Live ingest and standing queries
//!
//! Datasets and their store tiers live behind a swappable snapshot:
//! every query (and every fused batch) works against one `Arc`'d view
//! for its whole run, and [`Engine::reload_dataset`] replaces the view
//! wholesale — readers never observe a half-swapped dataset. A reload
//! also drives the standing-query registry (see the [`live`](crate::live)
//! module): each registration behind the new frame count is evaluated
//! as one epoch-scoped query (`min_end` = its watermark) submitted
//! through normal admission under the auto-declared [`LIVE_CLASS`]
//! (base priority [`live::LIVE_PRIORITY`]), so live evaluation shares
//! the queue with interactive traffic but never preempts it. Scoped
//! queries ride the same store probe + exact re-rank path, so a
//! standing query's scores are bit-identical to an offline query over
//! the appended range.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sketchql::{
    CancelReason, CancelToken, LearnedSimilarity, MatchError, Matcher, MatcherConfig,
    RetrievedMoment, SimilarityError, StoreTier, TrainedModel, VideoIndex,
};
use sketchql_telemetry::{self as telemetry, names, TraceContext, TraceOutcome};
use sketchql_trajectory::Clip;

use crate::live::{
    self, LiveNotifications, LiveRegistration, LiveRegistry, LiveReload, LIVE_CLASS,
};

/// Bucket bounds (milliseconds) for the queue-wait and execute
/// latency histograms.
const LATENCY_MS_BOUNDS: &[f64] = &[
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
];

/// Bucket bounds for the fused-batch-size histogram.
const BATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Bucket bounds (milliseconds) for the deadline-margin histogram:
/// how much headroom a deadlined query finished with (negative = it
/// finished past its deadline).
const DEADLINE_MARGIN_MS_BOUNDS: &[f64] = &[
    -5000.0, -1000.0, -250.0, -50.0, 0.0, 10.0, 50.0, 100.0, 250.0, 1000.0, 5000.0,
];

/// The class queries resolve to when they name no class (or name one
/// the policy doesn't declare). Always present in the class table.
pub const DEFAULT_CLASS: &str = "default";

/// How the engine orders its admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Strict arrival order with greedy same-dataset fusion — the
    /// pre-policy engine behavior. Admission classes (quotas, rate
    /// limits) still apply; priorities and deadlines don't affect order.
    Fifo,
    /// Effective-priority dequeue (base + aging credit), earliest
    /// -deadline-first tie-breaks, and deadline-aware batch formation.
    Deadline,
}

/// Admission and priority settings for one class of clients.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassConfig {
    /// Base priority for queries of this class (higher runs first).
    /// A query's own `priority` field overrides it.
    pub priority: i32,
    /// Token-bucket refill rate, queries per second. `0` = unlimited.
    pub rate_per_sec: f64,
    /// Token-bucket capacity (burst size). `0` = `max(rate_per_sec, 1)`.
    pub burst: f64,
    /// Maximum queries of this class waiting in the queue at once.
    /// `0` = bounded only by [`EngineConfig::queue_depth`].
    pub queue_quota: usize,
}

impl ClassConfig {
    fn effective_burst(&self) -> f64 {
        if self.burst > 0.0 {
            self.burst
        } else {
            self.rate_per_sec.max(1.0)
        }
    }
}

/// The scheduling policy: admission classes plus queue ordering. See
/// the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedPolicy {
    /// Queue ordering discipline.
    pub mode: SchedMode,
    /// Declared admission classes. Queries naming no class (or an
    /// undeclared one) fall into [`DEFAULT_CLASS`], which may itself be
    /// declared here to give it quotas or a base priority.
    pub classes: BTreeMap<String, ClassConfig>,
    /// Milliseconds of queue wait per +1 effective-priority promotion
    /// credit (starvation protection). `0` disables aging.
    pub aging_ms: u64,
    /// How often the deadline monitor polls the member tokens of
    /// in-flight fused batches; the bound on how late after its own
    /// deadline a fused member is answered.
    pub poll_interval: Duration,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy {
            mode: SchedMode::Deadline,
            classes: BTreeMap::new(),
            aging_ms: 100,
            poll_interval: Duration::from_millis(2),
        }
    }
}

impl SchedPolicy {
    /// The pre-policy engine behavior: strict FIFO, no classes.
    pub fn fifo() -> Self {
        SchedPolicy {
            mode: SchedMode::Fifo,
            ..SchedPolicy::default()
        }
    }
}

/// Engine sizing and policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Maximum queries waiting for a worker. A submit that finds the
    /// queue at this depth is rejected with [`EngineError::Overloaded`].
    pub queue_depth: usize,
    /// Deadline applied to queries that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Maximum same-dataset queries fused into one shared scan.
    /// `0` means "same as `workers`".
    pub fused_batch: usize,
    /// Matcher search parameters shared by every query. Per-query `top_k`
    /// requests at or below `matcher.top_k` are served by truncating the
    /// ranked list (NMS keeps a greedy prefix, so the truncation is
    /// identical to searching with the smaller `top_k`).
    pub matcher: MatcherConfig,
    /// Admission and ordering policy.
    pub sched: SchedPolicy,
    /// Where the standing-query registry persists (atomic JSON).
    /// `None` keeps registrations in memory only — they die with the
    /// process. Restored registrations whose watermark trails a loaded
    /// dataset are caught up at start.
    pub registry_path: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_depth: 64,
            default_deadline: None,
            fused_batch: 0,
            matcher: MatcherConfig::default(),
            sched: SchedPolicy::default(),
            registry_path: None,
        }
    }
}

/// Errors a query can be answered with.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The admission queue was full; the query was never enqueued.
    Overloaded {
        /// The configured queue bound that was hit.
        queue_depth: usize,
    },
    /// The engine is shutting down and no longer admits queries.
    ShuttingDown,
    /// The query's admission class exhausted its token-bucket rate
    /// limit; the query was never enqueued. Retry after backoff.
    RateLimited {
        /// The admission class whose bucket ran dry.
        class: String,
    },
    /// No dataset with that name is loaded.
    UnknownDataset(String),
    /// Live registration targets a dataset with no embedding store
    /// attached (epoch-scoped evaluation needs the store's window grid).
    NotStored(String),
    /// A live reload offered a store tier that doesn't match the
    /// engine's model or the reloaded index.
    StoreMismatch(String),
    /// The query's deadline passed (in the queue or mid-search).
    DeadlineExceeded,
    /// The query was cancelled through its [`QueryHandle`].
    Cancelled,
    /// The similarity rejected the query itself.
    Similarity(SimilarityError),
    /// The worker executing the query disappeared without answering
    /// (a worker panic; should not happen).
    WorkerLost,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "overloaded: admission queue full ({queue_depth} waiting)"
                )
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::RateLimited { class } => {
                write!(f, "rate limited: class {class:?} exceeded its query rate")
            }
            EngineError::UnknownDataset(n) => write!(f, "unknown dataset {n:?}"),
            EngineError::NotStored(n) => write!(
                f,
                "dataset {n:?} has no embedding store attached (live registration requires one)"
            ),
            EngineError::StoreMismatch(m) => write!(f, "store mismatch: {m}"),
            EngineError::DeadlineExceeded => write!(f, "deadline exceeded"),
            EngineError::Cancelled => write!(f, "cancelled"),
            EngineError::Similarity(e) => write!(f, "similarity error: {e}"),
            EngineError::WorkerLost => write!(f, "worker lost"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CancelReason> for EngineError {
    fn from(r: CancelReason) -> Self {
        match r {
            CancelReason::Cancelled => EngineError::Cancelled,
            CancelReason::DeadlineExceeded => EngineError::DeadlineExceeded,
        }
    }
}

impl From<MatchError> for EngineError {
    fn from(e: MatchError) -> Self {
        match e {
            MatchError::Similarity(e) => EngineError::Similarity(e),
            MatchError::Cancelled(r) => r.into(),
        }
    }
}

/// One query as submitted to the engine.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Which loaded dataset to search.
    pub dataset: String,
    /// The query clip (a compiled sketch or a canonical event query).
    pub query: Clip,
    /// Truncate results to this many moments (at most the engine's
    /// configured `matcher.top_k`).
    pub top_k: Option<usize>,
    /// Per-query deadline; overrides [`EngineConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Trace id to run under (a wire client's id); `None` mints a fresh
    /// one at admission.
    pub trace: Option<u64>,
    /// Admission class. `None` (or a class the policy doesn't declare)
    /// resolves to [`DEFAULT_CLASS`].
    pub class: Option<String>,
    /// Priority override; `None` uses the class's base priority.
    /// Clamped to ±1000 so wire clients can't outrun aging credit
    /// forever.
    pub priority: Option<i32>,
    /// Epoch scope: only windows ending at or after this frame are
    /// considered (the standing-query evaluation range). `None` searches
    /// the whole dataset. Scoped and unscoped jobs never fuse, and
    /// scoped jobs only fuse with jobs carrying the same scope, so
    /// per-member results stay bit-identical to running alone.
    pub min_end: Option<u32>,
}

impl QuerySpec {
    /// A query with no top-k override, no per-query deadline, a
    /// server-minted trace id, default class/priority, and no epoch
    /// scope.
    pub fn new(dataset: impl Into<String>, query: Clip) -> Self {
        QuerySpec {
            dataset: dataset.into(),
            query,
            top_k: None,
            deadline: None,
            trace: None,
            class: None,
            priority: None,
            min_end: None,
        }
    }
}

/// A successfully executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Retrieved moments, best first.
    pub moments: Vec<RetrievedMoment>,
    /// Time spent waiting for a worker.
    pub queue_wait: Duration,
    /// Time spent executing (shared across a fused batch).
    pub execute: Duration,
    /// How many queries shared the scan (1 = ran alone).
    pub batch_size: usize,
    /// The live trace the query ran under. The wire server enters it
    /// once more to time response serialization, then finalizes it;
    /// for engine-direct callers it finalizes (into the flight
    /// recorder) when the last clone of this result drops.
    pub trace: TraceContext,
}

/// Per-dataset traffic totals, served inside [`EngineStats`] so a
/// live top view can tell which dataset the load lands on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetTraffic {
    /// Dataset name.
    pub name: String,
    /// Queries against this dataset answered successfully.
    pub completed: u64,
    /// Queries against this dataset that failed or were cancelled.
    pub failed: u64,
    /// Queries against this dataset whose deadline expired.
    pub timed_out: u64,
    /// Queries against this dataset shed at admission.
    pub shed: u64,
}

/// Per-admission-class queue position and traffic, served inside
/// [`EngineStats`] so fairness is observable from `stats`/`top`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Class name.
    pub name: String,
    /// Base priority from the policy (0 for an undeclared default).
    pub priority: i32,
    /// Queries of this class currently waiting in the queue.
    pub queued: usize,
    /// Queue wait of this class's oldest waiting query, milliseconds
    /// (0 when none are queued).
    pub oldest_wait_ms: u64,
    /// Queries of this class answered successfully.
    pub completed: u64,
    /// Queries of this class rejected by its token-bucket rate limit.
    pub rate_limited: u64,
    /// Queries of this class shed at admission (shutdown, full queue,
    /// or class quota).
    pub shed: u64,
}

/// A point-in-time view of the engine, also served over the wire.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineStats {
    /// Worker threads.
    pub workers: usize,
    /// Queries currently waiting for a worker.
    pub queued: usize,
    /// Queries currently executing.
    pub in_flight: usize,
    /// Queries admitted since start.
    pub accepted: u64,
    /// Queries answered successfully.
    pub completed: u64,
    /// Queries rejected at admission because the queue was full.
    pub rejected_overload: u64,
    /// Queries whose deadline expired.
    pub timed_out: u64,
    /// Queries that failed (similarity error or explicit cancel).
    pub failed: u64,
    /// Queries answered from a persistent embedding store (ANN probe +
    /// exact re-rank, no re-embedding).
    pub store_hits: u64,
    /// Queries against a stored dataset that the store could not serve
    /// (multi-object sketch, window-grid mismatch) and that fell back to
    /// a full scan.
    pub store_fallbacks: u64,
    /// Total stored rows scored across all store-served queries.
    pub store_probed: u64,
    /// Queries rejected at admission by a class rate limit. Zero when
    /// talking to a pre-v5 server.
    pub rate_limited: u64,
    /// Per-dataset traffic totals, in dataset-name order. Empty when
    /// talking to a pre-v4 server.
    pub datasets: Vec<DatasetTraffic>,
    /// Per-class queue position and traffic, in class-name order.
    /// Empty when talking to a pre-v5 server.
    pub classes: Vec<ClassStats>,
}

// Hand-written so a newer client still parses older stats: the
// per-dataset breakdown (v4) and the class/rate-limit fields (v5)
// default when absent.
impl Deserialize for EngineStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use crate::protocol::{field, obj, opt_field};
        let fields = obj(v, "EngineStats")?;
        Ok(EngineStats {
            workers: field(&fields, "workers")?,
            queued: field(&fields, "queued")?,
            in_flight: field(&fields, "in_flight")?,
            accepted: field(&fields, "accepted")?,
            completed: field(&fields, "completed")?,
            rejected_overload: field(&fields, "rejected_overload")?,
            timed_out: field(&fields, "timed_out")?,
            failed: field(&fields, "failed")?,
            store_hits: field(&fields, "store_hits")?,
            store_fallbacks: field(&fields, "store_fallbacks")?,
            store_probed: field(&fields, "store_probed")?,
            rate_limited: opt_field(&fields, "rate_limited")?.unwrap_or_default(),
            datasets: opt_field(&fields, "datasets")?.unwrap_or_default(),
            classes: opt_field(&fields, "classes")?.unwrap_or_default(),
        })
    }
}

/// A loaded dataset, as listed over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Frames indexed.
    pub frames: u32,
    /// Object trajectories in the index.
    pub tracks: usize,
    /// Whether an ingested embedding store backs this dataset.
    pub stored: bool,
}

/// Handle to an admitted query: wait for the answer or cancel it.
#[derive(Debug)]
pub struct QueryHandle {
    rx: mpsc::Receiver<Result<QueryResult, EngineError>>,
    cancel: CancelToken,
}

impl QueryHandle {
    /// Blocks until the query is answered.
    pub fn wait(self) -> Result<QueryResult, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::WorkerLost))
    }

    /// Requests cancellation; the query answers [`EngineError::Cancelled`]
    /// once the scan observes the token (immediately if still queued).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

struct Job {
    dataset: String,
    class: String,
    priority: i32,
    seq: u64,
    query: Clip,
    top_k: Option<usize>,
    min_end: Option<u32>,
    cancel: CancelToken,
    enqueued_at: Instant,
    trace: TraceContext,
    tx: mpsc::Sender<Result<QueryResult, EngineError>>,
}

impl Job {
    /// Splits into the query clip (only the executing worker needs it)
    /// and the shared answer-side record the deadline monitor and the
    /// batch guard can also reach.
    fn into_pair(self) -> (Clip, Arc<Member>) {
        (
            self.query,
            Arc::new(Member {
                dataset: self.dataset,
                class: self.class,
                top_k: self.top_k,
                min_end: self.min_end,
                cancel: self.cancel,
                enqueued_at: self.enqueued_at,
                trace: self.trace,
                tx: self.tx,
                claimed: AtomicBool::new(false),
            }),
        )
    }
}

/// The answer-side half of a dequeued query. A member is answered
/// exactly once: the worker, the deadline monitor, and the batch guard
/// all race through [`Member::claim`], and only the winner sends.
struct Member {
    dataset: String,
    class: String,
    top_k: Option<usize>,
    min_end: Option<u32>,
    cancel: CancelToken,
    enqueued_at: Instant,
    trace: TraceContext,
    tx: mpsc::Sender<Result<QueryResult, EngineError>>,
    claimed: AtomicBool,
}

impl Member {
    /// Wins the right to answer this member. Returns `false` if someone
    /// else already answered it.
    fn claim(&self) -> bool {
        self.claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// A live query executing alongside its original clip and queue wait.
type LiveMember = (Clip, Arc<Member>, Duration);

/// Per-class queue occupancy and token bucket, under the state lock.
struct ClassQueue {
    queued: usize,
    tokens: f64,
    last_refill: Instant,
}

struct QueueState {
    queue: VecDeque<Job>,
    accepting: bool,
    in_flight: usize,
    /// Keys are fixed at start: declared classes plus [`DEFAULT_CLASS`].
    classes: BTreeMap<String, ClassQueue>,
    next_seq: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    rate_limited: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    // Store effectiveness lives in plain atomics (not only telemetry
    // counters) so `stats()` keeps working with telemetry compiled out.
    store_hits: AtomicU64,
    store_fallbacks: AtomicU64,
    store_probed: AtomicU64,
}

/// Per-dataset slice of the traffic counters. The dataset set is fixed
/// at start, so the map never grows and lookups are lock-free. The scan
/// observations feed the deadline-aware fusion estimate.
#[derive(Default)]
struct DatasetCounters {
    completed: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
    scan_nanos: AtomicU64,
    scans: AtomicU64,
}

/// Per-class slice of the traffic counters; same fixed-key scheme as
/// [`DatasetCounters`].
#[derive(Default)]
struct ClassCounters {
    completed: AtomicU64,
    rate_limited: AtomicU64,
    shed: AtomicU64,
}

/// One in-flight fused batch the deadline monitor watches: the members'
/// own tokens are polled while `scan_cancel` drives the shared scan.
struct Watch {
    id: u64,
    scan_cancel: CancelToken,
    members: Vec<Arc<Member>>,
}

struct MonitorState {
    watches: Vec<Watch>,
    next_id: u64,
    stop: bool,
}

/// The engine's swappable dataset view. Readers grab one `Arc` snapshot
/// and work against it for a whole query (or fused batch), so a live
/// reload never tears a scan: [`Engine::reload_dataset`] builds a new
/// `LiveData` and swaps the `Arc` wholesale. The dataset *name set* is
/// fixed at start — reload replaces content, never adds or removes
/// names — which keeps the per-dataset counter tables lock-free.
struct LiveData {
    datasets: BTreeMap<String, Arc<VideoIndex>>,
    stores: BTreeMap<String, Arc<StoreTier>>,
}

struct Shared {
    state: Mutex<QueueState>,
    work_ready: Condvar,
    monitor: Mutex<MonitorState>,
    monitor_signal: Condvar,
    matcher: Matcher<LearnedSimilarity>,
    data: Mutex<Arc<LiveData>>,
    live: LiveRegistry,
    counters: Counters,
    per_dataset: BTreeMap<String, DatasetCounters>,
    per_class: BTreeMap<String, ClassCounters>,
    fused_batch: usize,
    policy: SchedPolicy,
}

impl Shared {
    /// The current dataset snapshot (one lock hop, then lock-free).
    fn data(&self) -> Arc<LiveData> {
        Arc::clone(&self.data.lock().unwrap())
    }

    /// The per-dataset counter slice for `name` (always present: the
    /// dataset was validated at submit).
    fn dataset_counters(&self, name: &str) -> &DatasetCounters {
        self.per_dataset
            .get(name)
            .expect("dataset validated at submit")
    }

    /// The per-class counter slice for `name` (always present: the
    /// class was resolved against the fixed table at submit).
    fn class_counters(&self, name: &str) -> &ClassCounters {
        self.per_class.get(name).expect("class resolved at submit")
    }
}

/// The concurrent query service. See the [module docs](self).
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    monitor: Mutex<Option<JoinHandle<()>>>,
    config: EngineConfig,
}

impl Engine {
    /// Builds the engine and spawns its worker pool.
    pub fn start(
        model: TrainedModel,
        datasets: BTreeMap<String, VideoIndex>,
        config: EngineConfig,
    ) -> Engine {
        Engine::start_with_stores(model, datasets, BTreeMap::new(), config)
    }

    /// Like [`Engine::start`], but attaches persistent embedding store
    /// tiers keyed by dataset name. Each tier is validated here from
    /// its attach-time metadata alone (headers and manifests — no
    /// payload reads, no checksums): it must name a loaded dataset and
    /// carry both the model's and that index's fingerprints. Tiers
    /// that don't match are dropped, and queries against their dataset
    /// simply take the fused-scan path — per-dataset fallback, never a
    /// startup failure. Payloads (and their deferred checksums) load on
    /// first probe, so startup cost is independent of store size.
    pub fn start_with_stores(
        model: TrainedModel,
        datasets: BTreeMap<String, VideoIndex>,
        stores: BTreeMap<String, StoreTier>,
        config: EngineConfig,
    ) -> Engine {
        let mut config = config;
        config.workers = config.workers.max(1);
        if config.fused_batch == 0 {
            config.fused_batch = config.workers;
        }
        // Standing-query evaluation always has a class to run under:
        // auto-declare the live class (far below interactive priority)
        // unless the policy configured it explicitly.
        config
            .sched
            .classes
            .entry(LIVE_CLASS.to_string())
            .or_insert(ClassConfig {
                priority: live::LIVE_PRIORITY,
                rate_per_sec: 0.0,
                burst: 0.0,
                queue_quota: 0,
            });
        let matcher = Matcher::with_config(model.similarity(), config.matcher.clone());
        let datasets: BTreeMap<String, Arc<VideoIndex>> = datasets
            .into_iter()
            .map(|(name, idx)| (name, Arc::new(idx)))
            .collect();
        let stores: BTreeMap<String, Arc<StoreTier>> = stores
            .into_iter()
            .filter(|(name, tier)| {
                tier.matches_model(&matcher.sim)
                    && datasets
                        .get(name)
                        .is_some_and(|idx| tier.matches_index(idx))
            })
            .map(|(name, tier)| (name, Arc::new(tier)))
            .collect();
        let per_dataset = datasets
            .keys()
            .map(|name| (name.clone(), DatasetCounters::default()))
            .collect();
        // The class table is fixed at start: every declared class plus
        // the default class every unmatched query resolves to.
        let class_names: Vec<String> = config
            .sched
            .classes
            .keys()
            .cloned()
            .chain(std::iter::once(DEFAULT_CLASS.to_string()))
            .collect();
        let now = Instant::now();
        let class_queues = class_names
            .iter()
            .map(|name| {
                let cfg = config.sched.classes.get(name).copied().unwrap_or_default();
                (
                    name.clone(),
                    ClassQueue {
                        queued: 0,
                        tokens: cfg.effective_burst(),
                        last_refill: now,
                    },
                )
            })
            .collect();
        let per_class = class_names
            .iter()
            .map(|name| (name.clone(), ClassCounters::default()))
            .collect();
        let registry = LiveRegistry::new(config.registry_path.clone());
        telemetry::gauge(names::LIVE_REGISTRATIONS).set(registry.count() as f64);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                in_flight: 0,
                classes: class_queues,
                next_seq: 0,
            }),
            work_ready: Condvar::new(),
            monitor: Mutex::new(MonitorState {
                watches: Vec::new(),
                next_id: 0,
                stop: false,
            }),
            monitor_signal: Condvar::new(),
            matcher,
            data: Mutex::new(Arc::new(LiveData { datasets, stores })),
            live: registry,
            counters: Counters::default(),
            per_dataset,
            per_class,
            fused_batch: config.fused_batch,
            policy: config.sched.clone(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sketchql-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn engine worker")
            })
            .collect();
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sketchql-sched".to_string())
                .spawn(move || monitor_loop(&shared))
                .expect("failed to spawn deadline monitor")
        };
        let engine = Engine {
            shared,
            workers: Mutex::new(workers),
            monitor: Mutex::new(Some(monitor)),
            config,
        };
        // Catch up restored registrations whose watermark trails a
        // loaded dataset — appends committed while the server was down
        // are evaluated (and notified) before the engine is handed out.
        engine.evaluate_live(None);
        engine
    }

    /// The engine's effective configuration (zeros resolved to defaults).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Non-blocking admission. Returns a handle to wait on, or an
    /// immediate rejection ([`EngineError::Overloaded`],
    /// [`EngineError::RateLimited`], [`EngineError::ShuttingDown`],
    /// [`EngineError::UnknownDataset`]).
    pub fn submit(&self, spec: QuerySpec) -> Result<QueryHandle, EngineError> {
        if !self.shared.data().datasets.contains_key(&spec.dataset) {
            return Err(EngineError::UnknownDataset(spec.dataset));
        }
        // Undeclared wire classes collapse into the default class: the
        // class table (and stats/metric cardinality) stays fixed.
        let class = match spec.class.as_deref() {
            Some(c) if self.shared.policy.classes.contains_key(c) => c.to_string(),
            _ => DEFAULT_CLASS.to_string(),
        };
        let cfg = self
            .shared
            .policy
            .classes
            .get(&class)
            .copied()
            .unwrap_or_default();
        let priority = spec.priority.unwrap_or(cfg.priority).clamp(-1000, 1000);
        // The trace is born at admission; shed queries finalize it via
        // its drop safety net (after the queue lock below releases), so
        // they still reach the flight recorder and slow-query log.
        let trace = match spec.trace {
            Some(id) => TraceContext::with_id(id),
            None => TraceContext::new(),
        };
        trace.set_label(spec.dataset.as_str());
        let deadline = spec.deadline.or(self.config.default_deadline);
        let cancel = match deadline {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        };
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let mut st = self.shared.state.lock().unwrap();
        if !st.accepting {
            trace.set_outcome(TraceOutcome::Shed);
            telemetry::counter(names::SERVER_SHED_SHUTDOWN).inc();
            self.shed_at_admission(&spec.dataset, &class);
            return Err(EngineError::ShuttingDown);
        }
        if st.queue.len() >= self.config.queue_depth {
            self.shared
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_REJECTED_OVERLOAD).inc();
            trace.set_outcome(TraceOutcome::Shed);
            telemetry::counter(names::SERVER_SHED_QUEUE_FULL).inc();
            self.shed_at_admission(&spec.dataset, &class);
            return Err(EngineError::Overloaded {
                queue_depth: self.config.queue_depth,
            });
        }
        let cq = st.classes.get_mut(&class).expect("class table is fixed");
        // Per-class queue quota: this class's slice of the queue.
        if cfg.queue_quota > 0 && cq.queued >= cfg.queue_quota {
            self.shared
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_REJECTED_OVERLOAD).inc();
            trace.set_outcome(TraceOutcome::Shed);
            telemetry::counter(names::SERVER_SHED_QUEUE_FULL).inc();
            self.shed_at_admission(&spec.dataset, &class);
            return Err(EngineError::Overloaded {
                queue_depth: cfg.queue_quota,
            });
        }
        // Token-bucket rate limit: refill lazily, spend one per query.
        if cfg.rate_per_sec > 0.0 {
            let dt = now.duration_since(cq.last_refill).as_secs_f64();
            cq.tokens = (cq.tokens + dt * cfg.rate_per_sec).min(cfg.effective_burst());
            cq.last_refill = now;
            if cq.tokens < 1.0 {
                self.shared
                    .counters
                    .rate_limited
                    .fetch_add(1, Ordering::Relaxed);
                self.shared
                    .class_counters(&class)
                    .rate_limited
                    .fetch_add(1, Ordering::Relaxed);
                telemetry::counter(names::SERVER_SHED_RATE_LIMITED).inc();
                telemetry::counter(&names::server_class_metric(&class, "rate_limited")).inc();
                trace.set_outcome(TraceOutcome::Shed);
                self.shared
                    .dataset_counters(&spec.dataset)
                    .shed
                    .fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::RateLimited { class });
            }
            cq.tokens -= 1.0;
        }
        cq.queued += 1;
        telemetry::gauge(&names::server_class_metric(&class, "queue_depth")).set(cq.queued as f64);
        st.next_seq += 1;
        let seq = st.next_seq;
        st.queue.push_back(Job {
            dataset: spec.dataset,
            class,
            priority,
            seq,
            query: spec.query,
            top_k: spec.top_k,
            min_end: spec.min_end,
            cancel: cancel.clone(),
            enqueued_at: now,
            trace,
            tx,
        });
        telemetry::gauge(names::SERVER_QUEUE_DEPTH).set(st.queue.len() as f64);
        self.shared
            .counters
            .accepted
            .fetch_add(1, Ordering::Relaxed);
        telemetry::counter(names::SERVER_ACCEPTED).inc();
        self.shared.work_ready.notify_one();
        Ok(QueryHandle { rx, cancel })
    }

    /// Shared bookkeeping for a query shed at admission.
    fn shed_at_admission(&self, dataset: &str, class: &str) {
        self.shared
            .dataset_counters(dataset)
            .shed
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .class_counters(class)
            .shed
            .fetch_add(1, Ordering::Relaxed);
        telemetry::counter(&names::server_class_metric(class, "shed")).inc();
    }

    /// Submits and waits: the blocking convenience path.
    pub fn execute(&self, spec: QuerySpec) -> Result<QueryResult, EngineError> {
        self.submit(spec)?.wait()
    }

    /// Current queue/traffic statistics.
    pub fn stats(&self) -> EngineStats {
        let st = self.shared.state.lock().unwrap();
        let c = &self.shared.counters;
        let classes = self
            .shared
            .per_class
            .iter()
            .map(|(name, cc)| {
                let queued = st.classes.get(name).map(|cq| cq.queued).unwrap_or(0);
                let oldest_wait_ms = st
                    .queue
                    .iter()
                    .filter(|j| j.class == *name)
                    .map(|j| j.enqueued_at.elapsed().as_millis() as u64)
                    .max()
                    .unwrap_or(0);
                ClassStats {
                    name: name.clone(),
                    priority: self
                        .shared
                        .policy
                        .classes
                        .get(name)
                        .map(|cfg| cfg.priority)
                        .unwrap_or(0),
                    queued,
                    oldest_wait_ms,
                    completed: cc.completed.load(Ordering::Relaxed),
                    rate_limited: cc.rate_limited.load(Ordering::Relaxed),
                    shed: cc.shed.load(Ordering::Relaxed),
                }
            })
            .collect();
        EngineStats {
            workers: self.config.workers,
            queued: st.queue.len(),
            in_flight: st.in_flight,
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected_overload: c.rejected.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            store_hits: c.store_hits.load(Ordering::Relaxed),
            store_fallbacks: c.store_fallbacks.load(Ordering::Relaxed),
            store_probed: c.store_probed.load(Ordering::Relaxed),
            rate_limited: c.rate_limited.load(Ordering::Relaxed),
            datasets: self
                .shared
                .per_dataset
                .iter()
                .map(|(name, d)| DatasetTraffic {
                    name: name.clone(),
                    completed: d.completed.load(Ordering::Relaxed),
                    failed: d.failed.load(Ordering::Relaxed),
                    timed_out: d.timed_out.load(Ordering::Relaxed),
                    shed: d.shed.load(Ordering::Relaxed),
                })
                .collect(),
            classes,
        }
    }

    /// The loaded datasets, in name order.
    pub fn datasets(&self) -> Vec<DatasetInfo> {
        let data = self.shared.data();
        data.datasets
            .iter()
            .map(|(name, idx)| DatasetInfo {
                name: name.clone(),
                frames: idx.frames,
                tracks: idx.tracks.len(),
                stored: data.stores.contains_key(name),
            })
            .collect()
    }

    /// Dataset names backed by a warm-validated embedding store.
    pub fn stored_datasets(&self) -> Vec<String> {
        self.shared.data().stores.keys().cloned().collect()
    }

    /// Registers a standing query: `query` is re-evaluated over every
    /// ingest epoch appended to `dataset` from now on (the returned
    /// watermark is the frame count already covered — only frames past
    /// it notify). Restricted to store-backed datasets: epoch-scoped
    /// evaluation rides the store's window grid, which is what makes a
    /// standing query's matches bit-identical to offline queries over
    /// the appended ranges.
    pub fn register(
        &self,
        dataset: &str,
        query: Clip,
        min_score: Option<f32>,
        top_k: Option<usize>,
    ) -> Result<LiveRegistration, EngineError> {
        let data = self.shared.data();
        let Some(index) = data.datasets.get(dataset) else {
            return Err(EngineError::UnknownDataset(dataset.to_string()));
        };
        let Some(tier) = data.stores.get(dataset) else {
            return Err(EngineError::NotStored(dataset.to_string()));
        };
        let reg = self.shared.live.register(
            dataset.to_string(),
            query,
            min_score,
            top_k,
            index.frames,
            tier.epoch(),
        );
        telemetry::gauge(names::LIVE_REGISTRATIONS).set(self.shared.live.count() as f64);
        self.shared.live.save();
        Ok(reg)
    }

    /// Removes a standing query; `false` if the id is unknown.
    pub fn unregister(&self, id: u64) -> bool {
        let removed = self.shared.live.unregister(id);
        if removed {
            telemetry::gauge(names::LIVE_REGISTRATIONS).set(self.shared.live.count() as f64);
            self.shared.live.save();
        }
        removed
    }

    /// Drains up to `max` queued notifications (oldest first, all of
    /// them when `None`) for a registration; `None` if the id is
    /// unknown.
    pub fn notifications(&self, id: u64, max: Option<usize>) -> Option<LiveNotifications> {
        self.shared.live.drain(id, max.unwrap_or(usize::MAX))
    }

    /// Commits a live ingest epoch: atomically swaps `dataset`'s index
    /// and store tier (queries in flight finish against the old
    /// snapshot; new queries see the new one) and evaluates every
    /// standing query the growth left behind. Evaluation is synchronous
    /// — when this returns, every match for the epoch is queued — but
    /// flows through normal admission under [`LIVE_CLASS`], so
    /// concurrent interactive traffic keeps its priority.
    ///
    /// The reload is validated like a startup store attach, plus: the
    /// dataset name must already be loaded (reload replaces content,
    /// never adds datasets).
    pub fn reload_dataset(
        &self,
        name: &str,
        index: VideoIndex,
        tier: StoreTier,
    ) -> Result<LiveReload, EngineError> {
        if !self.shared.per_dataset.contains_key(name) {
            return Err(EngineError::UnknownDataset(name.to_string()));
        }
        if !tier.matches_model(&self.shared.matcher.sim) {
            return Err(EngineError::StoreMismatch(format!(
                "store for {name:?} was built by a different model"
            )));
        }
        if !tier.matches_index(&index) {
            return Err(EngineError::StoreMismatch(format!(
                "store for {name:?} does not match the offered index"
            )));
        }
        let epoch = tier.epoch();
        let frames = index.frames;
        {
            let mut data = self.shared.data.lock().unwrap();
            let mut next = LiveData {
                datasets: data.datasets.clone(),
                stores: data.stores.clone(),
            };
            next.datasets.insert(name.to_string(), Arc::new(index));
            next.stores.insert(name.to_string(), Arc::new(tier));
            *data = Arc::new(next);
        }
        let (evaluated, delivered) = self.evaluate_live(Some(name));
        Ok(LiveReload {
            dataset: name.to_string(),
            epoch,
            frames,
            evaluated,
            delivered,
        })
    }

    /// Evaluates every registration (optionally: only `only`'s) whose
    /// watermark trails its dataset's current frame count, as
    /// epoch-scoped queries through normal admission. A failed or shed
    /// evaluation leaves the watermark where it was — the next epoch
    /// re-covers the range, so matches are delayed, never lost.
    fn evaluate_live(&self, only: Option<&str>) -> (usize, usize) {
        let data = self.shared.data();
        let due = self
            .shared
            .live
            .due(only, |ds| data.datasets.get(ds).map(|idx| idx.frames));
        if due.is_empty() {
            return (0, 0);
        }
        let evaluated = due.len();
        let mut delivered = 0usize;
        for d in due {
            let Some(frames) = data.datasets.get(&d.dataset).map(|idx| idx.frames) else {
                continue;
            };
            let epoch = data.stores.get(&d.dataset).map(|t| t.epoch()).unwrap_or(0);
            let spec = QuerySpec {
                dataset: d.dataset.clone(),
                query: d.query,
                top_k: d.top_k,
                deadline: None,
                trace: None,
                class: Some(LIVE_CLASS.to_string()),
                priority: None,
                min_end: Some(d.watermark),
            };
            let Ok(handle) = self.submit(spec) else {
                continue;
            };
            telemetry::counter(names::LIVE_EVALUATIONS).inc();
            if let Ok(result) = handle.wait() {
                delivered +=
                    self.shared
                        .live
                        .complete(d.id, d.watermark, frames, epoch, result.moments);
            }
        }
        self.shared.live.save();
        (evaluated, delivered)
    }

    /// Stops admission, drains every already-admitted query, and joins
    /// the worker pool. Idempotent; called by `Drop` as a safety net.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.accepting = false;
            self.shared.work_ready.notify_all();
        }
        {
            let mut workers = self.workers.lock().unwrap();
            for handle in workers.drain(..) {
                let _ = handle.join();
            }
        }
        // Workers only exit once the queue is empty, so this drain is a
        // belt-and-braces guarantee that a submit racing shutdown either
        // errors at admission or gets an answer here — `wait()` can
        // never hang on an admitted query.
        let leftovers: Vec<Job> = {
            let mut st = self.shared.state.lock().unwrap();
            let drained: Vec<Job> = std::mem::take(&mut st.queue).into();
            for job in &drained {
                if let Some(cq) = st.classes.get_mut(&job.class) {
                    cq.queued -= 1;
                }
            }
            drained
        };
        for job in leftovers {
            let (_, member) = job.into_pair();
            finish_err(&self.shared, &member, EngineError::ShuttingDown);
        }
        // Stop the deadline monitor last: no scans remain to watch.
        {
            let mut mon = self.shared.monitor.lock().unwrap();
            mon.stop = true;
            self.shared.monitor_signal.notify_all();
        }
        if let Some(handle) = self.monitor.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Worker thread body: pick, fuse, execute, answer — until shutdown
/// with an empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                let now = Instant::now();
                if let Some(i) = pick_index(&st.queue, &shared.policy, now) {
                    let head = st.queue.remove(i).expect("picked index in bounds");
                    let est = estimate_scan(shared, &head.dataset);
                    let batch = form_batch(
                        &mut st.queue,
                        head,
                        shared.fused_batch,
                        &shared.policy,
                        est,
                        now,
                    );
                    for job in &batch {
                        let cq = st
                            .classes
                            .get_mut(&job.class)
                            .expect("class table is fixed");
                        cq.queued -= 1;
                        telemetry::gauge(&names::server_class_metric(&job.class, "queue_depth"))
                            .set(cq.queued as f64);
                    }
                    st.in_flight += batch.len();
                    telemetry::gauge(names::SERVER_QUEUE_DEPTH).set(st.queue.len() as f64);
                    telemetry::gauge(names::SERVER_IN_FLIGHT).set(st.in_flight as f64);
                    break batch;
                }
                if !st.accepting {
                    return;
                }
                st = shared.work_ready.wait(st).unwrap();
            }
        };
        // The guard restores `in_flight` and answers any member the
        // batch never answered — on the normal path *and* when
        // `run_batch` panics, so a panicking worker can't leak the
        // count or leave a caller hanging. The worker itself survives.
        let guard = BatchGuard::new(shared, batch.len());
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(shared, batch, &guard)
        }));
        drop(guard);
        if ran.is_err() {
            telemetry::counter(names::SERVER_WORKER_PANICS).inc();
        }
    }
}

/// Effective priority after starvation protection: the base priority
/// plus one promotion credit per `aging_ms` of queue wait.
fn effective_priority(job: &Job, now: Instant, aging_ms: u64) -> i64 {
    // aging_ms == 0 disables aging (no credit), not instant promotion.
    let wait_ms = now.saturating_duration_since(job.enqueued_at).as_millis() as u64;
    let credit = wait_ms.checked_div(aging_ms).unwrap_or(0) as i64;
    job.priority as i64 + credit
}

/// Whether `a` should run strictly before `b`: higher effective
/// priority, then earlier deadline (EDF; a deadline beats none), then
/// arrival order.
fn sched_before(a: &Job, b: &Job, now: Instant, aging_ms: u64) -> bool {
    let (pa, pb) = (
        effective_priority(a, now, aging_ms),
        effective_priority(b, now, aging_ms),
    );
    if pa != pb {
        return pa > pb;
    }
    match (a.cancel.deadline(), b.cancel.deadline()) {
        (Some(da), Some(db)) if da != db => da < db,
        (Some(_), None) => true,
        (None, Some(_)) => false,
        _ => a.seq < b.seq,
    }
}

/// Index of the next job to dequeue under `policy`. With no declared
/// priorities or deadlines this is always the queue front, so the
/// default policy degrades to exact FIFO.
fn pick_index(queue: &VecDeque<Job>, policy: &SchedPolicy, now: Instant) -> Option<usize> {
    if queue.is_empty() {
        return None;
    }
    if policy.mode == SchedMode::Fifo {
        return Some(0);
    }
    let mut best = 0;
    for i in 1..queue.len() {
        if sched_before(&queue[i], &queue[best], now, policy.aging_ms) {
            best = i;
        }
    }
    Some(best)
}

/// Whether a queued peer may join `head`'s batch: under deadline-aware
/// formation, a peer with a deadline joins only if its remaining margin
/// covers the estimated scan time. No estimate yet (cold dataset) or no
/// deadline means fuse freely; an already-expired peer stays queued and
/// is shed when it is next picked.
fn fusable(job: &Job, policy: &SchedPolicy, est_scan: Option<Duration>, now: Instant) -> bool {
    if policy.mode == SchedMode::Fifo {
        return true;
    }
    let (Some(deadline), Some(est)) = (job.cancel.deadline(), est_scan) else {
        return true;
    };
    deadline
        .checked_duration_since(now)
        .is_some_and(|margin| margin >= est)
}

/// Drains fusable same-dataset peers of `head` out of `queue` in one
/// pass — O(n) with no per-removal shifting, unlike the old
/// `queue.remove(i)` sweep — preserving the relative order of every
/// job left behind. Batch members keep their arrival order after the
/// head.
fn form_batch(
    queue: &mut VecDeque<Job>,
    head: Job,
    fused_batch: usize,
    policy: &SchedPolicy,
    est_scan: Option<Duration>,
    now: Instant,
) -> Vec<Job> {
    let mut batch = vec![head];
    if fused_batch <= 1 || queue.is_empty() {
        return batch;
    }
    let pending = std::mem::take(queue);
    for job in pending {
        // Only jobs sharing the head's epoch scope may fuse: the scope
        // prunes the shared candidate set, so mixing scopes would
        // change peers' answers.
        if batch.len() < fused_batch
            && job.dataset == batch[0].dataset
            && job.min_end == batch[0].min_end
            && fusable(&job, policy, est_scan, now)
        {
            batch.push(job);
        } else {
            queue.push_back(job);
        }
    }
    batch
}

/// Mean observed scan time for `dataset` — the running mean of the same
/// per-dataset execute-stage observations that feed the
/// `sketchql.server.execute_ms` histogram. `None` until the dataset's
/// first scan completes.
fn estimate_scan(shared: &Shared, dataset: &str) -> Option<Duration> {
    let d = shared.dataset_counters(dataset);
    let n = d.scans.load(Ordering::Relaxed);
    if n == 0 {
        return None;
    }
    Some(Duration::from_nanos(
        d.scan_nanos.load(Ordering::Relaxed) / n,
    ))
}

/// Feeds one completed scan into the per-dataset estimate.
fn record_scan_estimate(shared: &Shared, dataset: &str, execute: Duration) {
    let d = shared.dataset_counters(dataset);
    d.scan_nanos
        .fetch_add(execute.as_nanos() as u64, Ordering::Relaxed);
    d.scans.fetch_add(1, Ordering::Relaxed);
}

/// Registers a fused batch with the deadline monitor; the returned id
/// unregisters it.
fn register_watch(shared: &Shared, scan_cancel: CancelToken, members: Vec<Arc<Member>>) -> u64 {
    let mut mon = shared.monitor.lock().unwrap();
    mon.next_id += 1;
    let id = mon.next_id;
    mon.watches.push(Watch {
        id,
        scan_cancel,
        members,
    });
    shared.monitor_signal.notify_all();
    id
}

fn unregister_watch(shared: &Shared, id: u64) {
    let mut mon = shared.monitor.lock().unwrap();
    mon.watches.retain(|w| w.id != id);
}

/// Deadline monitor body: while any fused batch is in flight, poll its
/// members' own tokens every [`SchedPolicy::poll_interval`]. A member
/// whose deadline trips (or that is cancelled) mid-batch is answered
/// immediately — not after the shared scan finishes — and once no
/// member still wants a scan's result, the scan itself is cancelled.
/// Sleeps on the condvar whenever nothing is in flight.
fn monitor_loop(shared: &Shared) {
    let mut mon = shared.monitor.lock().unwrap();
    loop {
        if mon.stop {
            return;
        }
        if mon.watches.is_empty() {
            mon = shared.monitor_signal.wait(mon).unwrap();
            continue;
        }
        mon = shared
            .monitor_signal
            .wait_timeout(mon, shared.policy.poll_interval)
            .unwrap()
            .0;
        if mon.stop {
            return;
        }
        for watch in &mon.watches {
            let mut all_answered = true;
            for member in &watch.members {
                if member.claimed.load(Ordering::Acquire) {
                    continue;
                }
                if let Err(reason) = member.cancel.check() {
                    finish_err(shared, member, reason.into());
                }
                if !member.claimed.load(Ordering::Acquire) {
                    all_answered = false;
                }
            }
            if all_answered {
                // No member still wants this scan's result.
                watch.scan_cancel.cancel();
            }
        }
    }
}

/// Restores `in_flight` and answers unanswered members when a batch
/// ends — normally or by panic. Created before `run_batch`, dropped
/// after `catch_unwind` resolves.
struct BatchGuard<'a> {
    shared: &'a Shared,
    n: usize,
    members: Mutex<Vec<Arc<Member>>>,
    watch: Mutex<Option<u64>>,
}

impl<'a> BatchGuard<'a> {
    fn new(shared: &'a Shared, n: usize) -> Self {
        BatchGuard {
            shared,
            n,
            members: Mutex::new(Vec::new()),
            watch: Mutex::new(None),
        }
    }

    fn register_members(&self, members: Vec<Arc<Member>>) {
        *self.members.lock().unwrap() = members;
    }

    fn set_watch(&self, id: u64) {
        *self.watch.lock().unwrap() = Some(id);
    }

    fn clear_watch(&self) -> Option<u64> {
        self.watch.lock().unwrap().take()
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.watch.lock().unwrap().take() {
            unregister_watch(self.shared, id);
        }
        // Restore the count *before* answering: a waiter woken by its
        // answer must already observe the batch gone from `in_flight`.
        {
            let mut st = self.shared.state.lock().unwrap();
            st.in_flight -= self.n;
            telemetry::gauge(names::SERVER_IN_FLIGHT).set(st.in_flight as f64);
        }
        for member in self.members.lock().unwrap().iter() {
            // No-op for members the batch answered; a panic's survivors
            // get `WorkerLost` (a `Failed` outcome) instead of hanging.
            finish_err(self.shared, member, EngineError::WorkerLost);
        }
    }
}

/// Executes one same-dataset batch and answers every member.
fn run_batch(shared: &Shared, batch: Vec<Job>, guard: &BatchGuard) {
    // Register every member with the guard before any fallible work:
    // a panic anywhere below still answers them all.
    let pairs: Vec<(Clip, Arc<Member>)> = batch.into_iter().map(Job::into_pair).collect();
    guard.register_members(pairs.iter().map(|(_, m)| Arc::clone(m)).collect());

    // Test-only fault injection (debug builds): panic mid-batch when the
    // dataset matches, exercising the guard's unwind path.
    #[cfg(debug_assertions)]
    if let Ok(target) = std::env::var("SKETCHQL_TEST_PANIC_DATASET") {
        if !target.is_empty() && pairs.first().is_some_and(|(_, m)| m.dataset == target) {
            panic!("test-injected worker panic for dataset {target:?}");
        }
    }

    // Queue-expiry check: answer members whose token already tripped
    // without running them.
    let mut live: Vec<LiveMember> = Vec::with_capacity(pairs.len());
    for (query, member) in pairs {
        let wait = member.enqueued_at.elapsed();
        telemetry::histogram(names::SERVER_QUEUE_WAIT_MS, LATENCY_MS_BOUNDS)
            .observe(wait.as_secs_f64() * 1e3);
        telemetry::histogram(
            &names::server_class_metric(&member.class, "queue_wait_ms"),
            LATENCY_MS_BOUNDS,
        )
        .observe(wait.as_secs_f64() * 1e3);
        // The queue wait happened between threads, outside any RAII
        // scope — record it straight into the trace.
        member.trace.record_span(
            names::SERVER_QUEUE_WAIT,
            0,
            member.enqueued_at,
            wait.as_nanos() as u64,
        );
        match member.cancel.check() {
            Ok(()) => live.push((query, member, wait)),
            Err(reason) => {
                if reason == CancelReason::DeadlineExceeded {
                    telemetry::counter(names::SERVER_SHED_DEADLINE_QUEUE).inc();
                }
                finish_err(shared, &member, reason.into());
            }
        }
    }
    if live.is_empty() {
        return;
    }
    let dataset = live[0].1.dataset.clone();
    // One snapshot for the whole batch: a reload committing mid-scan
    // swaps the engine's view, not this batch's.
    let data = shared.data();
    let index = data
        .datasets
        .get(&dataset)
        .expect("dataset validated at submit")
        .as_ref();

    if let Some(tier) = data.stores.get(&dataset) {
        run_store_batch(shared, &dataset, index, tier.as_ref(), live);
        return;
    }

    telemetry::histogram(names::SERVER_FUSED_BATCH, BATCH_BOUNDS).observe(live.len() as f64);
    let batch_size = live.len();
    for (_, member, _) in &live {
        member.trace.set_batch_size(batch_size);
    }
    // Enter every member's trace: the shared scan's spans (embed, scan,
    // rank) are delivered to each member, so every fused query still
    // carries a complete span tree of the work done on its behalf.
    let trace_guards: Vec<_> = live.iter().map(|(_, m, _)| m.trace.enter()).collect();
    let exec_span = telemetry::span(names::SERVER_EXECUTE);
    let fusion_span = if batch_size > 1 {
        Some(telemetry::span(names::SERVER_FUSION))
    } else {
        None
    };
    let started = Instant::now();
    let results = if live.len() == 1 {
        // A lone query runs under its own token, so explicit cancellation
        // and the deadline both stop the scan directly.
        let (query, member, _) = &live[0];
        vec![shared
            .matcher
            .search_with_cancel(index, query, &member.cancel)]
    } else {
        // Fused: one shared scan under a batch token whose deadline is
        // the latest member deadline — the last instant any member still
        // wants the result. While the scan runs, the deadline monitor
        // polls every member's own token: a tighter deadline (or an
        // explicit cancel) answers that member mid-batch, and once no
        // member is left waiting the monitor cancels this token too.
        let mut latest = Some(started);
        for (_, member, _) in &live {
            match (member.cancel.deadline(), latest) {
                (Some(d), Some(l)) => latest = Some(l.max(d)),
                _ => latest = None,
            }
        }
        let scan_cancel = match latest {
            Some(at) => CancelToken::with_deadline_at(at),
            None => CancelToken::new(),
        };
        let watch_id = register_watch(
            shared,
            scan_cancel.clone(),
            live.iter().map(|(_, m, _)| Arc::clone(m)).collect(),
        );
        guard.set_watch(watch_id);
        let queries: Vec<&Clip> = live.iter().map(|(q, _, _)| q).collect();
        let results = shared.matcher.search_batch(index, &queries, &scan_cancel);
        if let Some(id) = guard.clear_watch() {
            unregister_watch(shared, id);
        }
        results
    };
    let execute = started.elapsed();
    drop(fusion_span);
    drop(exec_span);
    drop(trace_guards);
    telemetry::histogram(names::SERVER_EXECUTE_MS, LATENCY_MS_BOUNDS)
        .observe(execute.as_secs_f64() * 1e3);
    if results.iter().any(|r| r.is_ok()) {
        // Only scans that ran to completion feed the fusion estimate;
        // aborted scans would bias it low and over-fuse.
        record_scan_estimate(shared, &dataset, execute);
    }

    for ((_, member, wait), result) in live.into_iter().zip(results) {
        // A member whose own token tripped during a fused scan reports
        // its own reason even though the batch ran on for its peers.
        let result = match member.cancel.check() {
            Ok(()) => result,
            Err(reason) => Err(MatchError::Cancelled(reason)),
        };
        observe_deadline_margin(&member);
        match result {
            Ok(moments) => {
                // Scan-path epoch scope: filter ranked moments (the
                // store path prunes candidate windows instead — see
                // the core scoped-search docs for the distinction).
                let moments = match member.min_end {
                    Some(m) => moments.into_iter().filter(|r| r.end >= m).collect(),
                    None => moments,
                };
                finish_ok(shared, &member, moments, wait, execute, batch_size)
            }
            Err(e) => finish_err(shared, &member, e.into()),
        }
    }
}

/// Executes one batch against an index-backed dataset: store-aware
/// fusion ranks the ANN (or shared shard-quantizer) centroid table
/// once for every member (one `search_with_tier_batch` call), then
/// re-ranks each member exactly under its own token — results are
/// byte-identical to solo `search_with_tier` calls, whichever shape
/// the tier takes on disk.
fn run_store_batch(
    shared: &Shared,
    dataset: &str,
    index: &VideoIndex,
    tier: &StoreTier,
    live: Vec<LiveMember>,
) {
    let batch_size = live.len();
    telemetry::histogram(names::SERVER_FUSED_BATCH, BATCH_BOUNDS).observe(batch_size as f64);
    for (_, member, _) in &live {
        member.trace.set_batch_size(batch_size);
    }
    let trace_guards: Vec<_> = live.iter().map(|(_, m, _)| m.trace.enter()).collect();
    let exec_span = telemetry::span(names::SERVER_EXECUTE);
    let fusion_span = if batch_size > 1 {
        Some(telemetry::span(names::SERVER_FUSION))
    } else {
        None
    };
    let started = Instant::now();
    let queries: Vec<(&Clip, &CancelToken)> = live.iter().map(|(q, m, _)| (q, &m.cancel)).collect();
    // Batch members all share one epoch scope (form_batch only fuses
    // equal scopes), so the scoped call stays one fused probe.
    let min_end = live[0].1.min_end;
    let results = shared
        .matcher
        .search_with_tier_batch_scoped(index, tier, &queries, min_end);
    let execute = started.elapsed();
    drop(fusion_span);
    drop(exec_span);
    drop(trace_guards);
    telemetry::histogram(names::SERVER_EXECUTE_MS, LATENCY_MS_BOUNDS)
        .observe(execute.as_secs_f64() * 1e3);
    if results.iter().any(|r| r.is_ok()) {
        record_scan_estimate(shared, dataset, execute);
    }
    for ((_, member, wait), result) in live.into_iter().zip(results) {
        observe_deadline_margin(&member);
        match result {
            Ok(search) => {
                let c = &shared.counters;
                if search.from_store {
                    c.store_hits.fetch_add(1, Ordering::Relaxed);
                    c.store_probed.fetch_add(search.probed, Ordering::Relaxed);
                } else {
                    c.store_fallbacks.fetch_add(1, Ordering::Relaxed);
                }
                finish_ok(shared, &member, search.moments, wait, execute, batch_size);
            }
            Err(e) => finish_err(shared, &member, e.into()),
        }
    }
}

/// Records how much deadline headroom `member` ended with (negative
/// when it ended past its deadline). No-op without a deadline.
fn observe_deadline_margin(member: &Member) {
    if !telemetry::is_enabled() {
        return;
    }
    let Some(deadline) = member.cancel.deadline() else {
        return;
    };
    let now = Instant::now();
    let margin_ms = if deadline >= now {
        deadline.duration_since(now).as_secs_f64() * 1e3
    } else {
        -(now.duration_since(deadline).as_secs_f64() * 1e3)
    };
    telemetry::histogram(names::SERVER_DEADLINE_MARGIN_MS, DEADLINE_MARGIN_MS_BOUNDS)
        .observe(margin_ms);
}

/// Answers `member` successfully — unless someone (the deadline
/// monitor) already answered it, in which case this is a no-op.
fn finish_ok(
    shared: &Shared,
    member: &Member,
    mut moments: Vec<RetrievedMoment>,
    queue_wait: Duration,
    execute: Duration,
    batch_size: usize,
) {
    if !member.claim() {
        return;
    }
    if let Some(k) = member.top_k {
        moments.truncate(k);
    }
    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    telemetry::counter(names::SERVER_COMPLETED).inc();
    shared
        .dataset_counters(&member.dataset)
        .completed
        .fetch_add(1, Ordering::Relaxed);
    shared
        .class_counters(&member.class)
        .completed
        .fetch_add(1, Ordering::Relaxed);
    telemetry::counter(&names::server_class_metric(&member.class, "completed")).inc();
    let _ = member.tx.send(Ok(QueryResult {
        moments,
        queue_wait,
        execute,
        batch_size,
        trace: member.trace.clone(),
    }));
}

/// Answers `member` with `err`, stamps the trace's outcome, and bumps
/// the matching failure counter. No-op if already answered; safe to
/// call from the worker, the deadline monitor, or the batch guard.
fn finish_err(shared: &Shared, member: &Member, err: EngineError) {
    if !member.claim() {
        return;
    }
    let per_dataset = shared.dataset_counters(&member.dataset);
    match &err {
        EngineError::DeadlineExceeded => {
            shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
            per_dataset.timed_out.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_TIMED_OUT).inc();
            member.trace.set_outcome(TraceOutcome::DeadlineExceeded);
        }
        EngineError::Cancelled => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            per_dataset.failed.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_FAILED).inc();
            telemetry::counter(names::SERVER_SHED_CANCELLED).inc();
            member.trace.set_outcome(TraceOutcome::Cancelled);
        }
        EngineError::ShuttingDown => {
            // A query drained at shutdown after admission.
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            per_dataset.failed.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_FAILED).inc();
            telemetry::counter(names::SERVER_SHED_SHUTDOWN).inc();
            member.trace.set_outcome(TraceOutcome::Shed);
        }
        _ => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            per_dataset.failed.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_FAILED).inc();
            member.trace.set_outcome(TraceOutcome::Failed);
        }
    }
    let _ = member.tx.send(Err(err));
}

#[cfg(test)]
mod sched_tests {
    use super::*;

    fn job(dataset: &str, priority: i32, seq: u64, deadline: Option<Duration>) -> Job {
        let cancel = match deadline {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        };
        // The receiver is dropped: these jobs are only ordered, never
        // executed or answered.
        let (tx, _) = mpsc::channel();
        Job {
            dataset: dataset.to_string(),
            class: DEFAULT_CLASS.to_string(),
            priority,
            seq,
            query: Clip::new(640.0, 480.0, Vec::new()),
            top_k: None,
            min_end: None,
            cancel,
            enqueued_at: Instant::now(),
            trace: TraceContext::new(),
            tx,
        }
    }

    #[test]
    fn default_policy_picks_fifo_order() {
        let policy = SchedPolicy::default();
        let queue: VecDeque<Job> = [job("a", 0, 1, None), job("a", 0, 2, None)].into();
        assert_eq!(pick_index(&queue, &policy, Instant::now()), Some(0));
    }

    #[test]
    fn higher_priority_jumps_the_queue() {
        let policy = SchedPolicy::default();
        let queue: VecDeque<Job> = [
            job("a", 0, 1, None),
            job("a", 5, 2, None),
            job("a", 1, 3, None),
        ]
        .into();
        assert_eq!(pick_index(&queue, &policy, Instant::now()), Some(1));
    }

    #[test]
    fn earlier_deadline_breaks_priority_ties() {
        let policy = SchedPolicy::default();
        let queue: VecDeque<Job> = [
            job("a", 0, 1, None),
            job("a", 0, 2, Some(Duration::from_secs(60))),
            job("a", 0, 3, Some(Duration::from_secs(30))),
        ]
        .into();
        assert_eq!(pick_index(&queue, &policy, Instant::now()), Some(2));
    }

    #[test]
    fn aging_credit_promotes_old_jobs() {
        let policy = SchedPolicy {
            aging_ms: 10,
            ..Default::default()
        };
        let mut old = job("a", 0, 1, None);
        old.enqueued_at = Instant::now() - Duration::from_millis(200);
        let queue: VecDeque<Job> = [job("a", 5, 2, None), old].into();
        // 200ms / 10ms = +20 credit beats base priority 5.
        assert_eq!(pick_index(&queue, &policy, Instant::now()), Some(1));
    }

    #[test]
    fn fifo_mode_ignores_priorities() {
        let policy = SchedPolicy::fifo();
        let queue: VecDeque<Job> = [job("a", 0, 1, None), job("a", 99, 2, None)].into();
        assert_eq!(pick_index(&queue, &policy, Instant::now()), Some(0));
    }

    #[test]
    fn form_batch_preserves_leftover_order() {
        // Mixed datasets: the batch takes a's in order, leaves b's (and
        // the overflow a) in their original relative order.
        let policy = SchedPolicy::fifo();
        let mut queue: VecDeque<Job> = [
            job("b", 0, 2, None),
            job("a", 0, 3, None),
            job("b", 0, 4, None),
            job("a", 0, 5, None),
            job("a", 0, 6, None),
            job("b", 0, 7, None),
        ]
        .into();
        let head = job("a", 0, 1, None);
        let batch = form_batch(&mut queue, head, 3, &policy, None, Instant::now());
        assert_eq!(batch.iter().map(|j| j.seq).collect::<Vec<_>>(), [1, 3, 5]);
        assert_eq!(
            queue.iter().map(|j| j.seq).collect::<Vec<_>>(),
            [2, 4, 6, 7],
            "non-members keep their relative order"
        );
    }

    #[test]
    fn form_batch_respects_fused_limit() {
        let policy = SchedPolicy::fifo();
        let mut queue: VecDeque<Job> = (2..10).map(|s| job("a", 0, s, None)).collect();
        let batch = form_batch(
            &mut queue,
            job("a", 0, 1, None),
            4,
            &policy,
            None,
            Instant::now(),
        );
        assert_eq!(batch.len(), 4);
        assert_eq!(queue.len(), 5);
    }

    #[test]
    fn deadline_aware_formation_skips_tight_margins() {
        let policy = SchedPolicy::default();
        let mut queue: VecDeque<Job> = [
            job("a", 0, 2, Some(Duration::from_millis(5))),
            job("a", 0, 3, Some(Duration::from_secs(120))),
            job("a", 0, 4, None),
        ]
        .into();
        // Estimated scan of 1s: the 5ms-margin job must not fuse; the
        // 120s-margin and deadline-less jobs may.
        let est = Some(Duration::from_secs(1));
        let batch = form_batch(
            &mut queue,
            job("a", 0, 1, None),
            8,
            &policy,
            est,
            Instant::now(),
        );
        assert_eq!(batch.iter().map(|j| j.seq).collect::<Vec<_>>(), [1, 3, 4]);
        assert_eq!(queue.iter().map(|j| j.seq).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn scoped_jobs_only_fuse_with_equal_scopes() {
        let policy = SchedPolicy::fifo();
        let mut j2 = job("a", 0, 2, None);
        j2.min_end = Some(100);
        let mut j3 = job("a", 0, 3, None);
        j3.min_end = Some(200);
        let j4 = job("a", 0, 4, None);
        let mut queue: VecDeque<Job> = [j2, j3, j4].into();
        let mut head = job("a", 0, 1, None);
        head.min_end = Some(100);
        let batch = form_batch(&mut queue, head, 8, &policy, None, Instant::now());
        assert_eq!(batch.iter().map(|j| j.seq).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(
            queue.iter().map(|j| j.seq).collect::<Vec<_>>(),
            [3, 4],
            "different or absent scopes stay queued"
        );
    }

    #[test]
    fn fifo_mode_fuses_regardless_of_margin() {
        let policy = SchedPolicy::fifo();
        let mut queue: VecDeque<Job> = [job("a", 0, 2, Some(Duration::from_millis(5)))].into();
        let est = Some(Duration::from_secs(1));
        let batch = form_batch(
            &mut queue,
            job("a", 0, 1, None),
            8,
            &policy,
            est,
            Instant::now(),
        );
        assert_eq!(batch.len(), 2);
    }
}
