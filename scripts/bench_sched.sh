#!/usr/bin/env bash
# Scheduler acceptance check: runs the mixed-deadline workload bench
# (open-loop bulk backlog vs an interactive deadline class, FIFO vs the
# deadline/priority policy) and gates on the interactive p99 improving
# by at least $SKETCHQL_SCHED_P99_MIN (default 2x), on total throughput
# holding at least $SKETCHQL_SCHED_TPUT_MIN of FIFO (default 0.85), and
# on byte-identical per-query results under both policies. Writes the
# per-policy numbers and the two ratios to BENCH_sched.json.
#
# The throughput bar is 0.85, not 1.0, because prioritizing interactive
# queries has a real, bounded cost on a saturated box: serving each one
# the moment a worker frees means it runs as a solo scan, where FIFO
# lets interactive queries pile up behind the backlog and fuse with
# each other. Measured cost is ~5-10%; the gate fails if it ever grows
# past 15%.
#
#   scripts/bench_sched.sh                              # full load (16 interactive queries)
#   SKETCHQL_BENCH_QUICK=1 scripts/bench_sched.sh       # fast smoke run (6)
#
# Under FIFO the interactive query waits behind the whole bulk backlog;
# under the deadline policy its class priority and deadline put it at
# the head of the queue (see crates/bench/benches/sched.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_P99_RATIO="${SKETCHQL_SCHED_P99_MIN:-2}"
MIN_TPUT_RATIO="${SKETCHQL_SCHED_TPUT_MIN:-0.85}"
OUT_JSON="${SKETCHQL_SCHED_BENCH_JSON:-BENCH_sched.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

echo "== sched bench (FIFO vs deadline policy, mixed workload, $(nproc) cpu(s))"
cargo bench -p sketchql-bench --bench sched | tee "$log"

echo
awk -v minp99="$MIN_P99_RATIO" -v mintput="$MIN_TPUT_RATIO" -v out="$OUT_JSON" \
    -v quick="${SKETCHQL_BENCH_QUICK:-0}" -v ncpu="$(nproc)" '
    /^BENCH sched\/(fifo|deadline) / {
        id = $2
        sub(/^sched\//, "", id)
        for (i = 3; i <= NF; i++) {
            if ($i ~ /^qps=/)          { sub(/^qps=/, "", $i);          qps[id] = $i }
            if ($i ~ /^tight_p50_ms=/) { sub(/^tight_p50_ms=/, "", $i); p50[id] = $i }
            if ($i ~ /^tight_p99_ms=/) { sub(/^tight_p99_ms=/, "", $i); p99[id] = $i }
            if ($i ~ /^tight=/)        { sub(/^tight=/, "", $i);        tight = $i }
        }
    }
    /^BENCH sched\/gate / {
        for (i = 3; i <= NF; i++) {
            if ($i ~ /^p99_ratio=/)  { sub(/^p99_ratio=/, "", $i);  p99_ratio = $i }
            if ($i ~ /^tput_ratio=/) { sub(/^tput_ratio=/, "", $i); tput_ratio = $i }
            if ($i ~ /^identical=/)  { sub(/^identical=/, "", $i);  identical = $i }
        }
    }
    END {
        if (!("fifo" in p99) || !("deadline" in p99) || p99["deadline"] <= 0) {
            print "missing sched/{fifo,deadline} tight_p99_ms"
            exit 2
        }
        printf "fifo:     tight p50 %.0fms  p99 %.0fms  %.2f qps\n", \
               p50["fifo"], p99["fifo"], qps["fifo"]
        printf "deadline: tight p50 %.0fms  p99 %.0fms  %.2f qps\n", \
               p50["deadline"], p99["deadline"], qps["deadline"]
        printf "tight p99 improvement: %.2fx (bar: >=%sx), throughput held: %.2f (bar: >=%s), identical results: %s\n", \
               p99_ratio, minp99, tput_ratio, mintput, (identical == 1) ? "yes" : "NO"
        printf "{\n" \
               "  \"bench\": \"sched\",\n" \
               "  \"quick\": %s,\n" \
               "  \"cpus\": %s,\n" \
               "  \"tight_queries\": %s,\n" \
               "  \"fifo_qps\": %.3f,\n" \
               "  \"fifo_tight_p50_ms\": %s,\n" \
               "  \"fifo_tight_p99_ms\": %s,\n" \
               "  \"deadline_qps\": %.3f,\n" \
               "  \"deadline_tight_p50_ms\": %s,\n" \
               "  \"deadline_tight_p99_ms\": %s,\n" \
               "  \"p99_ratio\": %s,\n" \
               "  \"min_p99_ratio\": %s,\n" \
               "  \"tput_ratio\": %s,\n" \
               "  \"min_tput_ratio\": %s,\n" \
               "  \"identical\": %s\n" \
               "}\n", (quick != 0) ? "true" : "false", ncpu, tight, \
               qps["fifo"], p50["fifo"], p99["fifo"], \
               qps["deadline"], p50["deadline"], p99["deadline"], \
               p99_ratio, minp99, tput_ratio, mintput, \
               (identical == 1) ? "true" : "false" > out
        printf "wrote %s\n", out
        if (identical != 1) exit 3
        if (p99_ratio + 0.0 < minp99 + 0.0) exit 1
        exit (tput_ratio + 0.0 >= mintput + 0.0) ? 0 : 1
    }
' "$log"
