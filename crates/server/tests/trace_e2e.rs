//! End-to-end tracing tests: a query over the wire leaves one coherent
//! span tree fetchable through the `Trace` request, shed queries still
//! reach the flight recorder, old (v2) clients interoperate with the v3
//! protocol, and the standalone scrape listener serves Prometheus text.

mod common;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sketchql_datasets::{query_clip, EventKind};
use sketchql_server::{Client, Engine, EngineConfig, MetricsListener, QuerySpec, Response, Server};
use sketchql_telemetry as tel;

use common::{tiny_model, two_datasets};

fn start_server(workers: usize) -> Server {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers,
            ..Default::default()
        },
    );
    Server::start(engine, "127.0.0.1:0").expect("bind ephemeral port")
}

/// The tentpole, end to end: the client mints a trace id, the query runs
/// over the wire, and the `Trace` request returns one span tree under
/// that id covering queue wait, execution, the matcher stages, and
/// response serialization.
#[test]
fn wire_query_yields_a_fetchable_span_tree() {
    let server = start_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let outcome = client
        .query_event("alpha", "left_turn", Some(5), None)
        .unwrap();
    assert_ne!(outcome.trace_id, 0, "server must echo a trace id");

    let traces = client.trace(Some(outcome.trace_id), None).unwrap();
    if !tel::is_enabled() {
        assert!(traces.is_empty());
        server.shutdown();
        return;
    }
    assert_eq!(traces.len(), 1, "exactly one trace under the client's id");
    let trace = &traces[0];
    assert_eq!(trace.trace_id, outcome.trace_id);
    assert_eq!(trace.label, "alpha");
    assert_eq!(trace.outcome, "completed");
    assert!(trace.batch_size >= 1);
    assert!(trace.total_nanos > 0);

    // The span tree covers the whole query path.
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    for required in [
        tel::names::SERVER_QUEUE_WAIT,
        tel::names::SERVER_EXECUTE,
        tel::names::MATCHER_SEARCH,
        tel::names::MATCHER_PREPARE,
        tel::names::MATCHER_SCAN,
        tel::names::MATCHER_EMBED,
        tel::names::MATCHER_RANK,
        tel::names::SERVER_SERIALIZE,
    ] {
        assert!(
            names.contains(&required),
            "missing span {required}: {names:?}"
        );
    }
    // Stage structure: matcher stages nest under the worker's execute
    // span, and every span fits inside the trace.
    let execute = trace
        .spans
        .iter()
        .find(|s| s.name == tel::names::SERVER_EXECUTE)
        .unwrap();
    assert_eq!(execute.depth, 0);
    let search = trace
        .spans
        .iter()
        .find(|s| s.name == tel::names::MATCHER_SEARCH)
        .unwrap();
    assert!(search.depth > execute.depth);
    for span in &trace.spans {
        assert!(
            span.start_nanos + span.nanos <= trace.total_nanos + trace.total_nanos / 10,
            "span {} [{}, +{}] escapes the trace ({} ns total)",
            span.name,
            span.start_nanos,
            span.nanos,
            trace.total_nanos
        );
    }

    // The depth-0 stages (queue wait, execute, serialize) tile the
    // query: their union accounts for nearly all of the wall clock. The
    // strict budget is 5%; allow more slack here because parallel test
    // binaries can preempt the worker between stages.
    let mut intervals: Vec<(u64, u64)> = trace
        .spans
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| (s.start_nanos, s.start_nanos + s.nanos))
        .collect();
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = 0u64;
    for (start, end) in intervals {
        let start = start.max(cursor);
        if end > start {
            covered += end - start;
            cursor = end;
        }
    }
    assert!(
        covered <= trace.total_nanos,
        "stage union {covered} exceeds wall clock {}",
        trace.total_nanos
    );
    assert!(
        covered as f64 >= 0.75 * trace.total_nanos as f64,
        "stage union {covered} covers too little of the {} ns wall clock",
        trace.total_nanos
    );

    // The same trace also shows up in a recent-traces listing.
    let recent = client.trace(None, Some(64)).unwrap();
    assert!(recent.iter().any(|t| t.trace_id == outcome.trace_id));

    // And the wire metrics snapshot carries the new series.
    let prom = client.metrics_text().unwrap();
    assert!(prom.contains("sketchql_server_queue_wait_ms_bucket"));
    assert!(prom.contains("sketchql_server_fused_batch_size"));
    assert!(prom.contains("sketchql_server_queue_depth"));

    server.shutdown();
}

/// A query shed at admission (queue full) still finalizes its trace —
/// the flight recorder keeps evidence of queries that never ran.
#[test]
fn shed_queries_leave_a_trace_with_a_shed_outcome() {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            queue_depth: 0,
            ..Default::default()
        },
    );
    let shed_id = tel::mint_trace_id();
    let mut spec = QuerySpec::new("alpha", query_clip(EventKind::LeftTurn));
    spec.trace = Some(shed_id);
    let err = engine.execute(spec);
    assert!(err.is_err(), "zero-depth queue must shed the query");
    if tel::is_enabled() {
        let trace = tel::flight_recorder()
            .find(shed_id)
            .expect("shed query must still reach the flight recorder");
        assert_eq!(trace.outcome, tel::TraceOutcome::Shed);
        assert_eq!(trace.label, "alpha");
    }
    engine.shutdown();
}

/// A v2 client — no `trace_id` in its Query, no trace fields in the
/// response shapes it knows — still round-trips query and stats
/// responses against a v3 server, over a raw socket so nothing from the
/// v3 client library leaks in.
#[test]
fn v2_wire_client_interoperates_with_a_v3_server() {
    let server = start_server(1);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();

    // Exactly what a v2 client sends: no trace_id field at all.
    stream
        .write_all(
            b"{\"Query\":{\"dataset\":\"alpha\",\"event\":\"left_turn\",\"clip\":null,\
              \"top_k\":3,\"deadline_ms\":null}}\n",
        )
        .unwrap();
    stream.flush().unwrap();
    reader.read_line(&mut line).unwrap();
    // The v3 response parses under the v3 enum (trace_id present)...
    let resp: Response = serde_json::from_str(line.trim()).unwrap();
    let Response::Moments {
        moments, trace_id, ..
    } = resp
    else {
        panic!("expected Moments, got {line:?}");
    };
    assert!(!moments.is_empty());
    assert_ne!(trace_id, 0, "server mints an id when the client sends none");
    // ...and a v2 client's tolerant parser simply skips the extra
    // `trace_id` key: the v2-visible fields are all present.
    assert!(line.contains("\"moments\""));
    assert!(line.contains("\"queue_wait_ms\""));
    assert!(line.contains("\"batch_size\""));

    line.clear();
    stream.write_all(b"\"Stats\"\n").unwrap();
    stream.flush().unwrap();
    reader.read_line(&mut line).unwrap();
    let resp: Response = serde_json::from_str(line.trim()).unwrap();
    assert!(matches!(resp, Response::Stats { .. }));

    server.shutdown();
}

/// The standalone scrape listener answers plain HTTP with the full
/// Prometheus exposition, independent of the wire server.
#[test]
fn scrape_listener_serves_prometheus_text() {
    // Touch a metric so the exposition is non-empty even if this test
    // runs before any query-driven test.
    tel::counter("test.scrape.touch").inc();

    let listener = MetricsListener::start("127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(listener.local_addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .unwrap();
    stream.flush().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    listener.shutdown();

    assert!(
        response.starts_with("HTTP/1.0 200 OK"),
        "unexpected status line: {response:?}"
    );
    assert!(response.contains("Content-Type: text/plain"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("");
    if tel::is_enabled() {
        assert!(body.contains("test_scrape_touch"));
    } else {
        assert!(body.is_empty());
    }
}
