//! Training-data throughput: 3D scene integration, camera recording, and
//! contrastive pair generation (the simulator is the data engine behind
//! the zero-shot model — T2/A1 depend on its speed).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql_bench::harness::Harness;
use sketchql_simulator::{
    templates, Agent, Camera, CameraRig, PairGenerator, Scene3D, ShakeConfig,
};
use sketchql_trajectory::{ObjectClass, Point2, Point3};
use std::hint::black_box;

fn bench_simulator(h: &mut Harness) {
    let scene = Scene3D::new(30.0)
        .with_object(
            Agent::with_priors(ObjectClass::Car),
            templates::left_turn(
                Point2::new(-15.0, 0.0),
                0.0,
                8.0,
                std::f32::consts::FRAC_PI_2,
            ),
        )
        .with_object(
            Agent::with_priors(ObjectClass::Person),
            templates::straight_pass(Point2::new(0.0, -10.0), 1.2, 1.4, 90),
        );

    h.bench("scene_record_90_frames", |b| {
        b.iter(|| {
            let cam = Camera::look_at(Point3::new(0.0, -40.0, 25.0), scene.center());
            let mut rig = CameraRig::new(cam, ShakeConfig::default());
            let mut rng = StdRng::seed_from_u64(1);
            black_box(scene.record(&mut rig, &mut rng))
        })
    });

    let gen = PairGenerator::default_generator();
    let mut group = h.group("pair_generation");
    group.sample_size(20);
    group.bench("sample_pair", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(gen.sample_pair(&mut rng)))
    });
    group.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_simulator(&mut h);
}
