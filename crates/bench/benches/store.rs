//! Store bench — index-backed retrieval vs the cached full scan.
//!
//! Ingests every sliding window of a fixture video into a persistent
//! embedding store once (the offline cost), then compares query latency
//! of the default cached+batched scan against the ANN-probe + exact
//! re-rank store path (`scripts/bench_store.sh` gates the speedup and
//! the recall). Before timing anything, the bench asserts the hard
//! invariant: every moment the store path returns carries a score
//! bit-identical to the scan's score for that (window, track) pair.
//!
//! Besides the usual `BENCH` lines this prints one `STORE` line:
//!
//! ```text
//! STORE store_recall recall_at_10=0.950 queries=4 probed_frac=0.18
//! ```

use sketchql::{ingest, CancelToken, IngestConfig, Matcher, MatcherConfig, RetrievedMoment};
use sketchql::{DatasetStore, VideoIndex};
use sketchql_bench::harness::Harness;
use sketchql_bench::{bench_model, bench_video};
use sketchql_datasets::{query_clip, EventKind};
use std::hint::black_box;

/// Single-object query kinds exercised by the recall sweep (multi-object
/// sketches always fall back to the scan, so they prove nothing here).
const QUERIES: &[EventKind] = &[
    EventKind::LeftTurn,
    EventKind::StopAndGo,
    EventKind::LaneChange,
    EventKind::UTurn,
];

fn key(m: &RetrievedMoment) -> (u32, u32, Vec<u64>) {
    (m.start, m.end, m.track_ids.clone())
}

/// Recall@10 of the store path against the scan's top-10, plus the hard
/// bit-identity check on every overlapping moment.
fn recall_sweep(
    m: &Matcher<sketchql::LearnedSimilarity>,
    index: &VideoIndex,
    store: &DatasetStore,
) -> (f64, usize) {
    let mut hits = 0usize;
    let mut total = 0usize;
    for &kind in QUERIES {
        let query = query_clip(kind);
        let scan = m.search(index, &query).expect("scan");
        let via = m
            .search_with_store(index, store, &query, &CancelToken::none())
            .expect("store search");
        assert!(via.from_store, "{kind:?} unexpectedly fell back");
        for a in &via.moments {
            if let Some(b) = scan.iter().find(|b| key(b) == key(a)) {
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "{kind:?}: store score diverged from scan at bit level"
                );
            }
        }
        let top: Vec<_> = scan.iter().take(10).map(key).collect();
        total += top.len();
        hits += top
            .iter()
            .filter(|k| via.moments.iter().take(10).any(|m| &key(m) == *k))
            .count();
    }
    (hits as f64 / total.max(1) as f64, QUERIES.len())
}

fn main() {
    println!(
        "# store benches (telemetry feature: {})",
        if cfg!(feature = "telemetry") {
            "on"
        } else {
            "off"
        }
    );
    let quick = std::env::var_os("SKETCHQL_BENCH_QUICK").is_some();
    let model = bench_model();
    let video = bench_video(if quick { 1 } else { 2 }, 47);
    let index = VideoIndex::from_truth(&video);
    let m = Matcher::with_config(model.similarity(), MatcherConfig::default());

    let spans: Vec<u32> = QUERIES.iter().map(|&k| query_clip(k).span()).collect();
    let mut ingest_cfg = IngestConfig::from_matcher(&m.config, &spans);
    ingest_cfg.threads = 4;
    let started = std::time::Instant::now();
    let mut store = ingest(&m.sim, &index, "bench", &ingest_cfg);
    // Probe a quarter of the coarse lists: the re-rank is exact, so the
    // probe width only trades recall against probe time, and at 25% the
    // store path is still orders of magnitude from the encoder's cost.
    store.nprobe = (store.nlist().div_ceil(4)).max(8);
    println!(
        "# ingested {} vectors ({} ANN lists, nprobe {}) in {:.1}s",
        store.store.len(),
        store.nlist(),
        store.nprobe,
        started.elapsed().as_secs_f64()
    );

    let (recall, queries) = recall_sweep(&m, &index, &store);
    let probed_frac = {
        let probe = store.nprobe as f64 / store.nlist().max(1) as f64;
        probe.min(1.0)
    };
    println!("STORE store_recall recall_at_10={recall:.3} queries={queries} probed_frac={probed_frac:.2}");

    let query = query_clip(EventKind::LeftTurn);
    let mut h = Harness::from_env();
    let mut group = h.group("store_query");
    group.sample_size(10);
    group.bench("full_scan_cached", |b| {
        b.iter(|| black_box(m.search(&index, black_box(&query)).unwrap()))
    });
    group.bench("index_backed", |b| {
        b.iter(|| {
            black_box(
                m.search_with_store(&index, &store, black_box(&query), &CancelToken::none())
                    .unwrap(),
            )
        })
    });
    group.finish();
}
