//! Cooperative cancellation for long-running searches.
//!
//! A [`CancelToken`] is a cheap, cloneable handle combining an explicit
//! cancel flag with an optional wall-clock deadline. The Matcher's
//! sliding-window scan polls the token between units of work
//! ([`Matcher::search_with_cancel`](crate::Matcher::search_with_cancel)),
//! so a query whose client gave up — or whose deadline passed — stops
//! consuming CPU promptly instead of running its scan to completion.
//!
//! Tokens are the contract between the query engine (`sketchql-server`)
//! and the core search path: the engine stamps each admitted query with a
//! deadline token, and a timed-out query frees its worker at the next
//! poll point rather than at the end of the scan.
//!
//! The null token ([`CancelToken::none`]) carries no state and makes
//! every poll a no-op, so un-deadlined callers pay nothing.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a search stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (client disconnect, shutdown).
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Cancelled => write!(f, "cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle: an explicit flag plus an optional
/// deadline. All clones share the same flag, so cancelling any clone
/// cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels; polls are free.
    pub const fn none() -> Self {
        CancelToken { inner: None }
    }

    /// A token with no deadline that cancels only via
    /// [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that expires `timeout` from now (and can also be cancelled
    /// explicitly).
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// A token that expires at `deadline`.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Trips the cancel flag on this token and every clone of it. A null
    /// token ignores the call.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// The token's deadline, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Polls the token: `Err` once cancelled or past the deadline. The
    /// explicit flag wins over the deadline when both apply.
    #[inline]
    pub fn check(&self) -> Result<(), CancelReason> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.flag.load(Ordering::Relaxed) {
            return Err(CancelReason::Cancelled);
        }
        match inner.deadline {
            Some(d) if Instant::now() >= d => Err(CancelReason::DeadlineExceeded),
            _ => Ok(()),
        }
    }

    /// Whether the token has tripped (flag or deadline).
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_token_never_cancels() {
        let t = CancelToken::none();
        t.cancel();
        assert_eq!(t.check(), Ok(()));
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert_eq!(clone.check(), Ok(()));
        t.cancel();
        assert_eq!(clone.check(), Err(CancelReason::Cancelled));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline_at(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.check(), Err(CancelReason::DeadlineExceeded));
        let far = CancelToken::with_timeout(Duration::from_secs(3600));
        assert_eq!(far.check(), Ok(()));
        assert!(far.deadline().is_some());
    }

    #[test]
    fn explicit_flag_wins_over_deadline() {
        let t = CancelToken::with_deadline_at(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.check(), Err(CancelReason::Cancelled));
    }

    #[test]
    fn default_is_null() {
        assert_eq!(CancelToken::default().check(), Ok(()));
    }
}
