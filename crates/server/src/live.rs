//! Standing queries: the registration/notification half of live ingest.
//!
//! A *registration* is a sketch the server re-evaluates every time its
//! dataset grows ([`Engine::reload_dataset`](crate::Engine::reload_dataset)
//! swaps in the appended store and triggers evaluation). Each
//! registration carries a **watermark** — the frame count it has been
//! evaluated through. An ingest epoch that grows the dataset from
//! `watermark` to `frames` is evaluated as one epoch-scoped query
//! (`min_end = watermark`): windows fire in the epoch that first covers
//! their last frame, so consecutive epochs partition the window grid —
//! a standing query sees exactly the matches an offline query over the
//! appended range returns, no duplicates and no misses. Scores come
//! through the same store probe + exact re-rank path as interactive
//! queries, so they are bit-identical to offline results.
//!
//! Matches wait in a bounded per-registration queue until the
//! subscriber polls them ([`Request::Notifications`](crate::Request)).
//! When the queue is full the *oldest* match is shed and the
//! registration's `dropped` counter (cumulative, also served on the
//! wire) records the loss — an absent subscriber costs bounded memory,
//! never unbounded growth.
//!
//! The registry persists to JSON (atomic tmp + rename) whenever a
//! registration or watermark changes, so a restarted server resumes
//! every standing query; evaluation catches up registrations whose
//! watermark trails the reloaded dataset (appends that happened while
//! the server was down). Buffered, not-yet-polled matches are the one
//! thing a restart loses — the queue is delivery state, not history.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use sketchql::RetrievedMoment;
use sketchql_telemetry::{self as telemetry, names};
use sketchql_trajectory::{Clip, TrackId};

/// Admission class standing-query evaluation runs under. Auto-declared
/// at engine start (unless the policy declares it itself) with base
/// priority [`LIVE_PRIORITY`], so evaluation flows through the same
/// bounded queue as interactive traffic but never jumps ahead of it.
pub const LIVE_CLASS: &str = "live";

/// Base priority of the auto-declared [`LIVE_CLASS`]: far below any
/// interactive default, so live evaluation only runs when workers
/// would otherwise idle (aging still bounds its starvation).
pub const LIVE_PRIORITY: i32 = -100;

/// Most matches a registration buffers before shedding the oldest.
pub const NOTIFY_QUEUE_CAP: usize = 256;

/// One match delivered to a standing query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveMatch {
    /// First frame of the matched moment.
    pub start: u32,
    /// Last frame (inclusive).
    pub end: u32,
    /// Similarity score in `[0, 1]` — bit-identical to the score an
    /// offline query over the same range reports.
    pub score: f32,
    /// Tracks bound to the query's object slots.
    pub track_ids: Vec<TrackId>,
    /// Ingest epoch whose evaluation produced this match.
    pub epoch: u64,
}

/// A drained batch of notifications for one registration.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveNotifications {
    /// The registration polled.
    pub registration_id: u64,
    /// Latest ingest epoch evaluated for this registration.
    pub epoch: u64,
    /// Frames evaluated through (matches never lag this watermark).
    pub watermark: u32,
    /// Cumulative matches shed because the queue overflowed.
    pub dropped: u64,
    /// Drained matches, oldest first.
    pub matches: Vec<LiveMatch>,
}

/// A freshly registered standing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRegistration {
    /// Registry-assigned id; poll and unregister with it.
    pub id: u64,
    /// Frames the dataset had at registration — only appends beyond
    /// this watermark notify.
    pub watermark: u32,
}

/// Outcome of a live reload: the committed epoch plus how much
/// standing-query work it triggered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveReload {
    /// The reloaded dataset.
    pub dataset: String,
    /// Ingest epoch of the swapped-in store.
    pub epoch: u64,
    /// Frames the dataset now serves.
    pub frames: u32,
    /// Registrations whose watermark trailed the new frame count.
    pub evaluated: usize,
    /// Matches enqueued across those evaluations.
    pub delivered: usize,
}

/// One evaluation the registry owes: registration `id` has only been
/// evaluated through `watermark` on a dataset that has since grown.
pub(crate) struct DueEval {
    pub id: u64,
    pub dataset: String,
    pub query: Clip,
    pub top_k: Option<usize>,
    pub watermark: u32,
}

struct RegEntry {
    dataset: String,
    query: Clip,
    min_score: Option<f32>,
    top_k: Option<usize>,
    watermark: u32,
    epoch: u64,
    queue: VecDeque<LiveMatch>,
    dropped: u64,
}

struct RegistryState {
    next_id: u64,
    regs: BTreeMap<u64, RegEntry>,
}

/// Durable mirror of one registration (queues are delivery state and
/// deliberately not persisted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SavedRegistration {
    id: u64,
    dataset: String,
    query: Clip,
    min_score: Option<f32>,
    top_k: Option<usize>,
    watermark: u32,
    epoch: u64,
    dropped: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SavedRegistry {
    next_id: u64,
    registrations: Vec<SavedRegistration>,
}

/// The standing-query registry: registrations, their watermarks, and
/// their bounded notification queues, behind one mutex. Owned by the
/// engine; persistence is best-effort (a failed save warns and keeps
/// serving — durability degrades, correctness doesn't).
pub(crate) struct LiveRegistry {
    state: Mutex<RegistryState>,
    path: Option<PathBuf>,
}

impl LiveRegistry {
    /// Opens the registry, restoring any registrations saved at `path`.
    /// A missing file starts empty; an unreadable one warns and starts
    /// empty (the server must come up).
    pub(crate) fn new(path: Option<PathBuf>) -> LiveRegistry {
        let mut state = RegistryState {
            next_id: 0,
            regs: BTreeMap::new(),
        };
        if let Some(p) = &path {
            match std::fs::read_to_string(p) {
                Ok(text) => match serde_json::from_str::<SavedRegistry>(&text) {
                    Ok(saved) => {
                        state.next_id = saved.next_id;
                        for r in saved.registrations {
                            state.regs.insert(
                                r.id,
                                RegEntry {
                                    dataset: r.dataset,
                                    query: r.query,
                                    min_score: r.min_score,
                                    top_k: r.top_k,
                                    watermark: r.watermark,
                                    epoch: r.epoch,
                                    queue: VecDeque::new(),
                                    dropped: r.dropped,
                                },
                            );
                        }
                    }
                    Err(e) => eprintln!(
                        "live registry {} unreadable, starting empty: {e}",
                        p.display()
                    ),
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => eprintln!(
                    "live registry {} unreadable, starting empty: {e}",
                    p.display()
                ),
            }
        }
        LiveRegistry {
            state: Mutex::new(state),
            path,
        }
    }

    /// Adds a registration watermarked at the dataset's current frame
    /// count (only future appends notify).
    pub(crate) fn register(
        &self,
        dataset: String,
        query: Clip,
        min_score: Option<f32>,
        top_k: Option<usize>,
        watermark: u32,
        epoch: u64,
    ) -> LiveRegistration {
        let mut st = self.state.lock().unwrap();
        st.next_id += 1;
        let id = st.next_id;
        st.regs.insert(
            id,
            RegEntry {
                dataset,
                query,
                min_score,
                top_k,
                watermark,
                epoch,
                queue: VecDeque::new(),
                dropped: 0,
            },
        );
        LiveRegistration { id, watermark }
    }

    /// Removes a registration; `false` if the id is unknown.
    pub(crate) fn unregister(&self, id: u64) -> bool {
        self.state.lock().unwrap().regs.remove(&id).is_some()
    }

    /// Live registrations.
    pub(crate) fn count(&self) -> usize {
        self.state.lock().unwrap().regs.len()
    }

    /// Drains up to `max` queued matches (oldest first); `None` if the
    /// id is unknown.
    pub(crate) fn drain(&self, id: u64, max: usize) -> Option<LiveNotifications> {
        let mut st = self.state.lock().unwrap();
        let e = st.regs.get_mut(&id)?;
        let n = e.queue.len().min(max.max(1));
        let matches: Vec<LiveMatch> = e.queue.drain(..n).collect();
        Some(LiveNotifications {
            registration_id: id,
            epoch: e.epoch,
            watermark: e.watermark,
            dropped: e.dropped,
            matches,
        })
    }

    /// Registrations owing an evaluation: watermark behind the current
    /// frame count of their (optionally filtered) dataset.
    pub(crate) fn due<F: Fn(&str) -> Option<u32>>(
        &self,
        only: Option<&str>,
        frames_of: F,
    ) -> Vec<DueEval> {
        let st = self.state.lock().unwrap();
        st.regs
            .iter()
            .filter_map(|(id, e)| {
                if only.is_some_and(|d| d != e.dataset) {
                    return None;
                }
                let frames = frames_of(&e.dataset)?;
                (e.watermark < frames).then(|| DueEval {
                    id: *id,
                    dataset: e.dataset.clone(),
                    query: e.query.clone(),
                    top_k: e.top_k,
                    watermark: e.watermark,
                })
            })
            .collect()
    }

    /// Commits one evaluation: enqueues the scoped query's matches
    /// (filtered by the registration's `min_score`, shedding the oldest
    /// past [`NOTIFY_QUEUE_CAP`]) and advances the watermark. Stale
    /// completions — the watermark moved since the evaluation was cut —
    /// are dropped whole rather than risking duplicate delivery.
    /// Returns the number of matches enqueued.
    pub(crate) fn complete(
        &self,
        id: u64,
        expect_watermark: u32,
        new_watermark: u32,
        epoch: u64,
        moments: Vec<RetrievedMoment>,
    ) -> usize {
        let mut st = self.state.lock().unwrap();
        let Some(e) = st.regs.get_mut(&id) else {
            return 0;
        };
        if e.watermark != expect_watermark {
            return 0;
        }
        let mut delivered = 0;
        for m in moments {
            if e.min_score.is_some_and(|s| m.score < s) {
                continue;
            }
            if e.queue.len() >= NOTIFY_QUEUE_CAP {
                e.queue.pop_front();
                e.dropped += 1;
                telemetry::counter(names::LIVE_DROPPED).inc();
            }
            e.queue.push_back(LiveMatch {
                start: m.start,
                end: m.end,
                score: m.score,
                track_ids: m.track_ids,
                epoch,
            });
            delivered += 1;
            telemetry::counter(names::LIVE_NOTIFICATIONS).inc();
        }
        e.watermark = new_watermark;
        e.epoch = epoch;
        delivered
    }

    /// Persists the registry (atomic tmp + rename). Best-effort: a
    /// failure warns on stderr and the server keeps running.
    pub(crate) fn save(&self) {
        let Some(path) = &self.path else { return };
        let saved = {
            let st = self.state.lock().unwrap();
            SavedRegistry {
                next_id: st.next_id,
                registrations: st
                    .regs
                    .iter()
                    .map(|(id, e)| SavedRegistration {
                        id: *id,
                        dataset: e.dataset.clone(),
                        query: e.query.clone(),
                        min_score: e.min_score,
                        top_k: e.top_k,
                        watermark: e.watermark,
                        epoch: e.epoch,
                        dropped: e.dropped,
                    })
                    .collect(),
            }
        };
        let json = match serde_json::to_string(&saved) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("live registry encode failed: {e}");
                return;
            }
        };
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        if let Err(e) = std::fs::write(&tmp, json).and_then(|()| std::fs::rename(&tmp, path)) {
            eprintln!("live registry save to {} failed: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clip() -> Clip {
        Clip::new(640.0, 480.0, Vec::new())
    }

    fn moment(start: u32, end: u32, score: f32) -> RetrievedMoment {
        RetrievedMoment {
            start,
            end,
            score,
            track_ids: vec![1],
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("skql-registry-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn registry_round_trips_through_its_save_file() {
        let path = temp_path("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let reg = LiveRegistry::new(Some(path.clone()));
            let a = reg.register("traffic".into(), clip(), Some(0.5), Some(3), 900, 2);
            let b = reg.register("plaza".into(), clip(), None, None, 300, 0);
            assert_eq!((a.id, b.id), (1, 2));
            reg.complete(a.id, 900, 1200, 3, vec![moment(950, 1000, 0.9)]);
            reg.save();
        }
        let reg = LiveRegistry::new(Some(path.clone()));
        assert_eq!(reg.count(), 2);
        // Watermarks survive; queued-but-unpolled matches deliberately
        // don't (the queue is delivery state, not history).
        let n = reg.drain(1, usize::MAX).unwrap();
        assert_eq!((n.watermark, n.epoch), (1200, 3));
        assert!(n.matches.is_empty());
        // Fresh ids keep counting past restored ones.
        let c = reg.register("traffic".into(), clip(), None, None, 1200, 3);
        assert_eq!(c.id, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflow_sheds_oldest_and_counts_drops() {
        let reg = LiveRegistry::new(None);
        let r = reg.register("traffic".into(), clip(), None, None, 0, 0);
        let moments: Vec<RetrievedMoment> = (0..NOTIFY_QUEUE_CAP as u32 + 10)
            .map(|i| moment(i, i + 5, 0.5))
            .collect();
        let delivered = reg.complete(r.id, 0, 100, 1, moments);
        assert_eq!(delivered, NOTIFY_QUEUE_CAP + 10);
        let n = reg.drain(r.id, usize::MAX).unwrap();
        assert_eq!(n.matches.len(), NOTIFY_QUEUE_CAP);
        assert_eq!(n.dropped, 10, "oldest ten shed");
        // The survivors are the newest: the first queued match is #10.
        assert_eq!(n.matches[0].start, 10);
    }

    #[test]
    fn min_score_filters_and_stale_completion_is_ignored() {
        let reg = LiveRegistry::new(None);
        let r = reg.register("traffic".into(), clip(), Some(0.7), None, 0, 0);
        let delivered = reg.complete(
            r.id,
            0,
            100,
            1,
            vec![moment(0, 5, 0.9), moment(10, 15, 0.5)],
        );
        assert_eq!(delivered, 1, "below-threshold match filtered");
        // A completion cut against watermark 0 after the registry moved
        // to 100 must not deliver (or rewind the watermark).
        let stale = reg.complete(r.id, 0, 50, 1, vec![moment(20, 25, 0.99)]);
        assert_eq!(stale, 0);
        let n = reg.drain(r.id, usize::MAX).unwrap();
        assert_eq!(n.matches.len(), 1);
        assert_eq!(n.watermark, 100);
    }

    #[test]
    fn drain_respects_max_and_unknown_ids_are_none() {
        let reg = LiveRegistry::new(None);
        let r = reg.register("traffic".into(), clip(), None, None, 0, 0);
        reg.complete(
            r.id,
            0,
            100,
            1,
            (0..5).map(|i| moment(i, i + 2, 0.5)).collect(),
        );
        let first = reg.drain(r.id, 2).unwrap();
        assert_eq!(first.matches.len(), 2);
        let rest = reg.drain(r.id, usize::MAX).unwrap();
        assert_eq!(rest.matches.len(), 3);
        assert_eq!(rest.matches[0].start, 2, "drained oldest first");
        assert!(reg.drain(999, 1).is_none());
        assert!(reg.unregister(r.id));
        assert!(!reg.unregister(r.id));
    }
}
