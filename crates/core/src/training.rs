//! Zero-shot training pipeline for the trajectory encoder.
//!
//! Implements the paper's recipe end-to-end: sample random 3D events, record
//! each from multiple virtual cameras, extract clip features, and train the
//! transformer encoder with the NT-Xent contrastive objective so that views
//! of the same event embed close together and views of different events
//! embed far apart. **No real video or human label is involved** — this is
//! what makes SketchQL's retrieval zero-shot.

// Index arithmetic is clearer than iterator adapters in these numeric
// kernels.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sketchql_nn::{
    nt_xent, Adam, AdamConfig, EncoderConfig, Graph, ParamStore, Tensor, TrajectoryEncoder,
};
use sketchql_simulator::{PairGenConfig, PairGenerator, RandomSceneSampler, SamplerConfig};
use sketchql_telemetry::{self as telemetry, names};
use sketchql_trajectory::{extract_features, Clip, TOKEN_DIM};
use std::path::Path;

use crate::similarity::LearnedSimilarity;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Encoder architecture.
    pub encoder: EncoderConfig,
    /// Contrastive pairs per batch (negatives come from the same batch).
    pub batch_size: usize,
    /// Optimizer steps.
    pub steps: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// NT-Xent temperature.
    pub temperature: f32,
    /// RNG seed controlling initialization and data generation.
    pub seed: u64,
    /// Random-event sampler settings.
    pub sampler: SamplerConfig,
    /// Camera/recording settings for pair generation.
    pub pairgen: PairGenConfig,
    /// Include the x-mirrored copy of half the batch's pairs as additional
    /// batch items. Mirrored events differ only in chirality (left vs right
    /// turns), so they act as in-batch hard negatives that force the
    /// encoder to represent turn direction.
    pub mirror_negatives: bool,
}

impl Default for TrainingConfig {
    /// The full recipe found by the development sweep (see DESIGN.md §4.5):
    /// d_model 48, 3 layers, 2500 NT-Xent steps with sketchify/padding/
    /// mirror augmentation. Trains in a few minutes on a laptop CPU.
    fn default() -> Self {
        TrainingConfig {
            encoder: EncoderConfig {
                input_dim: TOKEN_DIM,
                d_model: 48,
                heads: 4,
                layers: 3,
                ff_hidden: 96,
                embed_dim: 48,
                steps: 32,
                ..Default::default()
            },
            batch_size: 24,
            steps: 2500,
            lr: 1e-3,
            temperature: 0.1,
            seed: 17,
            sampler: SamplerConfig::default(),
            pairgen: PairGenConfig {
                sketchify_prob: 0.6,
                ..Default::default()
            },
            mirror_negatives: true,
        }
    }
}

impl TrainingConfig {
    /// A smaller configuration (same architecture, fewer steps) that trains
    /// in about a minute; used where the full recipe is overkill.
    pub fn small() -> Self {
        TrainingConfig {
            steps: 1200,
            ..Default::default()
        }
    }

    /// An even smaller configuration for unit tests.
    pub fn tiny() -> Self {
        TrainingConfig {
            encoder: EncoderConfig {
                input_dim: TOKEN_DIM,
                d_model: 16,
                heads: 2,
                layers: 1,
                ff_hidden: 32,
                embed_dim: 16,
                steps: 16,
                ..Default::default()
            },
            batch_size: 8,
            steps: 40,
            // The tiny model exists to exercise machinery quickly; mirror
            // hard negatives make the objective too hard for it to show a
            // clean loss decrease in a handful of steps.
            mirror_negatives: false,
            ..Default::default()
        }
    }
}

/// A trained encoder: architecture + weights + training record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// The encoder (architecture and parameter names).
    pub encoder: TrajectoryEncoder,
    /// Trained weights.
    pub store: ParamStore,
    /// The configuration it was trained with.
    pub config: TrainingConfig,
    /// Per-step training loss.
    pub loss_history: Vec<f32>,
}

impl TrainedModel {
    /// Wraps this model as a [`LearnedSimilarity`] for the Matcher.
    pub fn similarity(&self) -> LearnedSimilarity {
        LearnedSimilarity::new(self.encoder.clone(), self.store.clone())
    }

    /// Extracts features and embeds a clip (`None` if the clip is empty or
    /// exceeds the object limit).
    pub fn embed(&self, clip: &Clip) -> Option<Vec<f32>> {
        self.similarity().embed(clip)
    }

    /// Saves the model as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a model from JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }

    /// Loads a cached model if `path` exists and matches `config`;
    /// otherwise trains and caches.
    pub fn load_or_train(path: &Path, config: TrainingConfig) -> Self {
        if let Ok(m) = TrainedModel::load(path) {
            if m.config == config {
                return m;
            }
        }
        let m = train(config);
        // Cache failures are non-fatal.
        let _ = m.save(path);
        m
    }
}

/// Converts a clip into the encoder's input tensor, or `None` when the clip
/// cannot be featurized.
pub fn clip_features_tensor(clip: &Clip, steps: usize) -> Option<Tensor> {
    let f = extract_features(clip, steps).ok()?;
    Some(Tensor::from_vec(steps, TOKEN_DIM, f.data))
}

/// Trains an encoder from scratch on simulator-generated contrastive pairs.
pub fn train(config: TrainingConfig) -> TrainedModel {
    train_with_callback(config, |_, _| {})
}

/// Like [`train`], invoking `progress(step, loss)` after each step.
pub fn train_with_callback(
    config: TrainingConfig,
    progress: impl FnMut(usize, f32),
) -> TrainedModel {
    train_with_schedule(config, sketchql_nn::LrSchedule::Constant, progress)
}

/// Like [`train`] with a learning-rate schedule (warmup/cosine/step decay)
/// applied on top of the config's base learning rate.
pub fn train_with_schedule(
    config: TrainingConfig,
    schedule: sketchql_nn::LrSchedule,
    mut progress: impl FnMut(usize, f32),
) -> TrainedModel {
    assert_eq!(
        config.encoder.input_dim, TOKEN_DIM,
        "encoder input must match TOKEN_DIM"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut store = ParamStore::new();
    let encoder = TrajectoryEncoder::new(&mut store, &mut rng, "enc", config.encoder.clone());
    let mut adam = Adam::new(AdamConfig {
        lr: config.lr,
        ..Default::default()
    });
    let generator = PairGenerator::new(RandomSceneSampler::new(config.sampler), config.pairgen);
    let steps = config.encoder.steps;

    let _run_span = telemetry::span(names::TRAINING_RUN);
    let steps_counter = telemetry::counter(names::TRAINING_STEPS);
    let examples_counter = telemetry::counter(names::TRAINING_EXAMPLES);
    let last_loss = telemetry::gauge(names::TRAINING_LAST_LOSS);
    let throughput = telemetry::gauge(names::TRAINING_EXAMPLES_PER_SEC);
    // Per-step wall time, 1ms..10s.
    let step_ms = telemetry::histogram(
        names::TRAINING_STEP_MS,
        &[1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0],
    );
    let run_start = std::time::Instant::now();
    let mut examples_total = 0u64;

    let mut loss_history = Vec::with_capacity(config.steps);
    for step in 0..config.steps {
        let step_start = std::time::Instant::now();
        // Sample a batch of (anchor, positive) views, skipping the rare
        // degenerate pair the featurizer rejects.
        let mut anchors_t = Vec::with_capacity(config.batch_size);
        let mut positives_t = Vec::with_capacity(config.batch_size);
        while anchors_t.len() < config.batch_size {
            let pair = generator.sample_pair(&mut rng);
            let (Some(a), Some(p)) = (
                clip_features_tensor(&pair.anchor, steps),
                clip_features_tensor(&pair.positive, steps),
            ) else {
                continue;
            };
            anchors_t.push(a);
            positives_t.push(p);
            // Mirror hard negatives: the mirrored pair is a *different*
            // event (opposite chirality), entering the batch as its own
            // positive pair and everyone else's negative.
            if config.mirror_negatives && anchors_t.len() < config.batch_size {
                let ma = pair.anchor.mirrored_x();
                let mp = pair.positive.mirrored_x();
                if let (Some(a), Some(p)) = (
                    clip_features_tensor(&ma, steps),
                    clip_features_tensor(&mp, steps),
                ) {
                    anchors_t.push(a);
                    positives_t.push(p);
                }
            }
        }

        let mut g = Graph::new(&store);
        let mut anchor_ids = Vec::with_capacity(config.batch_size);
        let mut positive_ids = Vec::with_capacity(config.batch_size);
        for (a, p) in anchors_t.into_iter().zip(positives_t) {
            let ai = g.input(a);
            let pi = g.input(p);
            anchor_ids.push(encoder.forward(&mut g, ai));
            positive_ids.push(encoder.forward(&mut g, pi));
        }
        let loss = nt_xent(&mut g, &anchor_ids, &positive_ids, config.temperature);
        let loss_val = g.tape.value(loss).item();
        let grads = g.grads_by_name(loss);
        adam.step_scaled(&mut store, &grads, schedule.multiplier(step));
        loss_history.push(loss_val);

        steps_counter.inc();
        let batch_examples = 2 * anchor_ids.len() as u64; // anchors + positives
        examples_counter.add(batch_examples);
        examples_total += batch_examples;
        last_loss.set(loss_val as f64);
        step_ms.observe(step_start.elapsed().as_secs_f64() * 1e3);
        let elapsed = run_start.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            throughput.set(examples_total as f64 / elapsed);
        }

        progress(step, loss_val);
    }

    TrainedModel {
        encoder,
        store,
        config,
        loss_history,
    }
}

/// Separation statistics of a model on freshly generated pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairEval {
    /// Mean cosine similarity of positive pairs.
    pub mean_positive: f32,
    /// Mean cosine similarity of negative (cross-event) pairs.
    pub mean_negative: f32,
    /// Fraction of anchors whose own positive outranks every negative
    /// (top-1 retrieval accuracy within the evaluation pool).
    pub top1_accuracy: f32,
}

/// Evaluates embedding quality on `n` held-out pairs generated from
/// `generator` with the given seed.
pub fn evaluate_pairs(
    model: &TrainedModel,
    generator: &PairGenerator,
    n: usize,
    seed: u64,
) -> PairEval {
    let mut rng = StdRng::seed_from_u64(seed);
    let steps = model.config.encoder.steps;
    let sim = model.similarity();
    let mut anchors = Vec::with_capacity(n);
    let mut positives = Vec::with_capacity(n);
    while anchors.len() < n {
        let pair = generator.sample_pair(&mut rng);
        let (Some(af), Some(pf)) = (
            clip_features_tensor(&pair.anchor, steps),
            clip_features_tensor(&pair.positive, steps),
        ) else {
            continue;
        };
        anchors.push(model.encoder.embed(&sim.store, &af));
        positives.push(model.encoder.embed(&sim.store, &pf));
    }

    let mut pos_sum = 0.0;
    let mut neg_sum = 0.0;
    let mut neg_count = 0usize;
    let mut top1 = 0usize;
    for i in 0..n {
        let pos_sim = sketchql_nn::cosine_similarity(&anchors[i], &positives[i]);
        pos_sum += pos_sim;
        let mut beaten = true;
        for j in 0..n {
            if i == j {
                continue;
            }
            let s = sketchql_nn::cosine_similarity(&anchors[i], &positives[j]);
            neg_sum += s;
            neg_count += 1;
            if s >= pos_sim {
                beaten = false;
            }
        }
        if beaten {
            top1 += 1;
        }
    }
    PairEval {
        mean_positive: pos_sum / n as f32,
        mean_negative: neg_sum / neg_count.max(1) as f32,
        top1_accuracy: top1 as f32 / n as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_reduces_loss() {
        let model = train(TrainingConfig::tiny());
        let head: f32 = model.loss_history[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = model.loss_history[model.loss_history.len() - 5..]
            .iter()
            .sum::<f32>()
            / 5.0;
        assert!(
            tail < head,
            "loss should decrease: first {head:.3} vs last {tail:.3}"
        );
        assert!(model.loss_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn trained_model_separates_pos_from_neg() {
        let model = train(TrainingConfig::tiny());
        let generator = PairGenerator::new(
            RandomSceneSampler::new(model.config.sampler),
            model.config.pairgen,
        );
        let eval = evaluate_pairs(&model, &generator, 12, 999);
        assert!(
            eval.mean_positive > eval.mean_negative,
            "positives should embed closer: {eval:?}"
        );
    }

    #[test]
    fn schedules_change_the_optimization_but_still_train() {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 12;
        let plain = train(cfg.clone());
        let warm = train_with_schedule(
            cfg,
            sketchql_nn::LrSchedule::WarmupCosine {
                warmup: 4,
                total: 12,
                floor: 0.1,
            },
            |_, _| {},
        );
        // Identical data (same seed) but different update magnitudes.
        assert_eq!(
            plain.loss_history[0], warm.loss_history[0],
            "same first batch"
        );
        assert_ne!(plain.store, warm.store);
        assert!(warm.loss_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn training_is_deterministic() {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 5;
        let a = train(cfg.clone());
        let b = train(cfg);
        assert_eq!(a.loss_history, b.loss_history);
        assert_eq!(a.store, b.store);
    }

    #[test]
    fn save_load_round_trip() {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 3;
        let model = train(cfg);
        let dir = std::env::temp_dir().join("sketchql-test-model");
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let back = TrainedModel::load(&path).unwrap();
        assert_eq!(model.store, back.store);
        assert_eq!(model.config, back.config);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_train_uses_cache() {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 3;
        let dir = std::env::temp_dir().join(format!("sketchql-cache-{}", std::process::id()));
        let path = dir.join("m.json");
        let a = TrainedModel::load_or_train(&path, cfg.clone());
        assert!(path.exists());
        let b = TrainedModel::load_or_train(&path, cfg.clone());
        assert_eq!(a.store, b.store);
        // A different config must retrain, not reuse.
        let mut cfg2 = cfg;
        cfg2.seed += 1;
        let c = TrainedModel::load_or_train(&path, cfg2);
        assert_ne!(a.store, c.store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn embed_returns_unit_vector() {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 2;
        let model = train(cfg);
        let q = sketchql_datasets::query_clip(sketchql_datasets::EventKind::LeftTurn);
        let e = model.embed(&q).unwrap();
        let norm: f32 = e.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-3);
    }
}
