//! The on-disk store format: a versioned, checksummed binary columnar
//! layout.
//!
//! One store file holds every persisted sliding window of one
//! [`VideoIndex`](https://docs.rs) dataset: the window metadata columns
//! and a flat vector column, preceded by a fixed header describing the
//! dataset and the exact ingest configuration, and followed by an FNV-1a
//! checksum of everything before it. All integers and floats are
//! little-endian; floats are stored by bit pattern, so a round trip is
//! bit-identical.
//!
//! ```text
//! magic            8 bytes   "SKQLSTOR"
//! version          u32       FORMAT_VERSION
//! model_fp         u64       fingerprint of the encoder + weights
//! index_fp         u64       fingerprint of the VideoIndex contents
//! frames           u32       video length the windows were cut from
//! fps              f32
//! frame_width      f32
//! frame_height     f32
//! stride_frac      f32       ingest window stride (fraction of length)
//! min_overlap_frac f32       ingest track-eligibility overlap fraction
//! dataset_len      u32       + that many UTF-8 bytes (dataset name)
//! n_window_lens    u32       + that many u32 window lengths
//! rows             u32       number of stored windows (n)
//! dim              u32       embedding dimensionality
//! track_ids        n × u64
//! classes          n × u8    (see class code table below)
//! starts           n × u32
//! ends             n × u32
//! vectors          n × dim × f32
//! checksum         u64       FNV-1a 64 over every preceding byte
//! ```
//!
//! Class codes: `0` is [`ObjectClass::Any`]; `1 + i` is
//! `ObjectClass::CONCRETE[i]`. Codes outside that table are rejected at
//! load (`StoreError::BadClass`), so a store written by a future class
//! table never silently mislabels rows.

use sketchql_trajectory::{ObjectClass, TrackId};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::Fnv64;

/// Magic bytes opening every store file.
pub const MAGIC: [u8; 8] = *b"SKQLSTOR";

/// Current format version; bumped on incompatible layout changes.
pub const FORMAT_VERSION: u32 = 1;

/// Errors reading or writing a store file. Every variant names the file
/// it concerns, so a corrupt store in a directory of many is identifiable
/// from the error alone.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io {
        /// File being read or written.
        path: PathBuf,
        /// The originating I/O error.
        source: std::io::Error,
    },
    /// The file does not start with [`MAGIC`] — not a store file at all.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
    },
    /// The file ended before the layout said it should (a truncated or
    /// half-written store).
    Truncated {
        /// Offending file.
        path: PathBuf,
        /// What was being read when the bytes ran out.
        detail: String,
    },
    /// The trailing checksum does not match the file contents (bit rot or
    /// a torn write).
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum computed over the payload actually read.
        found: u64,
    },
    /// A class column byte is outside the known class-code table.
    BadClass {
        /// Offending file.
        path: PathBuf,
        /// The unknown code.
        code: u8,
    },
    /// The header is internally inconsistent (e.g. a non-UTF-8 dataset
    /// name or an implausible column length).
    BadHeader {
        /// Offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store {}: {source}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(f, "store {}: not a SketchQL store (bad magic)", path.display())
            }
            StoreError::UnsupportedVersion { path, found } => write!(
                f,
                "store {}: unsupported format version {found} (expected {FORMAT_VERSION})",
                path.display()
            ),
            StoreError::Truncated { path, detail } => {
                write!(f, "store {}: truncated while reading {detail}", path.display())
            }
            StoreError::ChecksumMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "store {}: checksum mismatch (file says {expected:#018x}, payload hashes to {found:#018x})",
                path.display()
            ),
            StoreError::BadClass { path, code } => {
                write!(f, "store {}: unknown object-class code {code}", path.display())
            }
            StoreError::BadHeader { path, detail } => {
                write!(f, "store {}: bad header: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Everything about how (and from what) a store was built. Queries use
/// this to decide whether the store is applicable: the fingerprints must
/// match the live model and index, and the window grid must cover the
/// query's window lengths.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// Name of the dataset the windows were cut from.
    pub dataset: String,
    /// Fingerprint of the encoder architecture + trained weights that
    /// produced the vectors (see the core crate's `model_fingerprint`).
    pub model_fingerprint: u64,
    /// Fingerprint of the `VideoIndex` contents the windows were cut
    /// from (see the core crate's `index_fingerprint`).
    pub index_fingerprint: u64,
    /// Frames in the source video.
    pub frames: u32,
    /// Frames per second of the source video.
    pub fps: f32,
    /// Frame width of the source video.
    pub frame_width: f32,
    /// Frame height of the source video.
    pub frame_height: f32,
    /// Window stride as a fraction of the window length (must equal the
    /// matcher's `stride_frac` for the grids to line up).
    pub stride_frac: f32,
    /// Minimum track/window overlap fraction used for row eligibility.
    pub min_overlap_frac: f32,
    /// The window lengths (frames) enumerated at ingest.
    pub window_lens: Vec<u32>,
}

/// One stored window's metadata columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRow {
    /// The track sliced into this window.
    pub track_id: TrackId,
    /// The track's object class.
    pub class: ObjectClass,
    /// First frame of the window (inclusive).
    pub start: u32,
    /// Last frame of the window (inclusive).
    pub end: u32,
}

/// An in-memory embedding store: columnar window metadata plus a flat
/// vector column. Build with [`EmbeddingStore::new`] + `push`, persist
/// with [`save`](EmbeddingStore::save), restore with
/// [`load`](EmbeddingStore::load).
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingStore {
    /// Provenance and ingest configuration.
    pub meta: StoreMeta,
    dim: usize,
    track_ids: Vec<TrackId>,
    classes: Vec<ObjectClass>,
    starts: Vec<u32>,
    ends: Vec<u32>,
    vectors: Vec<f32>,
}

impl EmbeddingStore {
    /// An empty store with the given provenance and vector width.
    pub fn new(meta: StoreMeta, dim: usize) -> Self {
        EmbeddingStore {
            meta,
            dim,
            track_ids: Vec::new(),
            classes: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            vectors: Vec::new(),
        }
    }

    /// Appends one window row.
    ///
    /// # Panics
    /// If `vector.len()` differs from the store's `dim`.
    pub fn push(&mut self, row: StoreRow, vector: &[f32]) {
        assert_eq!(
            vector.len(),
            self.dim,
            "vector width {} does not match store dim {}",
            vector.len(),
            self.dim
        );
        self.track_ids.push(row.track_id);
        self.classes.push(row.class);
        self.starts.push(row.start);
        self.ends.push(row.end);
        self.vectors.extend_from_slice(vector);
    }

    /// Number of stored windows.
    pub fn len(&self) -> usize {
        self.track_ids.len()
    }

    /// Whether the store holds no windows.
    pub fn is_empty(&self) -> bool {
        self.track_ids.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Metadata of row `i`.
    pub fn row(&self, i: usize) -> StoreRow {
        StoreRow {
            track_id: self.track_ids[i],
            class: self.classes[i],
            start: self.starts[i],
            end: self.ends[i],
        }
    }

    /// Vector of row `i`.
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.vectors[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat vector column, row-major (`len × dim`).
    pub fn vectors(&self) -> &[f32] {
        &self.vectors
    }

    /// Serializes the store to its binary layout (see module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.len();
        let mut out = Vec::with_capacity(64 + n * (8 + 1 + 4 + 4 + self.dim * 4) + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.meta.model_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.meta.index_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.meta.frames.to_le_bytes());
        out.extend_from_slice(&self.meta.fps.to_bits().to_le_bytes());
        out.extend_from_slice(&self.meta.frame_width.to_bits().to_le_bytes());
        out.extend_from_slice(&self.meta.frame_height.to_bits().to_le_bytes());
        out.extend_from_slice(&self.meta.stride_frac.to_bits().to_le_bytes());
        out.extend_from_slice(&self.meta.min_overlap_frac.to_bits().to_le_bytes());
        let name = self.meta.dataset.as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(self.meta.window_lens.len() as u32).to_le_bytes());
        for &w in &self.meta.window_lens {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&(self.dim as u32).to_le_bytes());
        for &id in &self.track_ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        for &c in &self.classes {
            out.push(class_code(c));
        }
        for &s in &self.starts {
            out.extend_from_slice(&s.to_le_bytes());
        }
        for &e in &self.ends {
            out.extend_from_slice(&e.to_le_bytes());
        }
        for &v in &self.vectors {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut h = Fnv64::new();
        h.write(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    /// Parses a store from bytes; `path` labels errors.
    pub fn from_bytes(path: &Path, bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = Reader {
            path,
            bytes,
            pos: 0,
        };
        let magic = r.take(MAGIC.len(), "magic")?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let version = r.u32("version")?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                found: version,
            });
        }
        let model_fingerprint = r.u64("model fingerprint")?;
        let index_fingerprint = r.u64("index fingerprint")?;
        let frames = r.u32("frames")?;
        let fps = r.f32("fps")?;
        let frame_width = r.f32("frame width")?;
        let frame_height = r.f32("frame height")?;
        let stride_frac = r.f32("stride fraction")?;
        let min_overlap_frac = r.f32("overlap fraction")?;
        let name_len = r.u32("dataset name length")? as usize;
        let name = r.take(name_len, "dataset name")?;
        let dataset = String::from_utf8(name.to_vec()).map_err(|_| StoreError::BadHeader {
            path: path.to_path_buf(),
            detail: "dataset name is not UTF-8".into(),
        })?;
        let n_lens = r.u32("window-length count")? as usize;
        let mut window_lens = Vec::with_capacity(n_lens.min(1024));
        for _ in 0..n_lens {
            window_lens.push(r.u32("window length")?);
        }
        let n = r.u32("row count")? as usize;
        let dim = r.u32("vector dim")? as usize;

        let mut track_ids = Vec::with_capacity(n);
        for _ in 0..n {
            track_ids.push(r.u64("track-id column")?);
        }
        let class_bytes = r.take(n, "class column")?.to_vec();
        let mut starts = Vec::with_capacity(n);
        for _ in 0..n {
            starts.push(r.u32("start column")?);
        }
        let mut ends = Vec::with_capacity(n);
        for _ in 0..n {
            ends.push(r.u32("end column")?);
        }
        let mut vectors = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            vectors.push(r.f32("vector column")?);
        }

        // Checksum covers every byte before it.
        let payload_end = r.pos;
        let expected = r.u64("checksum")?;
        let mut h = Fnv64::new();
        h.write(&bytes[..payload_end]);
        let found = h.finish();
        if found != expected {
            return Err(StoreError::ChecksumMismatch {
                path: path.to_path_buf(),
                expected,
                found,
            });
        }

        let mut classes = Vec::with_capacity(n);
        for code in class_bytes {
            classes.push(class_from_code(code).ok_or(StoreError::BadClass {
                path: path.to_path_buf(),
                code,
            })?);
        }

        Ok(EmbeddingStore {
            meta: StoreMeta {
                dataset,
                model_fingerprint,
                index_fingerprint,
                frames,
                fps,
                frame_width,
                frame_height,
                stride_frac,
                min_overlap_frac,
                window_lens,
            },
            dim,
            track_ids,
            classes,
            starts,
            ends,
            vectors,
        })
    }

    /// Writes the store to `path` (atomically: a temp file in the same
    /// directory is renamed into place, so readers never observe a
    /// half-written store).
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let io = |source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io)?;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Reads a store previously written with [`save`](Self::save).
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path).map_err(|source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Self::from_bytes(path, &bytes)
    }
}

/// A store file's header, read without touching the column payload.
///
/// This is everything attach-time validation needs: the full
/// [`StoreMeta`] (fingerprints, grid configuration), the row count and
/// dimensionality, and an implicit structural check — the file length
/// must be exactly what the header implies, so truncation is caught
/// without hashing gigabytes. The trailing checksum is deliberately
/// *not* verified here; it runs on first full load (see the core
/// crate's lazy store tier).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreHeader {
    /// Provenance and ingest configuration, exactly as a full load
    /// would return it.
    pub meta: StoreMeta,
    /// Number of stored windows.
    pub rows: u32,
    /// Embedding dimensionality.
    pub dim: u32,
}

impl StoreHeader {
    /// Reads and validates the header of `path`: magic, version, header
    /// fields, and that the file length matches the layout the header
    /// implies.
    pub fn read(path: &Path) -> Result<Self, StoreError> {
        let io = |source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        };
        let mut file = std::fs::File::open(path).map_err(io)?;
        let file_len = file.metadata().map_err(io)?.len() as usize;
        // The header is variable-length (dataset name + window grid) but
        // small; one bounded prefix read covers any plausible store.
        let take = file_len.min(64 * 1024);
        let mut prefix = vec![0u8; take];
        std::io::Read::read_exact(&mut file, &mut prefix).map_err(io)?;
        let (header, header_len) = Self::parse(path, &prefix)?;
        let n = header.rows as usize;
        let dim = header.dim as usize;
        let expected = header_len + n * (8 + 1 + 4 + 4) + n * dim * 4 + 8;
        if file_len != expected {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                detail: format!(
                    "store payload (header implies {expected} bytes, file has {file_len})"
                ),
            });
        }
        Ok(header)
    }

    /// Parses the header fields from a file prefix; returns the header
    /// plus its byte length (where the column payload starts).
    fn parse(path: &Path, bytes: &[u8]) -> Result<(Self, usize), StoreError> {
        let mut r = Reader {
            path,
            bytes,
            pos: 0,
        };
        let magic = r.take(MAGIC.len(), "magic")?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let version = r.u32("version")?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                found: version,
            });
        }
        let model_fingerprint = r.u64("model fingerprint")?;
        let index_fingerprint = r.u64("index fingerprint")?;
        let frames = r.u32("frames")?;
        let fps = r.f32("fps")?;
        let frame_width = r.f32("frame width")?;
        let frame_height = r.f32("frame height")?;
        let stride_frac = r.f32("stride fraction")?;
        let min_overlap_frac = r.f32("overlap fraction")?;
        let name_len = r.u32("dataset name length")? as usize;
        let name = r.take(name_len, "dataset name")?;
        let dataset = String::from_utf8(name.to_vec()).map_err(|_| StoreError::BadHeader {
            path: path.to_path_buf(),
            detail: "dataset name is not UTF-8".into(),
        })?;
        let n_lens = r.u32("window-length count")? as usize;
        let mut window_lens = Vec::with_capacity(n_lens.min(1024));
        for _ in 0..n_lens {
            window_lens.push(r.u32("window length")?);
        }
        let rows = r.u32("row count")?;
        let dim = r.u32("vector dim")?;
        Ok((
            StoreHeader {
                meta: StoreMeta {
                    dataset,
                    model_fingerprint,
                    index_fingerprint,
                    frames,
                    fps,
                    frame_width,
                    frame_height,
                    stride_frac,
                    min_overlap_frac,
                    window_lens,
                },
                rows,
                dim,
            },
            r.pos,
        ))
    }
}

/// Encodes a class for the class column (see module docs).
pub(crate) fn class_code(c: ObjectClass) -> u8 {
    match ObjectClass::CONCRETE.iter().position(|&k| k == c) {
        Some(i) => (i + 1) as u8,
        None => 0, // Any
    }
}

/// Decodes a class-column byte; `None` for unknown codes.
pub(crate) fn class_from_code(code: u8) -> Option<ObjectClass> {
    match code {
        0 => Some(ObjectClass::Any),
        i => ObjectClass::CONCRETE.get(i as usize - 1).copied(),
    }
}

/// Little-endian cursor over a byte slice with path-labelled errors.
struct Reader<'a> {
    path: &'a Path,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.bytes.len() {
            return Err(StoreError::Truncated {
                path: self.path.to_path_buf(),
                detail: format!(
                    "{what} (need {n} bytes at offset {}, file has {})",
                    self.pos,
                    self.bytes.len()
                ),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self, what: &str) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.u32(what)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> StoreMeta {
        StoreMeta {
            dataset: "traffic/one".into(),
            model_fingerprint: 0xdead_beef_0123_4567,
            index_fingerprint: u64::MAX - 3,
            frames: 900,
            fps: 30.0,
            frame_width: 1280.0,
            frame_height: 720.0,
            stride_frac: 0.25,
            min_overlap_frac: 0.5,
            window_lens: vec![67, 90, 135],
        }
    }

    fn sample_store() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(sample_meta(), 3);
        s.push(
            StoreRow {
                track_id: 1,
                class: ObjectClass::Car,
                start: 0,
                end: 89,
            },
            &[0.1, -0.5, f32::MIN_POSITIVE],
        );
        s.push(
            StoreRow {
                track_id: u64::MAX,
                class: ObjectClass::Any,
                start: 22,
                end: 111,
            },
            &[-0.0, 1.0e-38, 3.25],
        );
        s
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let s = sample_store();
        let bytes = s.to_bytes();
        let back = EmbeddingStore::from_bytes(Path::new("mem"), &bytes).unwrap();
        assert_eq!(back, s);
        for i in 0..s.len() {
            assert_eq!(
                back.vector(i)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                s.vector(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn save_load_round_trip() {
        let s = sample_store();
        let dir = std::env::temp_dir().join(format!("skql-store-{}", std::process::id()));
        let path = dir.join("sample.skstore");
        s.save(&path).unwrap();
        let back = EmbeddingStore::load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_read_matches_full_load_without_touching_columns() {
        let s = sample_store();
        let dir = std::env::temp_dir().join(format!("skql-header-{}", std::process::id()));
        let path = dir.join("sample.skstore");
        s.save(&path).unwrap();
        let header = StoreHeader::read(&path).unwrap();
        assert_eq!(header.meta, s.meta);
        assert_eq!(header.rows as usize, s.len());
        assert_eq!(header.dim as usize, s.dim());

        // A truncated payload is still caught by the length check alone.
        let bytes = s.to_bytes();
        let short = dir.join("short.skstore");
        std::fs::write(&short, &bytes[..bytes.len() - 3]).unwrap();
        let err = StoreHeader::read(&short).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }), "{err:?}");

        // But a flipped payload byte is NOT caught here — that is the
        // deferred-checksum contract: header validation is O(header).
        let mut flipped = bytes.clone();
        let idx = flipped.len() - 16;
        flipped[idx] ^= 1;
        let corrupt = dir.join("corrupt.skstore");
        std::fs::write(&corrupt, &flipped).unwrap();
        assert!(StoreHeader::read(&corrupt).is_ok());
        assert!(EmbeddingStore::load(&corrupt).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_concrete_class_round_trips() {
        for (i, &c) in ObjectClass::CONCRETE.iter().enumerate() {
            assert_eq!(class_from_code(class_code(c)), Some(c), "class {i}");
        }
        assert_eq!(
            class_from_code(class_code(ObjectClass::Any)),
            Some(ObjectClass::Any)
        );
        assert_eq!(class_from_code(200), None);
    }
}
