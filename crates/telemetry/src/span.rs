//! RAII span timers with hierarchical nesting.
//!
//! [`span`] starts a timer on the current thread and bumps the thread's
//! nesting depth; dropping the returned [`SpanGuard`] records a
//! [`SpanRecord`] with the span's depth relative to its enclosing spans.
//! Records accumulate per thread until [`take_finished_spans`] drains
//! them (the [`Recorder`](crate::Recorder) does this around a query).
//!
//! Durations come from [`std::time::Instant`], the monotonic clock, so
//! they are immune to wall-clock adjustments.

#[cfg(feature = "enabled")]
use std::cell::RefCell;
#[cfg(feature = "enabled")]
use std::time::Instant;

/// One completed span on the thread that created it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `sketchql.matcher.search`.
    pub name: &'static str,
    /// Nesting depth when the span ran: 0 for top-level spans, 1 for
    /// spans opened inside a depth-0 span, and so on.
    pub depth: usize,
    /// Elapsed monotonic time in nanoseconds.
    pub nanos: u64,
}

#[cfg(feature = "enabled")]
struct ThreadSpans {
    depth: usize,
    finished: Vec<SpanRecord>,
}

#[cfg(feature = "enabled")]
thread_local! {
    static SPANS: RefCell<ThreadSpans> = const {
        RefCell::new(ThreadSpans { depth: 0, finished: Vec::new() })
    };
}

/// Live span; records itself when dropped.
///
/// Guards must drop in reverse creation order (normal lexical scoping)
/// for depths to nest correctly — the usual RAII pattern:
///
/// ```
/// let _outer = sketchql_telemetry::span("sketchql.matcher.search");
/// {
///     let _inner = sketchql_telemetry::span("sketchql.matcher.prepare");
///     // ... timed work ...
/// } // _inner records at depth 1
/// // _outer records at depth 0 when it goes out of scope
/// ```
#[must_use = "a span measures the scope holding its guard; binding it to _ drops it immediately"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    start: Instant,
}

/// Opens a span on the current thread.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        SPANS.with(|s| s.borrow_mut().depth += 1);
        SpanGuard {
            name,
            start: Instant::now(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            let nanos = self.start.elapsed().as_nanos() as u64;
            SPANS.with(|s| {
                let mut s = s.borrow_mut();
                s.depth = s.depth.saturating_sub(1);
                let depth = s.depth;
                s.finished.push(SpanRecord {
                    name: self.name,
                    depth,
                    nanos,
                });
            });
        }
    }
}

/// Drains the current thread's finished spans, in completion order
/// (children precede their parents). Empty when telemetry is disabled.
pub fn take_finished_spans() -> Vec<SpanRecord> {
    #[cfg(feature = "enabled")]
    {
        SPANS.with(|s| std::mem::take(&mut s.borrow_mut().finished))
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}
