//! Synthetic surveillance-video generation.
//!
//! Stands in for the real-world traffic surveillance dataset (VIRAT,
//! reference [7]) the demonstration runs on. A generated "video" is a long
//! ground-truth bounding box stream recorded by one fixed (possibly shaky)
//! camera over a world containing scheduled ground-truth events and
//! distractor traffic, plus the frame-accurate event annotations needed to
//! score retrieval.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sketchql_simulator::{Camera, CameraRig, Scene3D, ShakeConfig};
use sketchql_trajectory::{Clip, Point2, Point3, TrackId};

use crate::events::{distractor_script, EventKind};

/// A family of scenes with a characteristic camera geometry and event mix;
/// the zero-shot experiment (T2) evaluates across families the encoder
/// never saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SceneFamily {
    /// Elevated intersection camera, car-heavy traffic, long sightlines.
    UrbanIntersection,
    /// Close, low parking-lot camera; slow cars and pedestrians.
    ParkingLot,
    /// Pedestrian plaza: mostly people, few vehicles, near-overhead view.
    Plaza,
}

impl SceneFamily {
    /// All families, in a stable order.
    pub const ALL: &'static [SceneFamily] = &[
        SceneFamily::UrbanIntersection,
        SceneFamily::ParkingLot,
        SceneFamily::Plaza,
    ];

    /// Machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SceneFamily::UrbanIntersection => "urban_intersection",
            SceneFamily::ParkingLot => "parking_lot",
            SceneFamily::Plaza => "plaza",
        }
    }

    /// Camera distance bounds from the scene center (meters).
    fn camera_distance(&self) -> (f32, f32) {
        match self {
            SceneFamily::UrbanIntersection => (45.0, 80.0),
            SceneFamily::ParkingLot => (22.0, 40.0),
            SceneFamily::Plaza => (30.0, 55.0),
        }
    }

    /// Camera shake magnitude for the family.
    fn shake(&self) -> ShakeConfig {
        match self {
            SceneFamily::UrbanIntersection => ShakeConfig {
                sigma: 0.0015,
                reversion: 0.15,
            },
            SceneFamily::ParkingLot => ShakeConfig {
                sigma: 0.001,
                reversion: 0.2,
            },
            SceneFamily::Plaza => ShakeConfig {
                sigma: 0.003,
                reversion: 0.1,
            },
        }
    }
}

/// Parameters of one synthetic video.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Scene family.
    pub family: SceneFamily,
    /// Number of ground-truth events embedded per kind requested.
    pub events_per_kind: usize,
    /// Which event kinds to embed. `None` in [`VideoConfig::standard`] means
    /// all kinds.
    pub distractors: usize,
    /// Recording frame rate.
    pub fps: f32,
}

impl VideoConfig {
    /// A standard evaluation video: 2 occurrences of every event kind plus
    /// 10 distractors at 30 fps.
    pub fn standard(family: SceneFamily) -> Self {
        VideoConfig {
            family,
            events_per_kind: 2,
            distractors: 10,
            fps: 30.0,
        }
    }
}

/// Frame-accurate annotation of one embedded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventAnnotation {
    /// What kind of event this is.
    pub kind: EventKind,
    /// First frame of the event's motion.
    pub start: u32,
    /// Last frame of the event's motion (inclusive).
    pub end: u32,
    /// Ground-truth track ids of the participants (indices into the truth
    /// clip's object list), in participant order.
    pub object_ids: Vec<TrackId>,
}

impl EventAnnotation {
    /// Temporal intersection-over-union with a predicted frame range.
    pub fn temporal_iou(&self, start: u32, end: u32) -> f32 {
        let inter_start = self.start.max(start);
        let inter_end = self.end.min(end);
        if inter_end < inter_start {
            return 0.0;
        }
        let inter = (inter_end - inter_start + 1) as f32;
        let union = (self.end - self.start + 1) as f32 + (end - start + 1) as f32 - inter;
        inter / union
    }
}

/// A generated video: ground-truth bbox stream plus annotations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticVideo {
    /// Human-readable name (family + seed).
    pub name: String,
    /// The family the video was drawn from.
    pub family: SceneFamily,
    /// Ground-truth per-object trajectories as seen by the fixed camera.
    pub truth: Clip,
    /// Embedded event annotations.
    pub events: Vec<EventAnnotation>,
    /// Frames per second.
    pub fps: f32,
    /// Total number of frames.
    pub frames: u32,
}

impl SyntheticVideo {
    /// Annotations of one event kind.
    pub fn events_of(&self, kind: EventKind) -> Vec<&EventAnnotation> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }
}

/// Generates one synthetic video.
///
/// Events are scheduled sequentially with random gaps so they rarely
/// overlap in time, placed at random world offsets, and recorded together
/// with wandering distractors through one fixed camera rig.
pub fn generate_video<R: Rng>(config: VideoConfig, seed_label: u64, rng: &mut R) -> SyntheticVideo {
    let mut scene = Scene3D::new(config.fps);
    let mut annotations = Vec::new();
    let mut cursor: u32 = rng.gen_range(10..40);

    // Schedule events round-robin over kinds so kinds interleave in time.
    for round in 0..config.events_per_kind {
        for &kind in EventKind::ALL {
            let center = Point2::new(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0));
            let participants = kind.instantiate(center, rng);
            let mut ids = Vec::with_capacity(participants.len());
            let mut max_total = 0u32;
            for (agent, script) in participants {
                let entry = cursor + script.start_frame;
                let script = script.starting_at(entry);
                max_total = max_total.max(script.total_frames());
                ids.push(scene.objects.len() as TrackId);
                scene = scene.with_object(agent, script);
            }
            annotations.push(EventAnnotation {
                kind,
                start: cursor,
                end: max_total.saturating_sub(1),
                object_ids: ids,
            });
            cursor = max_total + rng.gen_range(15..60);
            let _ = round;
        }
    }

    // Distractors live through the whole video at random entrances.
    let duration_hint = cursor + 30;
    for _ in 0..config.distractors {
        let (agent, script) = distractor_script(Point2::ZERO, rng);
        let start = rng.gen_range(0..duration_hint.saturating_sub(60).max(1));
        scene = scene.with_object(agent, script.starting_at(start));
    }

    // One fixed camera per video, aimed at the action's centroid.
    let (dmin, dmax) = config.family.camera_distance();
    let camera = Camera::sample_around(scene_center_on_ground(&scene), dmin, dmax, rng);
    let mut rig = CameraRig::new(camera, config.family.shake());
    let truth = scene.record(&mut rig, rng);
    let frames = scene.duration_frames();

    SyntheticVideo {
        name: format!("{}_{}", config.family.name(), seed_label),
        family: config.family,
        truth,
        events: annotations,
        fps: config.fps,
        frames,
    }
}

fn scene_center_on_ground(scene: &Scene3D) -> Point3 {
    let c = scene.center();
    Point3::new(c.x, c.y, 0.0)
}

/// Parameters of one streamed continuation segment (see
/// [`extend_video`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendConfig {
    /// Ground-truth events embedded per kind in the new segment.
    pub events_per_kind: usize,
    /// Wandering distractors added to the new segment.
    pub distractors: usize,
}

/// Extends a video with a freshly scheduled continuation segment — the
/// streaming ground truth live ingest consumes.
///
/// The continuation is a **pure extension**: every frame the base video
/// already covered is untouched (base trajectories are carried over
/// verbatim, and every new object's first visible frame is at or after
/// `base.frames`), which is exactly the contract `append_frames`
/// requires. To guarantee it, the new segment is scheduled and recorded
/// on its own *local* timeline — recording a delayed script inside a
/// combined scene would make pre-entry objects visible (holding their
/// first pose) in old frames — then shifted onto the global timeline:
/// new track ids continue after the base's, frame stamps are offset by
/// `base.frames`, and annotations shift with them.
pub fn extend_video<R: Rng>(
    base: &SyntheticVideo,
    config: ExtendConfig,
    rng: &mut R,
) -> SyntheticVideo {
    let mut scene = Scene3D::new(base.fps);
    let mut annotations = Vec::new();
    let base_objects = base.truth.num_objects() as TrackId;
    let mut cursor: u32 = rng.gen_range(10..40);

    for round in 0..config.events_per_kind {
        for &kind in EventKind::ALL {
            let center = Point2::new(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0));
            let participants = kind.instantiate(center, rng);
            let mut ids = Vec::with_capacity(participants.len());
            let mut max_total = 0u32;
            for (agent, script) in participants {
                let entry = cursor + script.start_frame;
                let script = script.starting_at(entry);
                max_total = max_total.max(script.total_frames());
                ids.push(base_objects + scene.objects.len() as TrackId);
                scene = scene.with_object(agent, script);
            }
            annotations.push(EventAnnotation {
                kind,
                start: base.frames + cursor,
                end: base.frames + max_total.saturating_sub(1),
                object_ids: ids,
            });
            cursor = max_total + rng.gen_range(15..60);
            let _ = round;
        }
    }

    let duration_hint = cursor + 30;
    for _ in 0..config.distractors {
        let (agent, script) = distractor_script(Point2::ZERO, rng);
        let start = rng.gen_range(0..duration_hint.saturating_sub(60).max(1));
        scene = scene.with_object(agent, script.starting_at(start));
    }

    // A fresh camera draw from the same family geometry (the base's
    // camera parameters are not persisted; only the frame geometry must
    // match, and it does — all family cameras share the image size).
    let (dmin, dmax) = base.family.camera_distance();
    let camera = Camera::sample_around(scene_center_on_ground(&scene), dmin, dmax, rng);
    let mut rig = CameraRig::new(camera, base.family.shake());
    let recorded = scene.record_offset(&mut rig, rng, base.frames);
    let new_frames = base.frames + scene.duration_frames();

    // Splice: base trajectories verbatim (same ids, same order — the
    // index prefix is bit-identical), continuation ids shifted after.
    let mut objects: Vec<_> = base.truth.objects.clone();
    for (i, t) in recorded.objects.iter().enumerate() {
        objects.push(sketchql_trajectory::Trajectory::from_points(
            base_objects + i as TrackId,
            t.class,
            t.points().to_vec(),
        ));
    }
    let mut events = base.events.clone();
    events.extend(annotations);
    SyntheticVideo {
        name: base.name.clone(),
        family: base.family,
        truth: Clip::new(base.truth.frame_width, base.truth.frame_height, objects),
        events,
        fps: base.fps,
        frames: new_frames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> VideoConfig {
        VideoConfig {
            family: SceneFamily::UrbanIntersection,
            events_per_kind: 1,
            distractors: 4,
            fps: 30.0,
        }
    }

    #[test]
    fn video_contains_all_event_kinds() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = generate_video(quick_config(), 1, &mut rng);
        for &k in EventKind::ALL {
            assert_eq!(v.events_of(k).len(), 1, "{k}");
        }
        assert_eq!(v.events.len(), EventKind::ALL.len());
    }

    #[test]
    fn annotations_are_within_video_and_ordered() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = generate_video(quick_config(), 2, &mut rng);
        for e in &v.events {
            assert!(e.start < e.end);
            assert!(e.end <= v.frames);
        }
        // Round-robin scheduling: starts are increasing.
        let starts: Vec<u32> = v.events.iter().map(|e| e.start).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]), "{starts:?}");
    }

    #[test]
    fn annotated_objects_exist_and_match_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = generate_video(quick_config(), 3, &mut rng);
        for e in &v.events {
            let classes = e.kind.participant_classes();
            assert_eq!(e.object_ids.len(), classes.len());
            for (&id, class) in e.object_ids.iter().zip(classes) {
                let t = &v.truth.objects[id as usize];
                assert_eq!(t.class, class, "{:?}", e.kind);
            }
        }
    }

    #[test]
    fn annotated_objects_move_during_their_event() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = generate_video(quick_config(), 4, &mut rng);
        let mut moved = 0;
        let mut total = 0;
        for e in &v.events {
            for &id in &e.object_ids {
                total += 1;
                let t = v.truth.objects[id as usize].slice(e.start, e.end);
                if t.len() > 5 && t.displacement() > 5.0 {
                    moved += 1;
                }
            }
        }
        // Most participants should be visible and moving on screen (a few
        // may leave the frame for part of their event).
        assert!(
            moved * 10 >= total * 7,
            "only {moved}/{total} event objects moved on screen"
        );
    }

    #[test]
    fn distractors_present() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = generate_video(quick_config(), 5, &mut rng);
        let n_event_objs: usize = v.events.iter().map(|e| e.object_ids.len()).sum();
        assert_eq!(v.truth.num_objects(), n_event_objs + 4);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_video(quick_config(), 7, &mut StdRng::seed_from_u64(7));
        let b = generate_video(quick_config(), 7, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn families_differ_in_camera_geometry() {
        let (a, b) = (
            SceneFamily::UrbanIntersection.camera_distance(),
            SceneFamily::ParkingLot.camera_distance(),
        );
        assert!(a.0 > b.1 * 0.5, "families should be distinguishable");
        assert_ne!(a, b);
    }

    #[test]
    fn extension_is_pure_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(21);
        let base = generate_video(quick_config(), 21, &mut rng);
        let cfg = ExtendConfig {
            events_per_kind: 1,
            distractors: 2,
        };
        let a = extend_video(&base, cfg, &mut StdRng::seed_from_u64(22));
        let b = extend_video(&base, cfg, &mut StdRng::seed_from_u64(22));
        assert_eq!(a.truth, b.truth, "extension must be deterministic");
        assert_eq!(a.events, b.events);

        // Pure extension: the base prefix is carried over bit-for-bit…
        assert!(a.frames > base.frames);
        assert_eq!(a.name, base.name);
        assert_eq!(
            &a.truth.objects[..base.truth.num_objects()],
            &base.truth.objects[..]
        );
        assert_eq!(&a.events[..base.events.len()], &base.events[..]);
        // …and nothing new touches an old frame.
        for t in &a.truth.objects[base.truth.num_objects()..] {
            assert!(
                t.start_frame().is_none_or(|s| s >= base.frames),
                "continuation object visible at frame {:?} before the splice",
                t.start_frame()
            );
        }
        for e in &a.events[base.events.len()..] {
            assert!(e.start >= base.frames && e.end <= a.frames);
            for &id in &e.object_ids {
                assert!((id as usize) < a.truth.num_objects());
            }
        }
    }

    #[test]
    fn repeated_extension_keeps_extending() {
        let mut rng = StdRng::seed_from_u64(23);
        let base = generate_video(quick_config(), 23, &mut rng);
        let cfg = ExtendConfig {
            events_per_kind: 1,
            distractors: 1,
        };
        let once = extend_video(&base, cfg, &mut StdRng::seed_from_u64(24));
        let twice = extend_video(&once, cfg, &mut StdRng::seed_from_u64(25));
        assert!(twice.frames > once.frames);
        assert_eq!(
            &twice.truth.objects[..once.truth.num_objects()],
            &once.truth.objects[..]
        );
        for &kind in EventKind::ALL {
            assert_eq!(twice.events_of(kind).len(), 3, "{kind}");
        }
    }

    #[test]
    fn temporal_iou_cases() {
        let e = EventAnnotation {
            kind: EventKind::LeftTurn,
            start: 100,
            end: 199,
            object_ids: vec![0],
        };
        assert!((e.temporal_iou(100, 199) - 1.0).abs() < 1e-6);
        assert_eq!(e.temporal_iou(300, 400), 0.0);
        // Half overlap: [150, 249] ∩ [100,199] = 50 frames; union 150.
        let i = e.temporal_iou(150, 249);
        assert!((i - 50.0 / 150.0).abs() < 1e-5);
    }
}
