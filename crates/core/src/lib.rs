//! # sketchql
//!
//! A Rust implementation of **SketchQL** (VLDB 2024 demo): a video database
//! management system for zero-shot video moment retrieval with a
//! sketch-based query interface.
//!
//! The three components of the paper:
//!
//! * **Sketcher** ([`sketcher`]) — a headless model of the drag-and-drop
//!   canvas and trajectory panel; compiles user gestures into a visual
//!   query [`Clip`](sketchql_trajectory::Clip).
//! * **Matcher** ([`matcher`], [`similarity`], [`index`]) — sliding-window
//!   similarity search over tracked object trajectories using a
//!   transformer encoder trained purely on simulator data ([`training`]),
//!   with classical distance baselines behind the same interface.
//! * **Tuner** ([`tuner`]) — optional user-feedback adaptation via
//!   prototype re-ranking or triplet fine-tuning.
//!
//! [`session::SketchQL`] ties it together as the six-step demo workflow:
//! upload → create objects → drag trajectories → edit panel → run → display.
//!
//! ```no_run
//! use sketchql::prelude::*;
//!
//! // Train (or load) the zero-shot similarity model.
//! let model = sketchql::training::train(TrainingConfig::small());
//! let mut sq = SketchQL::new(model);
//! # let video: sketchql_datasets::SyntheticVideo = unimplemented!();
//! // Step 1: upload a video (runs tracker preprocessing).
//! sq.upload_dataset("traffic", &video);
//! // Steps 2-4: sketch a left turn.
//! let mut sketch = sq.new_sketch();
//! let car = sketch.create_object(ObjectClass::Car, Point2::new(150.0, 450.0)).unwrap();
//! sketch.set_mode(MouseMode::Drag);
//! sketch.drag_object_along(car, &[Point2::new(400.0, 450.0), Point2::new(650.0, 150.0)]).unwrap();
//! // Steps 5-6: run and display.
//! let results = sq.run_sketch("traffic", &sketch).unwrap();
//! for view in sq.display("traffic", &results).unwrap() {
//!     println!("#{} frames {}..{} score {:.3}", view.rank, view.start, view.end, view.score);
//! }
//! ```

#![warn(missing_docs)]

pub use sketchql_telemetry as telemetry;

pub mod cancel;
pub mod embed_cache;
pub mod index;
pub mod matcher;
pub mod materialized;
pub mod rules;
pub mod session;
pub mod similarity;
pub mod sketcher;
pub mod training;
pub mod tuner;
pub mod vshard;
pub mod vstore;

pub use cancel::{CancelReason, CancelToken};
pub use embed_cache::{embed_clips_parallel, try_embed_clips_parallel, EmbedCache};
pub use index::VideoIndex;
pub use matcher::{MatchError, Matcher, MatcherConfig, RetrievedMoment};
pub use materialized::{MaterializeConfig, MaterializedWindows};
pub use rules::{
    evaluate_rule, expert_rule, motion_stats, MotionStats, Predicate, Relation, RuleQuery,
    RuleSearchConfig,
};
pub use session::{
    DatasetSummary, LoadError, MomentView, PreprocessConfig, SessionError, SketchQL,
};
pub use similarity::{
    ClassicalSimilarity, LearnedSimilarity, PreparedQuery, Similarity, SimilarityError,
};
pub use sketcher::{
    CanvasObject, MouseMode, ObjectId, SegmentId, SketchError, Sketcher, TrajectoryPanel,
};
pub use training::{train, train_with_schedule, PairEval, TrainedModel, TrainingConfig};
pub use tuner::{active_feedback_loop, fine_tune, Feedback, FeedbackRound, Reranker, TunerConfig};
pub use vshard::{
    append_frames, enumerate_store_rows, ingest_sharded, load_store_tier_dir, shard_set_dir_name,
    AppendOutcome, IngestProgress, LazyStore, ShardSet, StoreTier,
};
pub use vstore::{
    index_fingerprint, ingest, load_store_dir, model_fingerprint, save_store_dir, DatasetStore,
    IngestConfig, StoreSearch,
};

/// Convenient re-exports for application code.
pub mod prelude {
    pub use crate::session::SketchQL;
    pub use crate::sketcher::{MouseMode, Sketcher};
    pub use crate::training::{TrainedModel, TrainingConfig};
    pub use crate::tuner::{Feedback, TunerConfig};
    pub use sketchql_trajectory::{Clip, ObjectClass, Point2};
}
