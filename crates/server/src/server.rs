//! The TCP front end: blocking accept loop, one thread per connection.
//!
//! Built on `std::net` only — no async runtime. Each connection reads
//! line-delimited [`Request`]s and writes one [`Response`] line per
//! request; query execution happens inline on the connection thread via
//! [`Engine::execute`], so backpressure is the engine's admission queue,
//! not socket buffering.
//!
//! Shutdown is cooperative. A wire [`Request::Shutdown`] (or
//! [`Server::request_shutdown`]) flips the running flag and wakes
//! [`Server::wait_for_shutdown_request`]; the owner then calls
//! [`Server::shutdown`], which unblocks the accept loop by connecting to
//! itself, joins the connection threads (they poll the flag on a short
//! read timeout), and finally drains the engine — every already-admitted
//! query is answered before the process exits.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind as IoErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sketchql_datasets::{query_clip, EventKind};
use sketchql_telemetry::{self as telemetry, names, TraceContext};

use crate::engine::{Engine, QuerySpec};
use crate::protocol::{ErrorKind, Request, Response, WireTrace, PROTOCOL_VERSION};

/// How often an idle connection thread re-checks the running flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Traces returned by a `Trace` request that names no id and no limit.
const DEFAULT_TRACE_LIMIT: usize = 16;

/// Longest on-demand profiling window a `Profile` request may ask for.
/// The collection blocks the requesting connection thread, so the cap
/// keeps a stray request from pinning a thread for minutes.
const MAX_PROFILE_SECONDS: u64 = 60;

/// Sampling rate used when a `Profile` request names none.
const DEFAULT_PROFILE_HZ: u64 = 97;

/// A running TCP server wrapping an [`Engine`].
pub struct Server {
    engine: Arc<Engine>,
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    shutdown_signal: Arc<(Mutex<bool>, Condvar)>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `engine`.
    pub fn start(engine: Engine, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let engine = Arc::new(engine);
        let running = Arc::new(AtomicBool::new(true));
        let shutdown_signal = Arc::new((Mutex::new(false), Condvar::new()));
        let connections = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let engine = Arc::clone(&engine);
            let running = Arc::clone(&running);
            let shutdown_signal = Arc::clone(&shutdown_signal);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("sketchql-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if !running.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        telemetry::counter(names::SERVER_CONNECTIONS).inc();
                        let engine = Arc::clone(&engine);
                        let running = Arc::clone(&running);
                        let shutdown_signal = Arc::clone(&shutdown_signal);
                        let handle = std::thread::Builder::new()
                            .name("sketchql-conn".into())
                            .spawn(move || {
                                handle_connection(stream, &engine, &running, &shutdown_signal)
                            });
                        if let Ok(handle) = handle {
                            connections.lock().unwrap().push(handle);
                        }
                    }
                })?
        };

        Ok(Server {
            engine,
            local_addr,
            running,
            shutdown_signal,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A shared handle to the engine, for owner-side threads that
    /// outlive borrows of the server — e.g. a live-ingest poller that
    /// calls [`Engine::reload_dataset`] while the accept loop runs.
    pub fn engine_handle(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Blocks until a shutdown is requested (over the wire or via
    /// [`Server::request_shutdown`]). The caller should then call
    /// [`Server::shutdown`].
    pub fn wait_for_shutdown_request(&self) {
        let (flag, condvar) = &*self.shutdown_signal;
        let mut requested = flag.lock().unwrap();
        while !*requested {
            requested = condvar.wait(requested).unwrap();
        }
    }

    /// Requests shutdown from the owning process (equivalent to a wire
    /// [`Request::Shutdown`]).
    pub fn request_shutdown(&self) {
        signal_shutdown(&self.running, &self.shutdown_signal);
    }

    /// Stops accepting, joins every connection thread, and drains the
    /// engine. Admitted queries are answered before this returns.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the cleared running flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self.connections.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.engine.shutdown();
    }
}

/// Flips the running flag and wakes `wait_for_shutdown_request`.
fn signal_shutdown(running: &AtomicBool, signal: &(Mutex<bool>, Condvar)) {
    running.store(false, Ordering::SeqCst);
    let (flag, condvar) = signal;
    *flag.lock().unwrap() = true;
    condvar.notify_all();
}

/// One connection: read request lines, answer each, until EOF or
/// shutdown. A read timeout keeps idle connections responsive to the
/// running flag; partially-read lines survive the timeout because
/// `read_line` appends.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    running: &AtomicBool,
    shutdown_signal: &(Mutex<bool>, Condvar),
) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    telemetry::counter(names::SERVER_REQUESTS).inc();
                    let (response, stop, trace) =
                        handle_request(trimmed, engine, running, shutdown_signal);
                    // Serialization + write happen inside the query's
                    // trace so the span tree covers the response too;
                    // the trace is then complete and finalized into the
                    // flight recorder (and slow-query log).
                    let write_ok = {
                        let _trace_guard = trace.as_ref().map(|t| t.enter());
                        let _serialize_span = trace
                            .as_ref()
                            .map(|_| telemetry::span(names::SERVER_SERIALIZE));
                        match serde_json::to_string(&response) {
                            Ok(json) => {
                                writer.write_all(json.as_bytes()).is_ok()
                                    && writer.write_all(b"\n").is_ok()
                                    && writer.flush().is_ok()
                            }
                            Err(_) => false,
                        }
                    };
                    if let Some(trace) = trace {
                        trace.finalize();
                    }
                    if !write_ok || stop {
                        break;
                    }
                }
                line.clear();
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                if !running.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Serves one parsed request line. The bool asks the connection loop to
/// close after writing the response; the [`TraceContext`] (queries
/// only) lets the loop time serialization inside the trace before
/// finalizing it.
fn handle_request(
    line: &str,
    engine: &Engine,
    running: &AtomicBool,
    shutdown_signal: &(Mutex<bool>, Condvar),
) -> (Response, bool, Option<TraceContext>) {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            return (
                Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("unparseable request: {e}"),
                },
                false,
                None,
            )
        }
    };
    match request {
        Request::Ping => (
            Response::Pong {
                version: PROTOCOL_VERSION,
            },
            false,
            None,
        ),
        Request::ListDatasets => (
            Response::Datasets {
                datasets: engine.datasets(),
            },
            false,
            None,
        ),
        Request::Stats => (
            Response::Stats {
                stats: engine.stats(),
            },
            false,
            None,
        ),
        Request::Trace { trace_id, limit } => {
            let recorder = telemetry::flight_recorder();
            let traces: Vec<WireTrace> = match trace_id {
                Some(id) => recorder
                    .find(id)
                    .iter()
                    .map(|t| WireTrace::from_query_trace(t))
                    .collect(),
                None => recorder
                    .recent(limit.unwrap_or(DEFAULT_TRACE_LIMIT))
                    .iter()
                    .map(|t| WireTrace::from_query_trace(t))
                    .collect(),
            };
            (Response::Traces { traces }, false, None)
        }
        Request::Metrics => (
            Response::MetricsText {
                prometheus: telemetry::snapshot_prometheus(),
            },
            false,
            None,
        ),
        Request::Profile { seconds, hz } => {
            // seconds = 0 (or absent) answers from the continuous
            // profiler's running aggregate without blocking; a positive
            // window collects fresh samples on this connection thread.
            let report = match seconds.unwrap_or(0).min(MAX_PROFILE_SECONDS) {
                0 => telemetry::continuous_profile_snapshot().unwrap_or_default(),
                secs => telemetry::collect_profile(
                    Duration::from_secs(secs),
                    hz.unwrap_or(DEFAULT_PROFILE_HZ).min(1000) as u32,
                ),
            };
            (
                Response::Profile {
                    folded: report.folded(),
                    samples: report.samples,
                    duration_ms: report.duration_nanos / 1_000_000,
                },
                false,
                None,
            )
        }
        Request::Query {
            dataset,
            event,
            clip,
            top_k,
            deadline_ms,
            trace_id,
            class,
            priority,
        } => {
            if !running.load(Ordering::SeqCst) {
                return (
                    Response::Error {
                        kind: ErrorKind::ShuttingDown,
                        message: "server is shutting down".into(),
                    },
                    false,
                    None,
                );
            }
            let query = match resolve_sketch(clip, event) {
                Ok(clip) => clip,
                Err(response) => return (*response, false, None),
            };
            let spec = QuerySpec {
                dataset,
                query,
                top_k,
                deadline: deadline_ms.map(Duration::from_millis),
                trace: trace_id.filter(|id| *id != 0),
                class,
                priority,
                min_end: None,
            };
            match engine.execute(spec) {
                Ok(result) => {
                    let trace = result.trace.clone();
                    (
                        Response::Moments {
                            moments: result.moments,
                            queue_wait_ms: result.queue_wait.as_millis() as u64,
                            execute_ms: result.execute.as_millis() as u64,
                            batch_size: result.batch_size,
                            trace_id: trace.id(),
                        },
                        false,
                        Some(trace),
                    )
                }
                Err(e) => (Response::from_engine_error(&e), false, None),
            }
        }
        Request::Register {
            dataset,
            event,
            clip,
            min_score,
            top_k,
        } => {
            if !running.load(Ordering::SeqCst) {
                return (
                    Response::Error {
                        kind: ErrorKind::ShuttingDown,
                        message: "server is shutting down".into(),
                    },
                    false,
                    None,
                );
            }
            let query = match resolve_sketch(clip, event) {
                Ok(clip) => clip,
                Err(response) => return (*response, false, None),
            };
            let response = match engine.register(&dataset, query, min_score, top_k) {
                Ok(reg) => Response::Registered {
                    registration_id: reg.id,
                    watermark: reg.watermark,
                },
                Err(e) => Response::from_engine_error(&e),
            };
            (response, false, None)
        }
        Request::Unregister { registration_id } => {
            let response = if engine.unregister(registration_id) {
                Response::Unregistered { registration_id }
            } else {
                Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("unknown registration id {registration_id}"),
                }
            };
            (response, false, None)
        }
        Request::Notifications {
            registration_id,
            max,
        } => {
            let response = match engine.notifications(registration_id, max) {
                Some(n) => Response::Notifications {
                    registration_id: n.registration_id,
                    epoch: n.epoch,
                    watermark: n.watermark,
                    dropped: n.dropped,
                    matches: n.matches,
                },
                None => Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("unknown registration id {registration_id}"),
                },
            };
            (response, false, None)
        }
        Request::Shutdown => {
            signal_shutdown(running, shutdown_signal);
            (Response::ShutdownAck, true, None)
        }
    }
}

/// Resolves a request's `clip`/`event` pair into the sketch to run,
/// with the same precedence `Query` has always used: an inline clip
/// wins, otherwise the event name is looked up in the catalogue, and
/// naming neither is a bad request.
fn resolve_sketch(
    clip: Option<sketchql_trajectory::Clip>,
    event: Option<String>,
) -> Result<sketchql_trajectory::Clip, Box<Response>> {
    match (clip, event) {
        (Some(clip), _) => Ok(clip),
        (None, Some(name)) => match EventKind::ALL.iter().find(|k| k.name() == name) {
            Some(kind) => Ok(query_clip(*kind)),
            None => Err(Box::new(Response::Error {
                kind: ErrorKind::UnknownEvent,
                message: format!("unknown event {name:?}"),
            })),
        },
        (None, None) => Err(Box::new(Response::Error {
            kind: ErrorKind::BadRequest,
            message: "query needs an event name or an inline clip".into(),
        })),
    }
}

/// Loads named [`VideoIndex`]es for [`Engine::start`] from `(name, index)`
/// pairs, rejecting duplicate names.
pub fn named_datasets<I>(pairs: I) -> Result<BTreeMap<String, sketchql::VideoIndex>, String>
where
    I: IntoIterator<Item = (String, sketchql::VideoIndex)>,
{
    let mut map = BTreeMap::new();
    for (name, index) in pairs {
        if map.insert(name.clone(), index).is_some() {
            return Err(format!("duplicate dataset name {name:?}"));
        }
    }
    Ok(map)
}
