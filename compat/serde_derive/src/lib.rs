//! In-tree stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! value-model serde shim in `compat/serde`, with no dependency on `syn` or
//! `quote` (neither is available offline): the item is parsed directly from
//! the `proc_macro::TokenStream` and the impl is emitted as a source string.
//!
//! Supported shapes — the ones this workspace uses:
//! - structs with named fields;
//! - tuple structs (newtype serializes transparently, wider ones as arrays);
//! - unit structs;
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde's default).
//!
//! Not supported: generic types, lifetimes, unions, and `#[serde(...)]`
//! field attributes (they are accepted and ignored so existing code keeps
//! compiling, except none remain in-tree).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
struct Item {
    name: String,
    body: Body,
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let keyword = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let body = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_top_level_segments(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive shim: expected struct or enum, found `{other}`"),
    };
    Item { name, body }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(toks.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    toks.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

/// Parses `a: TypeA, b: TypeB, ...` returning the field names. Commas inside
/// angle brackets (`BTreeMap<String, Tensor>`) do not split fields; commas
/// inside `(...)`/`[...]` arrive as opaque groups and need no tracking.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        let mut angle_depth = 0i32;
        while let Some(t) = toks.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // consume the comma (or run off the end)
        fields.push(name);
    }
    fields
}

/// Counts comma-separated segments at angle-depth 0 (tuple-struct / tuple-variant arity).
fn count_top_level_segments(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    let mut saw_tok_since_comma = false;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    saw_tok_since_comma = false;
                    count += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_tok_since_comma = true;
    }
    if !saw_tok_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_segments(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        while let Some(t) = toks.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push(format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                    )),
                    VariantKind::Tuple(1) => arms.push(format!(
                        "{name}::{vname}(f0) => ::serde::Value::Obj(::std::vec![(::std::string::String::from({vname:?}), ::serde::Serialize::to_value(f0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push(format!(
                            "{name}::{vname}({}) => ::serde::Value::Obj(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Arr(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Obj(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Obj(::std::vec![{}]))]),",
                            fields.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!(
            "match v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             other => ::std::result::Result::Err(::serde::DeError::expected(\"null\", other)) }}"
        ),
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = ::serde::__private::as_arr(v, \"tuple struct {name}\")?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                         \"expected {n} elements for {name}, got {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__private::obj_get(fields, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "let fields = ::serde::__private::as_obj(v, \"struct {name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut str_arms = Vec::new();
            let mut obj_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => str_arms.push(format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    VariantKind::Tuple(1) => obj_arms.push(format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        obj_arms.push(format!(
                            "{vname:?} => {{\n\
                                 let items = ::serde::__private::as_arr(inner, \"variant {name}::{vname}\")?;\n\
                                 if items.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                                         \"expected {n} elements for {name}::{vname}, got {{}}\", items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::__private::obj_get(fields, {f:?})?)?"
                                )
                            })
                            .collect();
                        obj_arms.push(format!(
                            "{vname:?} => {{\n\
                                 let fields = ::serde::__private::as_obj(inner, \"variant {name}::{vname}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {str_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                             \"unknown variant {{other:?}} of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {obj_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                                 \"unknown variant {{other:?}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", other)),\n\
                 }}",
                str_arms = str_arms.join("\n"),
                obj_arms = obj_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
