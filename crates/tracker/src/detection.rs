//! Detector simulation.
//!
//! SketchQL's preprocessing step runs a pre-trained object detector +
//! tracker over each video. We do not have a CNN detector, but the Matcher
//! only ever sees the detector's *output distribution*: boxes with
//! localization noise, missed detections, false positives, and confidence
//! scores. [`DetectorSim`] produces exactly that from ground-truth clips, so
//! the tracker and everything downstream face realistic input artifacts.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sketchql_trajectory::{BBox, Clip, ObjectClass};

/// One detection in one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Detected bounding box.
    pub bbox: BBox,
    /// Predicted object class.
    pub class: ObjectClass,
    /// Confidence score in `[0, 1]`.
    pub score: f32,
}

/// Noise model of the simulated detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Std of center jitter, as a fraction of box size.
    pub center_jitter: f32,
    /// Std of size jitter, as a fraction of box size.
    pub size_jitter: f32,
    /// Probability of missing an object in a frame.
    pub miss_prob: f64,
    /// Expected number of false positives per frame.
    pub fp_rate: f64,
    /// Mean confidence of true detections (noisy around this).
    pub true_score_mean: f32,
    /// Mean confidence of false positives.
    pub fp_score_mean: f32,
    /// Probability that a true detection is emitted with *low* confidence
    /// (occlusion, blur) — these are the detections ByteTrack's second
    /// association stage is designed to rescue.
    pub low_conf_prob: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            center_jitter: 0.03,
            size_jitter: 0.04,
            miss_prob: 0.05,
            fp_rate: 0.3,
            true_score_mean: 0.85,
            fp_score_mean: 0.25,
            low_conf_prob: 0.10,
        }
    }
}

impl DetectorConfig {
    /// A noise-free detector (for sanity experiments).
    pub fn perfect() -> Self {
        DetectorConfig {
            center_jitter: 0.0,
            size_jitter: 0.0,
            miss_prob: 0.0,
            fp_rate: 0.0,
            true_score_mean: 0.99,
            fp_score_mean: 0.0,
            low_conf_prob: 0.0,
        }
    }

    /// Scales all degradation knobs by `level` (0 = perfect, 1 = default,
    /// >1 = worse). Used by the robustness ablation (experiment T3).
    pub fn at_noise_level(level: f32) -> Self {
        let d = DetectorConfig::default();
        DetectorConfig {
            center_jitter: d.center_jitter * level,
            size_jitter: d.size_jitter * level,
            miss_prob: (d.miss_prob * level as f64).min(0.9),
            fp_rate: d.fp_rate * level as f64,
            low_conf_prob: (d.low_conf_prob * level as f64).min(0.9),
            ..d
        }
    }
}

/// Simulates a per-frame object detector over ground-truth clips.
#[derive(Debug, Clone)]
pub struct DetectorSim {
    /// Noise parameters.
    pub config: DetectorConfig,
}

impl DetectorSim {
    /// Creates a simulator.
    pub fn new(config: DetectorConfig) -> Self {
        DetectorSim { config }
    }

    /// Runs the detector over a ground-truth clip, producing detections for
    /// every frame in `0..frames`.
    pub fn detect_clip<R: Rng>(
        &self,
        truth: &Clip,
        frames: u32,
        rng: &mut R,
    ) -> Vec<Vec<Detection>> {
        (0..frames)
            .map(|f| self.detect_frame(truth, f, rng))
            .collect()
    }

    /// Detections for one frame.
    pub fn detect_frame<R: Rng>(&self, truth: &Clip, frame: u32, rng: &mut R) -> Vec<Detection> {
        let c = &self.config;
        let mut out = Vec::new();
        for obj in &truth.objects {
            let Some(bb) = obj.bbox_at(frame) else {
                continue;
            };
            if rng.gen_bool(c.miss_prob) {
                continue;
            }
            let jc = c.center_jitter;
            let js = c.size_jitter;
            let noisy = BBox::new(
                bb.cx + gauss(rng) * jc * bb.w,
                bb.cy + gauss(rng) * jc * bb.h,
                (bb.w * (1.0 + gauss(rng) * js)).max(1.0),
                (bb.h * (1.0 + gauss(rng) * js)).max(1.0),
            );
            let low = rng.gen_bool(c.low_conf_prob);
            let mean = if low {
                c.fp_score_mean + 0.15
            } else {
                c.true_score_mean
            };
            let score = (mean + gauss(rng) * 0.05).clamp(0.05, 1.0);
            out.push(Detection {
                bbox: noisy,
                class: obj.class,
                score,
            });
        }
        // Poisson-ish false positives: Bernoulli splits of the rate.
        let mut budget = c.fp_rate;
        while budget > 0.0 {
            let p = budget.min(1.0);
            if rng.gen_bool(p) {
                let w = rng.gen_range(8.0..truth.frame_width.max(16.0) / 6.0);
                let h = rng.gen_range(8.0..truth.frame_height.max(16.0) / 6.0);
                let bbox = BBox::new(
                    rng.gen_range(0.0..truth.frame_width.max(1.0)),
                    rng.gen_range(0.0..truth.frame_height.max(1.0)),
                    w,
                    h,
                );
                let class = if rng.gen_bool(0.5) {
                    ObjectClass::Car
                } else {
                    ObjectClass::Person
                };
                let score = (c.fp_score_mean + gauss(rng) * 0.08).clamp(0.05, 0.6);
                out.push(Detection { bbox, class, score });
            }
            budget -= 1.0;
        }
        out
    }
}

fn gauss<R: Rng>(rng: &mut R) -> f32 {
    // Box–Muller, single sample.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketchql_trajectory::{TrajPoint, Trajectory};

    fn truth_clip() -> Clip {
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..60)
                .map(|f| TrajPoint::new(f, BBox::new(100.0 + f as f32 * 5.0, 300.0, 60.0, 40.0)))
                .collect(),
        );
        Clip::new(1280.0, 720.0, vec![t])
    }

    #[test]
    fn perfect_detector_reproduces_truth() {
        let sim = DetectorSim::new(DetectorConfig::perfect());
        let mut rng = StdRng::seed_from_u64(1);
        let dets = sim.detect_clip(&truth_clip(), 60, &mut rng);
        assert_eq!(dets.len(), 60);
        for (f, frame) in dets.iter().enumerate() {
            assert_eq!(frame.len(), 1, "frame {f}");
            let d = frame[0];
            assert!((d.bbox.cx - (100.0 + f as f32 * 5.0)).abs() < 1e-4);
            assert!(d.score > 0.8);
            assert_eq!(d.class, ObjectClass::Car);
        }
    }

    #[test]
    fn default_detector_misses_some_frames() {
        let sim = DetectorSim::new(DetectorConfig {
            miss_prob: 0.3,
            fp_rate: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let dets = sim.detect_clip(&truth_clip(), 60, &mut rng);
        let present = dets.iter().filter(|f| !f.is_empty()).count();
        assert!(present < 60, "expected some misses");
        assert!(present > 25, "but not everything");
    }

    #[test]
    fn false_positives_appear_at_expected_rate() {
        let sim = DetectorSim::new(DetectorConfig {
            miss_prob: 1.0, // suppress true detections entirely
            fp_rate: 0.5,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let dets = sim.detect_clip(&truth_clip(), 400, &mut rng);
        let fp_total: usize = dets.iter().map(Vec::len).sum();
        let rate = fp_total as f64 / 400.0;
        assert!((rate - 0.5).abs() < 0.15, "fp rate {rate}");
        // FPs carry low scores.
        for frame in &dets {
            for d in frame {
                assert!(d.score <= 0.6);
            }
        }
    }

    #[test]
    fn jitter_scales_with_box_size() {
        let cfg = DetectorConfig {
            center_jitter: 0.1,
            size_jitter: 0.0,
            miss_prob: 0.0,
            fp_rate: 0.0,
            ..Default::default()
        };
        let sim = DetectorSim::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let dets = sim.detect_clip(&truth_clip(), 60, &mut rng);
        let mut devs = Vec::new();
        for (f, frame) in dets.iter().enumerate() {
            let d = frame[0];
            devs.push((d.bbox.cx - (100.0 + f as f32 * 5.0)).abs());
        }
        let mean_dev: f32 = devs.iter().sum::<f32>() / devs.len() as f32;
        // 0.1 * 60 px box → ~6 px sigma, mean |N(0,6)| ≈ 4.8.
        assert!(mean_dev > 1.0 && mean_dev < 12.0, "mean dev {mean_dev}");
    }

    #[test]
    fn low_conf_detections_exist_under_default_config() {
        let sim = DetectorSim::new(DetectorConfig {
            low_conf_prob: 0.5,
            fp_rate: 0.0,
            miss_prob: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let dets = sim.detect_clip(&truth_clip(), 100, &mut rng);
        let low = dets.iter().flatten().filter(|d| d.score < 0.6).count();
        let high = dets.iter().flatten().filter(|d| d.score >= 0.6).count();
        assert!(low > 20, "low-conf {low}");
        assert!(high > 20, "high-conf {high}");
    }

    #[test]
    fn noise_level_scaling() {
        let l0 = DetectorConfig::at_noise_level(0.0);
        assert_eq!(l0.miss_prob, 0.0);
        assert_eq!(l0.center_jitter, 0.0);
        let l2 = DetectorConfig::at_noise_level(2.0);
        let l1 = DetectorConfig::at_noise_level(1.0);
        assert!(l2.miss_prob > l1.miss_prob);
        assert!(l2.fp_rate > l1.fp_rate);
    }
}
