//! Materialized window embeddings: amortizing Matcher work across queries.
//!
//! SketchQL is an *exploratory* system — users iterate on sketches against
//! the same uploaded video. With the learned similarity, candidate-window
//! embeddings do not depend on the query at all, so they can be computed
//! once per (video, model) and reused by every subsequent single-object
//! query; execution then reduces to one query embedding plus a dot-product
//! scan. This mirrors the materialized-view idea EVA (reference [10] of
//! the demo paper) applies to exploratory video analytics.

use serde::{Deserialize, Serialize};
use sketchql_telemetry::{self as telemetry, names};
use sketchql_trajectory::{Clip, ObjectClass, TrackId, TrajPoint, Trajectory};

use crate::embed_cache::embed_clips_parallel;
use crate::index::VideoIndex;
use crate::matcher::RetrievedMoment;
use crate::similarity::LearnedSimilarity;

/// One precomputed candidate: a track windowed to a frame range, embedded.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterializedEntry {
    /// The source track.
    pub track_id: TrackId,
    /// The track's class (for query-class pruning).
    pub class: ObjectClass,
    /// Window start frame.
    pub start: u32,
    /// Window end frame (inclusive).
    pub end: u32,
    /// The window clip's embedding (unit norm).
    pub embedding: Vec<f32>,
}

/// Build parameters for the materialized index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaterializeConfig {
    /// Window lengths (frames) to precompute.
    pub window_lens: [u32; 3],
    /// Stride between window starts, as a fraction of the window length.
    pub stride_frac: f32,
    /// A track must cover at least this fraction of a window.
    pub min_overlap_frac: f32,
    /// Worker threads for embedding.
    pub threads: usize,
}

impl Default for MaterializeConfig {
    fn default() -> Self {
        MaterializeConfig {
            window_lens: [68, 90, 135],
            stride_frac: 0.25,
            min_overlap_frac: 0.5,
            threads: 4,
        }
    }
}

/// Precomputed per-track window embeddings for one video under one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterializedWindows {
    /// The build parameters used.
    pub config: MaterializeConfig,
    /// All precomputed candidates.
    pub entries: Vec<MaterializedEntry>,
}

impl MaterializedWindows {
    /// Embeds every (track, window) candidate of the index.
    pub fn build(index: &VideoIndex, sim: &LearnedSimilarity, config: MaterializeConfig) -> Self {
        let _span = telemetry::span(names::MATERIALIZED_BUILD);
        // Enumerate tasks first, then embed in parallel. Window lengths
        // that clamp to the same value (short videos collapse several
        // configured lengths onto `index.frames`) are deduplicated —
        // repeating them would embed every window of that length once per
        // duplicate and store duplicate entries.
        let mut tasks: Vec<(usize, u32, u32)> = Vec::new();
        let mut seen_lens: Vec<u32> = Vec::new();
        for &wlen in &config.window_lens {
            let wlen = wlen.min(index.frames.max(1));
            if seen_lens.contains(&wlen) {
                continue;
            }
            seen_lens.push(wlen);
            let stride = ((wlen as f32 * config.stride_frac) as u32).max(1);
            let min_overlap = ((wlen as f32 * config.min_overlap_frac) as u32).max(1);
            let mut start = 0u32;
            loop {
                let end = (start + wlen - 1).min(index.frames.saturating_sub(1));
                for (ti, t) in index.tracks.iter().enumerate() {
                    if let (Some(s), Some(e)) = (t.start_frame(), t.end_frame()) {
                        let lo = s.max(start);
                        let hi = e.min(end);
                        if hi >= lo && (hi - lo + 1) >= min_overlap {
                            tasks.push((ti, start, end));
                        }
                    }
                }
                if end + 1 >= index.frames {
                    break;
                }
                start += stride;
            }
        }

        // Slice every task's clip, then push them through batched encoder
        // forwards split across the worker threads (identical embeddings
        // to one scalar forward per task, at a fraction of the overhead).
        let clips: Vec<Clip> = tasks
            .iter()
            .map(|&(ti, start, end)| {
                let t: &Trajectory = &index.tracks[ti];
                let pts: Vec<TrajPoint> = t
                    .points()
                    .iter()
                    .filter(|p| p.frame >= start && p.frame <= end)
                    .map(|p| TrajPoint::new(p.frame - start, p.bbox))
                    .collect();
                Clip::new(
                    index.frame_width,
                    index.frame_height,
                    vec![Trajectory::from_points(t.id, t.class, pts)],
                )
            })
            .collect();
        let embeddings = embed_clips_parallel(sim, &clips, config.threads);
        let mut entries: Vec<MaterializedEntry> = tasks
            .iter()
            .zip(embeddings)
            .filter_map(|(&(ti, start, end), embedding)| {
                let t = &index.tracks[ti];
                Some(MaterializedEntry {
                    track_id: t.id,
                    class: t.class,
                    start,
                    end,
                    embedding: embedding?,
                })
            })
            .collect();
        // Deterministic order regardless of thread count or interleaving.
        entries.sort_by_key(|e| (e.track_id, e.start, e.end));
        telemetry::counter(names::MATERIALIZED_WINDOWS).add(entries.len() as u64);

        MaterializedWindows { config, entries }
    }

    /// Number of materialized candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no candidates were materialized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Executes a **single-object** query against the materialized
    /// embeddings: one encoder pass for the query, then a dot-product scan.
    ///
    /// Returns `None` for multi-object queries (those need per-window
    /// object binding and fall back to the live [`Matcher`]).
    ///
    /// [`Matcher`]: crate::matcher::Matcher
    pub fn query(
        &self,
        sim: &LearnedSimilarity,
        query: &Clip,
        top_k: usize,
        nms_tiou: f32,
    ) -> Option<Vec<RetrievedMoment>> {
        if query.num_objects() != 1 {
            return None;
        }
        let _span = telemetry::span(names::MATERIALIZED_QUERY);
        let qe = sim.embed(query)?;
        let qclass = query.objects[0].class;
        let mut scored: Vec<RetrievedMoment> = self
            .entries
            .iter()
            .filter(|e| qclass.matches(&e.class))
            .map(|e| {
                let cos = sketchql_nn::cosine_similarity(&qe, &e.embedding);
                RetrievedMoment {
                    start: e.start,
                    end: e.end,
                    score: (cos + 1.0) * 0.5,
                    track_ids: vec![e.track_id],
                }
            })
            .collect();
        telemetry::counter(names::MATERIALIZED_SCANS).add(scored.len() as u64);
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.start.cmp(&b.start))
                .then(a.track_ids.cmp(&b.track_ids))
        });
        let mut kept: Vec<RetrievedMoment> = Vec::new();
        for m in scored {
            if kept.len() >= top_k {
                break;
            }
            let overlaps = kept
                .iter()
                .any(|k| k.temporal_iou(&m) >= nms_tiou && k.track_ids == m.track_ids);
            if !overlaps {
                kept.push(m);
            }
        }
        Some(kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train, TrainingConfig};
    use sketchql_trajectory::BBox;

    fn test_index() -> VideoIndex {
        let a = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..200)
                .map(|f| TrajPoint::new(f, BBox::new(f as f32 * 3.0, 300.0, 60.0, 35.0)))
                .collect(),
        );
        let b = Trajectory::from_points(
            2,
            ObjectClass::Person,
            (50..250)
                .map(|f| TrajPoint::new(f, BBox::new(400.0, (f - 50) as f32 * 2.0, 20.0, 50.0)))
                .collect(),
        );
        let clip = Clip::new(1280.0, 720.0, vec![a, b]);
        VideoIndex::from_clip("m", &clip, 300, 30.0)
    }

    fn tiny_sim() -> LearnedSimilarity {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 5;
        train(cfg).similarity()
    }

    #[test]
    fn build_materializes_class_tagged_windows() {
        let idx = test_index();
        let sim = tiny_sim();
        let m = MaterializedWindows::build(&idx, &sim, MaterializeConfig::default());
        assert!(!m.is_empty());
        assert!(m.entries.iter().any(|e| e.class == ObjectClass::Car));
        assert!(m.entries.iter().any(|e| e.class == ObjectClass::Person));
        for e in &m.entries {
            assert!(e.start <= e.end);
            assert!(e.end < 300);
            let n: f32 = e.embedding.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-3, "embedding should be unit, got {n}");
        }
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let idx = test_index();
        let sim = tiny_sim();
        let a = MaterializedWindows::build(
            &idx,
            &sim,
            MaterializeConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let b = MaterializedWindows::build(
            &idx,
            &sim,
            MaterializeConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.track_id, y.track_id);
            assert_eq!((x.start, x.end), (y.start, y.end));
            assert_eq!(x.embedding, y.embedding);
        }
    }

    #[test]
    fn clamped_window_lens_do_not_duplicate_entries() {
        // A 60-frame video: every configured window length clamps to 60,
        // so a naive build would materialize (and embed) each window once
        // per configured length.
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..60)
                .map(|f| TrajPoint::new(f, BBox::new(f as f32 * 4.0, 300.0, 60.0, 35.0)))
                .collect(),
        );
        let clip = Clip::new(1280.0, 720.0, vec![t]);
        let idx = VideoIndex::from_clip("short", &clip, 60, 30.0);
        let sim = tiny_sim();
        let m = MaterializedWindows::build(&idx, &sim, MaterializeConfig::default());
        assert!(!m.is_empty());
        let keys: std::collections::HashSet<_> = m
            .entries
            .iter()
            .map(|e| (e.track_id, e.start, e.end))
            .collect();
        assert_eq!(keys.len(), m.len(), "duplicate materialized entries");
    }

    #[test]
    fn query_prunes_by_class_and_ranks() {
        let idx = test_index();
        let sim = tiny_sim();
        let m = MaterializedWindows::build(&idx, &sim, MaterializeConfig::default());
        let query = Clip::new(
            1000.0,
            600.0,
            vec![Trajectory::from_points(
                0,
                ObjectClass::Person,
                (0..60)
                    .map(|i| {
                        TrajPoint::new(i, BBox::new(300.0, 100.0 + i as f32 * 4.0, 25.0, 60.0))
                    })
                    .collect(),
            )],
        );
        let results = m.query(&sim, &query, 5, 0.45).unwrap();
        assert!(!results.is_empty());
        for r in &results {
            assert_eq!(
                r.track_ids,
                vec![2],
                "person query must bind the person track"
            );
            assert!((0.0..=1.0).contains(&r.score));
        }
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn multi_object_queries_fall_back() {
        let idx = test_index();
        let sim = tiny_sim();
        let m = MaterializedWindows::build(&idx, &sim, MaterializeConfig::default());
        let q2 = sketchql_datasets::query_clip(sketchql_datasets::EventKind::PerpendicularCrossing);
        assert!(m.query(&sim, &q2, 5, 0.45).is_none());
    }

    #[test]
    fn any_class_query_scans_everything() {
        let idx = test_index();
        let sim = tiny_sim();
        let m = MaterializedWindows::build(&idx, &sim, MaterializeConfig::default());
        let query = Clip::new(
            1000.0,
            600.0,
            vec![Trajectory::from_points(
                0,
                ObjectClass::Any,
                (0..60)
                    .map(|i| {
                        TrajPoint::new(i, BBox::new(100.0 + i as f32 * 5.0, 300.0, 50.0, 40.0))
                    })
                    .collect(),
            )],
        );
        let results = m.query(&sim, &query, 10, 0.45).unwrap();
        let ids: std::collections::HashSet<_> =
            results.iter().flat_map(|r| r.track_ids.clone()).collect();
        assert!(ids.len() >= 2, "Any should reach both tracks: {ids:?}");
    }
}
