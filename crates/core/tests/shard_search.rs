//! Sharded-store correctness: the shard-set grid must equal the
//! monolithic grid exactly (no boundary duplicates or gaps), sharded
//! search must report bit-identical scores to the monolithic store and
//! the full scan, shards must load lazily (residency follows probes),
//! and a corrupt shard must fail loudly while queries fall back.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::cancel::CancelToken;
use sketchql::matcher::{Matcher, MatcherConfig};
use sketchql::similarity::LearnedSimilarity;
use sketchql::training::{train, TrainingConfig};
use sketchql::vshard::{enumerate_store_rows, ingest_sharded, IngestProgress, ShardSet, StoreTier};
use sketchql::vstore::{ingest, IngestConfig};
use sketchql::VideoIndex;
use sketchql_datasets::{generate_video, query_clip, EventKind, SceneFamily, VideoConfig};
use std::path::PathBuf;

fn tiny_model() -> sketchql::training::TrainedModel {
    let mut cfg = TrainingConfig::tiny();
    cfg.steps = 8;
    train(cfg)
}

fn test_index(seed: u64) -> VideoIndex {
    let cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind: 1,
        distractors: 2,
        fps: 30.0,
    };
    VideoIndex::from_truth(&generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed)))
}

fn matcher(model: &sketchql::training::TrainedModel) -> Matcher<LearnedSimilarity> {
    Matcher::with_config(model.similarity(), MatcherConfig::default())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skql-shard-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The union of every shard range's enumeration must reproduce the
/// monolithic enumeration exactly: same rows, same multiplicity, no
/// window lost or duplicated at any shard boundary. Exercises several
/// shard widths, including ones that land boundaries mid-stride and a
/// width larger than the video.
#[test]
fn sharded_window_grid_equals_monolithic_grid() {
    let index = test_index(31);
    let config = IngestConfig::from_matcher(&MatcherConfig::default(), &[40, 64]);
    let (mono_rows, mono_clips) = enumerate_store_rows(&index, &config, None);
    assert!(!mono_rows.is_empty(), "grid enumeration came up empty");

    for shard_frames in [1u32, 7, 33, 64, 100, index.frames, index.frames * 2] {
        let mut union = Vec::new();
        let mut lo = 0u32;
        while lo < index.frames {
            let hi = lo.saturating_add(shard_frames - 1).min(index.frames - 1);
            let (rows, clips) = enumerate_store_rows(&index, &config, Some((lo, hi)));
            for row in &rows {
                assert!(
                    (lo..=hi).contains(&row.start),
                    "shard [{lo}, {hi}] emitted a window starting at {} it does not own",
                    row.start
                );
            }
            assert_eq!(rows.len(), clips.len());
            union.extend(rows);
            lo = hi + 1;
        }
        let key = |r: &sketchql_store::StoreRow| (r.track_id, r.start, r.end);
        let mut got: Vec<_> = union.iter().map(key).collect();
        let mut want: Vec<_> = mono_rows.iter().map(key).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(
            got, want,
            "shard width {shard_frames}: union of shard grids != monolithic grid"
        );
    }
    // The unrestricted enumeration also matches what monolithic ingest
    // would embed: one clip per row, aligned.
    assert_eq!(mono_rows.len(), mono_clips.len());
}

/// End-to-end bit-identity: with exhaustive probing, the sharded path,
/// the monolithic store path, and the full scan must all report the
/// same moments with bit-identical scores — across 1, 3, and many
/// shards, and across a disk round trip (simulated server restart).
#[test]
fn sharded_search_matches_monolithic_and_scan_exactly() {
    let model = tiny_model();
    let index = test_index(32);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let scan = m.search(&index, &query).unwrap();
    assert!(!scan.is_empty(), "scan found nothing to compare against");

    let mut mono = ingest(&m.sim, &index, "v", &ingest_cfg);
    mono.nprobe = mono.nlist();
    let via_mono = m
        .search_with_store(&index, &mono, &query, &CancelToken::none())
        .unwrap();
    assert!(via_mono.from_store);
    assert_eq!(via_mono.moments, scan);

    for shard_frames in [index.frames, index.frames / 3 + 1, 25] {
        let dir = temp_dir(&format!("exact-{shard_frames}"));
        let set = ingest_sharded(
            &m.sim,
            &index,
            "v",
            &ingest_cfg,
            shard_frames,
            &dir,
            &|_| {},
        )
        .unwrap();
        let mut set = set;
        set.nprobe = set.nlist();
        let via_shards = m
            .search_with_shards(&index, &set, &query, &CancelToken::none())
            .unwrap();
        assert!(via_shards.from_store, "{shard_frames}: fell back");
        assert_eq!(
            via_shards.moments, scan,
            "{shard_frames}-frame shards diverged from scan"
        );
        for (a, b) in via_shards.moments.iter().zip(&scan) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }

        // Reopen from disk — the restart path — and re-check.
        drop(set);
        let mut reopened = ShardSet::open(&dir).unwrap();
        reopened.nprobe = reopened.nlist();
        assert_eq!(reopened.resident_shards(), 0, "attach must not load shards");
        let again = m
            .search_with_shards(&index, &reopened, &query, &CancelToken::none())
            .unwrap();
        assert!(again.from_store);
        assert_eq!(again.moments, scan, "reopened shard set diverged");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The batched entry point must agree bit-for-bit with the solo one.
#[test]
fn sharded_batch_matches_solo() {
    let model = tiny_model();
    let index = test_index(33);
    let m = matcher(&model);
    let queries = [
        query_clip(EventKind::LeftTurn),
        query_clip(EventKind::StopAndGo),
        query_clip(EventKind::LaneChange),
    ];
    let spans: Vec<u32> = queries.iter().map(|q| q.span()).collect();
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &spans);
    let dir = temp_dir("batch");
    let mut set = ingest_sharded(&m.sim, &index, "v", &ingest_cfg, 40, &dir, &|_| {}).unwrap();
    set.nprobe = set.nlist();

    let none = CancelToken::none();
    let batch: Vec<_> = queries.iter().map(|q| (q, &none)).collect();
    let batched = m.search_with_shards_batch(&index, &set, &batch);
    for (q, r) in queries.iter().zip(batched) {
        let solo = m.search_with_shards(&index, &set, q, &none).unwrap();
        let r = r.unwrap();
        assert_eq!(r.from_store, solo.from_store);
        assert_eq!(r.moments, solo.moments, "batch diverged from solo");
        for (a, b) in r.moments.iter().zip(&solo.moments) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert!(solo.from_store, "{q:?} unexpectedly fell back");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Residency follows probes: attach loads nothing, a narrow probe
/// loads only the shards owning rows under the probed centroids, and
/// manifest row counts let empty shards be skipped without a read.
#[test]
fn shards_load_lazily_and_only_when_probed() {
    let model = tiny_model();
    let index = test_index(34);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let dir = temp_dir("lazy");
    // Narrow shards so the set has several; narrow probe so a query
    // visits a strict subset of centroids.
    let set = ingest_sharded(&m.sim, &index, "v", &ingest_cfg, 20, &dir, &|_| {}).unwrap();
    drop(set);
    let mut set = ShardSet::open(&dir).unwrap();
    assert!(set.shard_count() > 2, "fixture needs several shards");
    assert_eq!(set.resident_shards(), 0);
    set.nprobe = 1;

    let r = m
        .search_with_shards(&index, &set, &query, &CancelToken::none())
        .unwrap();
    assert!(r.from_store);
    let after_one = set.resident_shards();
    assert!(
        after_one <= set.shard_count(),
        "resident {} of {}",
        after_one,
        set.shard_count()
    );
    // Exhaustive probing afterwards may only grow residency.
    set.nprobe = set.nlist();
    m.search_with_shards(&index, &set, &query, &CancelToken::none())
        .unwrap();
    assert!(set.resident_shards() >= after_one);
    std::fs::remove_dir_all(&dir).ok();
}

/// LRU eviction under `--max-resident-shards`: with the cap at 1, a
/// full-set probe still answers bit-identically to the uncapped set
/// (evicted shards reload transparently), residency never exceeds the
/// cap at rest, and the eviction counter moves.
#[test]
fn eviction_reloads_shards_with_identical_scores() {
    let model = tiny_model();
    let index = test_index(38);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let dir = temp_dir("evict");
    let set = ingest_sharded(&m.sim, &index, "v", &ingest_cfg, 20, &dir, &|_| {}).unwrap();
    drop(set);

    // Uncapped reference answer, exhaustive probe.
    let mut reference = ShardSet::open(&dir).unwrap();
    assert!(reference.shard_count() > 2, "fixture needs several shards");
    reference.nprobe = reference.nlist();
    let want = m
        .search_with_shards(&index, &reference, &query, &CancelToken::none())
        .unwrap();
    assert!(want.from_store);
    drop(reference);

    let mut set = ShardSet::open(&dir).unwrap();
    set.nprobe = set.nlist();
    set.set_max_resident(Some(1));
    let evictions_before =
        sketchql_telemetry::counter(sketchql_telemetry::names::SHARD_EVICTIONS).get();
    for round in 0..2 {
        let got = m
            .search_with_shards(&index, &set, &query, &CancelToken::none())
            .unwrap();
        assert!(got.from_store, "round {round}: fell back");
        assert_eq!(got.moments, want.moments, "round {round}: diverged");
        for (a, b) in got.moments.iter().zip(&want.moments) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert!(
            set.resident_shards() <= 1,
            "round {round}: cap exceeded at rest ({} resident)",
            set.resident_shards()
        );
    }
    if sketchql_telemetry::is_enabled() {
        let evictions_after =
            sketchql_telemetry::counter(sketchql_telemetry::names::SHARD_EVICTIONS).get();
        assert!(
            evictions_after > evictions_before,
            "probing several shards under a cap of 1 must evict"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt shard is detected at first probe (the deferred checksum),
/// named loudly by `verify`, and queries fall back to the scan rather
/// than serving partial results.
#[test]
fn corrupt_shard_fails_loudly_and_queries_fall_back() {
    let model = tiny_model();
    let index = test_index(35);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let dir = temp_dir("corrupt");
    let set = ingest_sharded(&m.sim, &index, "v", &ingest_cfg, 30, &dir, &|_| {}).unwrap();
    let victim = dir.join(&set.manifest().shards[0].file);
    drop(set);

    // Flip one payload byte without changing the length: the header
    // still validates, so attach succeeds — corruption must surface at
    // load time, naming the file.
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    let mut set = ShardSet::open(&dir).unwrap();
    set.nprobe = set.nlist();
    let err = set.verify().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(victim.file_name().unwrap().to_str().unwrap()),
        "error must name the corrupt shard, got: {msg}"
    );

    let scan = m.search(&index, &query).unwrap();
    let r = m
        .search_with_shards(&index, &set, &query, &CancelToken::none())
        .unwrap();
    assert!(!r.from_store, "corrupt shard must force scan fallback");
    assert_eq!(r.moments, scan);
    std::fs::remove_dir_all(&dir).ok();
}

/// Parallel ingest must be deterministic: 1 worker and 3 workers write
/// byte-identical shard files and manifests.
#[test]
fn parallel_ingest_is_deterministic() {
    let model = tiny_model();
    let index = test_index(36);
    let m = matcher(&model);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[48]);
    let mut serial_cfg = ingest_cfg.clone();
    serial_cfg.threads = 1;
    let mut parallel_cfg = ingest_cfg;
    parallel_cfg.threads = 3;

    let dir1 = temp_dir("det-1");
    let dir3 = temp_dir("det-3");
    let mut progress_events = std::sync::Mutex::new(0usize);
    ingest_sharded(&m.sim, &index, "v", &serial_cfg, 30, &dir1, &|_| {}).unwrap();
    ingest_sharded(&m.sim, &index, "v", &parallel_cfg, 30, &dir3, &|e| {
        if matches!(e, IngestProgress::ShardWritten { .. }) {
            *progress_events.lock().unwrap() += 1;
        }
    })
    .unwrap();
    assert!(
        *progress_events.get_mut().unwrap() > 0,
        "no progress events"
    );

    let mut names: Vec<String> = std::fs::read_dir(&dir1)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    for name in &names {
        let a = std::fs::read(dir1.join(name)).unwrap();
        let b = std::fs::read(dir3.join(name)).unwrap();
        assert_eq!(a, b, "{name} differs between 1- and 3-thread ingest");
    }
    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir3).ok();
}

/// The tier abstraction serves both shapes identically, and a
/// monolithic `.skstore` still attaches (as a lazily loaded one-shard
/// tier) — the migration guarantee.
#[test]
fn store_tier_serves_monolithic_and_sharded_alike() {
    let model = tiny_model();
    let index = test_index(37);
    let m = matcher(&model);
    let query = query_clip(EventKind::LeftTurn);
    let ingest_cfg = IngestConfig::from_matcher(&m.config, &[query.span()]);
    let dir = temp_dir("tier");

    // One dataset as a monolithic file, another as a shard set.
    let mono = ingest(&m.sim, &index, "mono", &ingest_cfg);
    mono.save(&dir.join("mono.skstore")).unwrap();
    ingest_sharded(
        &m.sim,
        &index,
        "sharded",
        &ingest_cfg,
        25,
        &dir.join("sharded.skset"),
        &|_| {},
    )
    .unwrap();

    let mut tiers = sketchql::vshard::load_store_tier_dir(&dir).unwrap();
    assert_eq!(tiers.len(), 2, "both store shapes must attach");
    let scan = m.search(&index, &query).unwrap();
    for (name, tier) in tiers.iter_mut() {
        tier.set_nprobe(usize::MAX / 2);
        if let StoreTier::Monolithic(lazy) = tier {
            assert!(!lazy.is_loaded(), "{name}: attach must not load payload");
        }
        let r = m
            .search_with_tier(&index, tier, &query, &CancelToken::none())
            .unwrap();
        assert!(r.from_store, "{name} fell back");
        assert_eq!(r.moments, scan, "{name} diverged from scan");
    }
    std::fs::remove_dir_all(&dir).ok();
}
