//! T1/T5 — raw cost of each classical trajectory distance on
//! canonical-length (32-point) paths, and feature extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketchql_trajectory::{distance, extract_features, DistanceKind, Point2};
use std::hint::black_box;

fn rand_path(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Point2::new(0.5, 0.5);
    (0..n)
        .map(|_| {
            p = Point2::new(
                (p.x + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
                (p.y + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
            );
            p
        })
        .collect()
}

fn bench_distances(c: &mut Criterion) {
    let a = rand_path(32, 1);
    let b = rand_path(32, 2);
    let mut group = c.benchmark_group("path_distance_32pt");
    for &kind in DistanceKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |bch, &k| {
                bch.iter(|| black_box(distance::path_distance(k, black_box(&a), black_box(&b))))
            },
        );
    }
    group.finish();

    // Scaling with path length for the quadratic measures.
    let mut group = c.benchmark_group("dtw_scaling");
    for n in [16usize, 64, 256] {
        let a = rand_path(n, 3);
        let b = rand_path(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(distance::dtw(black_box(&a), black_box(&b))))
        });
    }
    group.finish();

    let clip = sketchql_bench::bench_clip(9);
    c.bench_function("extract_features_32", |b| {
        b.iter(|| black_box(extract_features(black_box(&clip), 32)))
    });
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
