//! Scheduler tail-latency under a mixed-deadline workload: FIFO vs the
//! deadline/priority policy, with byte-identity against a serial engine.
//!
//! The workload models the paper's demo serving situation: a stream of
//! bulk analytics queries (big dataset, no deadline, class `bulk`) keeps
//! the queue deep, while an interactive client (small dataset, a
//! deadline, class `tight` at priority 10) issues one sketch query at a
//! time and cares about its round trip. Not a per-iteration
//! microbenchmark: each policy runs the identical closed/open-loop mix
//! and reports wall-clock throughput and the interactive percentiles as
//!
//! ```text
//! BENCH sched/fifo qps=38.2 tight_p50_ms=210.0 tight_p99_ms=420.0 bulk=310 tight=30
//! BENCH sched/deadline qps=37.9 tight_p50_ms=60.1 tight_p99_ms=95.3 bulk=305 tight=30
//! BENCH sched/gate p99_ratio=4.41 tput_ratio=0.99 identical=1
//! ```
//!
//! Under FIFO the interactive query waits behind the whole bulk backlog;
//! under the deadline policy its base priority and deadline put it at
//! the head of the queue, and deadline-aware formation keeps it out of
//! batches it cannot afford. `identical=1` asserts every query's moments
//! (both classes, both policies) were byte-identical to a 1-worker
//! serial engine; `scripts/bench_sched.sh` gates on all three fields.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::{RetrievedMoment, VideoIndex};
use sketchql_bench::{bench_model, bench_video};
use sketchql_datasets::{generate_video, query_clip, EventKind, SceneFamily, VideoConfig};
use sketchql_server::{ClassConfig, Engine, EngineConfig, QuerySpec, SchedMode, SchedPolicy};

/// Worker threads in both configurations under test.
const WORKERS: usize = 2;

/// Open-loop bulk submitters; each keeps a burst of queries queued so
/// the backlog the interactive query meets is deep and realistic.
const BULK_CLIENTS: usize = 6;
const BULK_BURST: usize = 8;

/// The bulk mix hammers the big dataset; the interactive client queries
/// the small one, so the two classes never fuse with each other.
const BULK_EVENTS: &[EventKind] = &[EventKind::LeftTurn, EventKind::RightTurn];
const TIGHT_EVENT: EventKind = EventKind::UTurn;

/// Generous interactive deadline: orders the queue (EDF) and bounds
/// batch formation without ever actually expiring, so both policies
/// answer every query and the latency comparison stays apples-to-apples.
const TIGHT_DEADLINE: Duration = Duration::from_secs(60);

/// Interactive arrivals are open-loop: one query issued every interval
/// on a fixed schedule, identical under both policies. A closed loop
/// would let FIFO's slow responses suppress its own arrival rate
/// (coordinated omission) and would shrink the deadline run's wall so
/// much that the interactive class's solo scans dominate its
/// throughput average.
const TIGHT_INTERVAL: Duration = Duration::from_millis(1500);

fn datasets() -> BTreeMap<String, VideoIndex> {
    // The bulk dataset is the standard bench fixture (slow scans build a
    // real backlog); the interactive dataset is deliberately small, like
    // the clip a demo user sketches against. Its cheap solo scan keeps
    // the interactive class from eating fused-batch capacity, so the two
    // policies move the same bulk work and the gate can demand both a
    // latency win and level throughput.
    let tight_cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind: 1,
        distractors: 0,
        fps: 10.0,
    };
    let mut map = BTreeMap::new();
    map.insert(
        "bulkset".to_string(),
        VideoIndex::from_truth(&bench_video(1, 42)),
    );
    map.insert(
        "tightset".to_string(),
        VideoIndex::from_truth(&generate_video(
            tight_cfg,
            43,
            &mut StdRng::seed_from_u64(43),
        )),
    );
    map
}

fn policy(mode: SchedMode) -> SchedPolicy {
    let mut classes = BTreeMap::new();
    classes.insert("bulk".to_string(), ClassConfig::default());
    classes.insert(
        "tight".to_string(),
        ClassConfig {
            priority: 10,
            ..Default::default()
        },
    );
    SchedPolicy {
        mode,
        classes,
        // Slow aging: the default (100ms per credit) would let a deep
        // bulk backlog out-promote the interactive class's base priority
        // within a second, which is exactly the inversion this workload
        // is provisioned to avoid. Starvation protection stays on, just
        // on an operator timescale rather than a scan timescale.
        aging_ms: 10_000,
        ..Default::default()
    }
}

fn spec(dataset: &str, event: EventKind, class: &str) -> QuerySpec {
    let mut q = QuerySpec::new(dataset, query_clip(event));
    q.class = Some(class.to_string());
    q
}

type Expected = BTreeMap<(String, String), Vec<RetrievedMoment>>;

/// Ground truth from a 1-worker engine executing one query at a time.
fn serial_reference() -> Expected {
    let engine = Engine::start(
        bench_model(),
        datasets(),
        EngineConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let mut expected = Expected::new();
    for &event in BULK_EVENTS {
        let result = engine
            .execute(QuerySpec::new("bulkset", query_clip(event)))
            .expect("serial reference query");
        expected.insert(
            ("bulkset".to_string(), event.name().to_string()),
            result.moments,
        );
    }
    let result = engine
        .execute(QuerySpec::new("tightset", query_clip(TIGHT_EVENT)))
        .expect("serial reference query");
    expected.insert(
        ("tightset".to_string(), TIGHT_EVENT.name().to_string()),
        result.moments,
    );
    engine.shutdown();
    expected
}

struct RunOutcome {
    qps: f64,
    tight_p50_ms: f64,
    tight_p99_ms: f64,
    bulk_done: u64,
    identical: bool,
}

fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

fn run_mixed(mode: SchedMode, tight_queries: usize, expected: &Expected) -> RunOutcome {
    let engine = Arc::new(Engine::start(
        bench_model(),
        datasets(),
        EngineConfig {
            workers: WORKERS,
            queue_depth: 4 * BULK_CLIENTS * BULK_BURST,
            fused_batch: 4,
            sched: policy(mode),
            ..Default::default()
        },
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let bulk_done = Arc::new(AtomicU64::new(0));
    // diag: per-query batch widths and amortized scan cpu (execute / width)
    let bulk_width = Arc::new(AtomicU64::new(0));
    let bulk_cpu_us = Arc::new(AtomicU64::new(0));
    let tight_width = Arc::new(AtomicU64::new(0));
    let tight_cpu_us = Arc::new(AtomicU64::new(0));
    let identical = Arc::new(AtomicBool::new(true));
    let check = |identical: &AtomicBool, key: (String, String), moments: &[RetrievedMoment]| {
        if expected.get(&key).map(Vec::as_slice) != Some(moments) {
            identical.store(false, Ordering::Relaxed);
        }
    };

    let started = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        for c in 0..BULK_CLIENTS {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let bulk_done = Arc::clone(&bulk_done);
            let identical = Arc::clone(&identical);
            let bulk_width = Arc::clone(&bulk_width);
            let bulk_cpu_us = Arc::clone(&bulk_cpu_us);
            let check = &check;
            scope.spawn(move || {
                // Pipelined open loop: keep BULK_BURST queries queued at
                // all times so the backlog the interactive query meets
                // stays deep for the whole run.
                let mut round = c;
                let mut handles = std::collections::VecDeque::new();
                loop {
                    while handles.len() < BULK_BURST && !stop.load(Ordering::Relaxed) {
                        let event = BULK_EVENTS[round % BULK_EVENTS.len()];
                        round += 1;
                        if let Ok(h) = engine.submit(spec("bulkset", event, "bulk")) {
                            handles.push_back((event, h));
                        }
                    }
                    let Some((event, handle)) = handles.pop_front() else {
                        break;
                    };
                    if let Ok(result) = handle.wait() {
                        check(
                            &identical,
                            ("bulkset".to_string(), event.name().to_string()),
                            &result.moments,
                        );
                        bulk_width.fetch_add(result.batch_size as u64, Ordering::Relaxed);
                        bulk_cpu_us.fetch_add(
                            (result.execute.as_micros() as u64) / result.batch_size as u64,
                            Ordering::Relaxed,
                        );
                        bulk_done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // The interactive client: queries on a fixed arrival schedule,
        // each waited on by its own thread since under FIFO several are
        // in flight at once.
        let issue_started = Instant::now();
        let waiters: Vec<_> = (0..tight_queries)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let identical = Arc::clone(&identical);
                let tight_width = Arc::clone(&tight_width);
                let tight_cpu_us = Arc::clone(&tight_cpu_us);
                let check = &check;
                scope.spawn(move || {
                    let due = issue_started + TIGHT_INTERVAL * i as u32;
                    if let Some(gap) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(gap);
                    }
                    let mut q = spec("tightset", TIGHT_EVENT, "tight");
                    q.deadline = Some(TIGHT_DEADLINE);
                    let t0 = Instant::now();
                    let result = engine.execute(q).expect("interactive query must succeed");
                    let latency = t0.elapsed();
                    tight_width.fetch_add(result.batch_size as u64, Ordering::Relaxed);
                    tight_cpu_us.fetch_add(
                        (result.execute.as_micros() as u64) / result.batch_size as u64,
                        Ordering::Relaxed,
                    );
                    check(
                        &identical,
                        ("tightset".to_string(), TIGHT_EVENT.name().to_string()),
                        &result.moments,
                    );
                    latency
                })
            })
            .collect();
        let latencies: Vec<Duration> = waiters
            .into_iter()
            .map(|w| w.join().expect("interactive waiter"))
            .collect();
        stop.store(true, Ordering::Relaxed);
        latencies
    });
    let wall = started.elapsed();
    engine.shutdown();

    let bulk_done = bulk_done.load(Ordering::Relaxed);
    eprintln!(
        "# diag {:?}: wall={:.1}s bulk={} avg_bulk_width={:.2} bulk_scan_cpu={:.1}s \
         avg_tight_width={:.2} tight_scan_cpu={:.1}s",
        mode,
        wall.as_secs_f64(),
        bulk_done,
        bulk_width.load(Ordering::Relaxed) as f64 / bulk_done.max(1) as f64,
        bulk_cpu_us.load(Ordering::Relaxed) as f64 / 1e6,
        tight_width.load(Ordering::Relaxed) as f64 / tight_queries.max(1) as f64,
        tight_cpu_us.load(Ordering::Relaxed) as f64 / 1e6,
    );
    let mut sorted = latencies;
    sorted.sort();
    RunOutcome {
        qps: (bulk_done + sorted.len() as u64) as f64 / wall.as_secs_f64(),
        tight_p50_ms: percentile_ms(&sorted, 0.50),
        tight_p99_ms: percentile_ms(&sorted, 0.99),
        bulk_done,
        identical: identical.load(Ordering::Relaxed),
    }
}

fn main() {
    let quick = std::env::var_os("SKETCHQL_BENCH_QUICK").is_some();
    let tight_queries = if quick { 6 } else { 16 };
    println!(
        "# sched bench: {BULK_CLIENTS}x{BULK_BURST} open-loop bulk vs {tight_queries} \
         interactive queries, {WORKERS} workers, telemetry feature {}",
        if cfg!(feature = "telemetry") {
            "on"
        } else {
            "off"
        }
    );

    let expected = serial_reference();

    let fifo = run_mixed(SchedMode::Fifo, tight_queries, &expected);
    println!(
        "BENCH sched/fifo qps={:.2} tight_p50_ms={:.1} tight_p99_ms={:.1} bulk={} tight={}",
        fifo.qps, fifo.tight_p50_ms, fifo.tight_p99_ms, fifo.bulk_done, tight_queries
    );

    let deadline = run_mixed(SchedMode::Deadline, tight_queries, &expected);
    println!(
        "BENCH sched/deadline qps={:.2} tight_p50_ms={:.1} tight_p99_ms={:.1} bulk={} tight={}",
        deadline.qps,
        deadline.tight_p50_ms,
        deadline.tight_p99_ms,
        deadline.bulk_done,
        tight_queries
    );

    let identical = fifo.identical && deadline.identical;
    println!(
        "BENCH sched/gate p99_ratio={:.2} tput_ratio={:.2} identical={}",
        fifo.tight_p99_ms / deadline.tight_p99_ms,
        deadline.qps / fifo.qps,
        i32::from(identical)
    );
    assert!(
        identical,
        "scheduled results diverged from the 1-worker serial reference"
    );
}
