#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the tier-1 verify.
#
#   scripts/check.sh
#
# Run before sending a change. Mirrors what CI would run; everything is
# offline (the workspace vendors its dependencies under compat/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== feature check: telemetry disabled still builds and tests"
# This runs BEFORE the tier-1 build: both build --release into the same
# target dir, and the smokes below need the default-features binary
# (flight recorder, slow log, scrape) to be the one left on disk.
cargo build --release --no-default-features
cargo test -q --no-default-features

echo "== tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== server smoke (CLI serve/client round trip)"
scripts/smoke_server.sh

echo "== trace smoke (trace id -> span tree -> scrape -> slow log)"
scripts/smoke_trace.sh

echo "== profile smoke (folded stacks -> resource waterfall -> top -> rotation)"
scripts/smoke_profile.sh

echo "== server throughput smoke (quick load)"
# The quick load is small and noisy, so the smoke bar is looser than the
# full bench's 3x acceptance bar (run scripts/bench_server.sh for that),
# and the result goes to target/ so the committed full-run JSON survives.
SKETCHQL_BENCH_QUICK=1 SKETCHQL_SERVER_SPEEDUP_MIN=2 \
    SKETCHQL_SERVER_BENCH_JSON=target/BENCH_server_smoke.json \
    scripts/bench_server.sh

echo "== scheduler smoke (FIFO vs deadline policy, quick mixed load)"
# The quick run has few interactive samples, so the smoke p99 bar is
# looser than the full bench's 2x acceptance bar (run
# scripts/bench_sched.sh for that), and the result goes to target/ so
# the committed full-run JSON survives.
SKETCHQL_BENCH_QUICK=1 SKETCHQL_SCHED_P99_MIN=1.5 SKETCHQL_SCHED_TPUT_MIN=0.8 \
    SKETCHQL_SCHED_BENCH_JSON=target/BENCH_sched_smoke.json \
    scripts/bench_sched.sh

echo "== store smoke (ingest -> restart -> serve --store-dir round trip)"
scripts/smoke_store.sh

echo "== store speedup + recall smoke (quick samples)"
# Quick samples are noisy, so the smoke speedup bar is looser than the
# full bench's 5x acceptance bar (run scripts/bench_store.sh for that);
# the recall bar stays at the real 0.95 because recall is deterministic.
SKETCHQL_BENCH_QUICK=1 SKETCHQL_STORE_SPEEDUP_MIN=3 \
    SKETCHQL_STORE_BENCH_JSON=target/BENCH_store_smoke.json \
    scripts/bench_store.sh

echo "== shard smoke (sharded ingest -> restart -> byte-identical query -> serve)"
scripts/smoke_shard.sh

echo "== shard attach + ingest + recall-parity smoke (quick samples)"
# Recall parity and the attach fraction are deterministic, so those bars
# stay at the real acceptance values even in quick mode; the parallel
# ingest bar self-adjusts to the machine (see bench_shard.sh).
SKETCHQL_BENCH_QUICK=1 \
    SKETCHQL_SHARD_BENCH_JSON=target/BENCH_shard_smoke.json \
    scripts/bench_shard.sh

echo "== live smoke (append -> standing query fires on the new epoch -> restart)"
scripts/smoke_live.sh

echo "== live append cost + equivalence smoke (quick samples)"
# Quick mode appends a much larger fraction of the video (~30% vs the
# full bench's ~10%), so the time bar is proportionally looser (run
# scripts/bench_live.sh for the real 0.20 bar); equivalence checks stay
# exact because they are deterministic.
SKETCHQL_BENCH_QUICK=1 SKETCHQL_LIVE_APPEND_FRAC=0.6 \
    SKETCHQL_LIVE_BENCH_JSON=target/BENCH_live_smoke.json \
    scripts/bench_live.sh

echo "== matcher speedup smoke (quick samples)"
# 3 quick samples are noisy, so the smoke bar is looser than the full
# bench's 3x acceptance bar (run scripts/bench_matcher.sh for that), and
# the result goes to target/ so the committed full-run JSON survives.
SKETCHQL_BENCH_QUICK=1 SKETCHQL_MATCHER_SPEEDUP_MIN=2 \
    SKETCHQL_MATCHER_BENCH_JSON=target/BENCH_matcher_smoke.json \
    scripts/bench_matcher.sh

echo "ok: all checks passed"
