//! Multi-object clips — the unit of comparison in SketchQL.
//!
//! Both the user's visual query (compiled by the sketcher) and every
//! candidate video window considered by the Matcher are [`Clip`]s: a set of
//! object trajectories over a common frame range, plus the frame geometry
//! they were observed in.

use crate::bbox::BBox;
use crate::object::ObjectClass;
use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};

/// A multi-object bounding box clip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clip {
    /// Frame width of the coordinate space the boxes live in.
    pub frame_width: f32,
    /// Frame height of the coordinate space the boxes live in.
    pub frame_height: f32,
    /// The participating object trajectories. Order is significant for
    /// query/candidate correspondence: object `i` of the query is compared
    /// against object `i` of the candidate.
    pub objects: Vec<Trajectory>,
}

impl Clip {
    /// Creates a clip from trajectories observed in a `w x h` frame.
    pub fn new(frame_width: f32, frame_height: f32, objects: Vec<Trajectory>) -> Self {
        Clip {
            frame_width,
            frame_height,
            objects,
        }
    }

    /// Number of objects.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Whether the clip has no objects or all trajectories are empty.
    pub fn is_empty(&self) -> bool {
        self.objects.iter().all(|t| t.is_empty())
    }

    /// Earliest observed frame across objects.
    pub fn start_frame(&self) -> Option<u32> {
        self.objects.iter().filter_map(|t| t.start_frame()).min()
    }

    /// Latest observed frame across objects.
    pub fn end_frame(&self) -> Option<u32> {
        self.objects.iter().filter_map(|t| t.end_frame()).max()
    }

    /// Frames spanned, counting gaps.
    pub fn span(&self) -> u32 {
        match (self.start_frame(), self.end_frame()) {
            (Some(s), Some(e)) => e - s + 1,
            _ => 0,
        }
    }

    /// The classes of the objects, in order.
    pub fn classes(&self) -> Vec<ObjectClass> {
        self.objects.iter().map(|t| t.class).collect()
    }

    /// Restricts every trajectory to `[start, end]` and rebases frames to 0.
    pub fn window(&self, start: u32, end: u32) -> Clip {
        let objects = self
            .objects
            .iter()
            .map(|t| {
                let s = t.slice(start, end);
                // Rebase against the *window* start so cross-object timing
                // inside the window is preserved.
                let pts = s
                    .points()
                    .iter()
                    .map(|p| crate::trajectory::TrajPoint::new(p.frame - start, p.bbox))
                    .collect();
                Trajectory::from_points(t.id, t.class, pts)
            })
            .collect();
        Clip {
            frame_width: self.frame_width,
            frame_height: self.frame_height,
            objects,
        }
    }

    /// The tight bounds covering every box in the clip, or `None` if empty.
    pub fn bounds(&self) -> Option<BBox> {
        let mut acc: Option<BBox> = None;
        for t in &self.objects {
            for p in t.points() {
                acc = Some(match acc {
                    Some(b) => b.union_bounds(&p.bbox),
                    None => p.bbox,
                });
            }
        }
        acc
    }

    /// Canonical normalization used before computing similarity.
    ///
    /// Translates and uniformly scales all boxes so the clip's tight bounds
    /// map into the unit square `[0,1]^2`, centered. This is what gives the
    /// encoder (and the classical baselines) invariance to *where* on screen
    /// an event happens and *how large* it appears — the paper's motivating
    /// examples (near vs far cars, Figure 1) differ exactly in those
    /// nuisances.
    pub fn normalized(&self) -> Clip {
        let Some(b) = self.bounds() else {
            return self.clone();
        };
        let scale_src = b.w.max(b.h).max(1e-6);
        let s = 1.0 / scale_src;
        let objects = self
            .objects
            .iter()
            .map(|t| {
                let pts = t
                    .points()
                    .iter()
                    .map(|p| {
                        let bb = p.bbox;
                        let cx = 0.5 + (bb.cx - b.cx) * s;
                        let cy = 0.5 + (bb.cy - b.cy) * s;
                        crate::trajectory::TrajPoint::new(
                            p.frame,
                            BBox::new(cx, cy, bb.w * s, bb.h * s),
                        )
                    })
                    .collect();
                Trajectory::from_points(t.id, t.class, pts)
            })
            .collect();
        Clip {
            frame_width: 1.0,
            frame_height: 1.0,
            objects,
        }
    }

    /// Resamples every object to exactly `n` evenly spaced time steps over
    /// the clip's span (gap-filled, shared timeline), producing a dense clip
    /// with frames `0..n`. This is the fixed-length form consumed by the
    /// encoder and by aligned distance baselines.
    pub fn resampled(&self, n: usize) -> Clip {
        assert!(n >= 2, "resampling needs at least 2 steps");
        let (Some(start), Some(end)) = (self.start_frame(), self.end_frame()) else {
            return self.clone();
        };
        let span = (end - start) as f32;
        let objects = self
            .objects
            .iter()
            .map(|t| {
                let mut pts = Vec::with_capacity(n);
                if t.is_empty() {
                    return Trajectory::from_points(t.id, t.class, pts);
                }
                let ts = t.start_frame().unwrap() as f32;
                let te = t.end_frame().unwrap() as f32;
                for i in 0..n {
                    let f = if span <= f32::EPSILON {
                        start as f32
                    } else {
                        start as f32 + span * (i as f32 / (n - 1) as f32)
                    };
                    // Clamp the sampling instant into this object's own
                    // lifetime so objects that appear late / leave early
                    // hold their first/last pose instead of vanishing.
                    let fc = f.clamp(ts, te);
                    let lo = fc.floor() as u32;
                    let hi = fc.ceil() as u32;
                    let bb = if lo == hi {
                        t.bbox_at(lo).unwrap()
                    } else {
                        let a = t.bbox_at(lo).unwrap();
                        let b = t.bbox_at(hi).unwrap();
                        a.lerp(&b, fc - lo as f32)
                    };
                    pts.push(crate::trajectory::TrajPoint::new(i as u32, bb));
                }
                Trajectory::from_points(t.id, t.class, pts)
            })
            .collect();
        Clip {
            frame_width: self.frame_width,
            frame_height: self.frame_height,
            objects,
        }
    }

    /// Convenience: normalize then resample — the canonical encoder input.
    pub fn canonical(&self, n: usize) -> Clip {
        self.normalized().resampled(n)
    }

    /// The horizontally mirrored clip (x flipped about the frame center).
    ///
    /// Mirroring flips motion chirality — a left turn becomes a right turn —
    /// while preserving every other statistic, which makes mirrored clips
    /// ideal *hard negatives* for contrastive training.
    pub fn mirrored_x(&self) -> Clip {
        let objects = self
            .objects
            .iter()
            .map(|t| {
                let pts = t
                    .points()
                    .iter()
                    .map(|p| {
                        let b = p.bbox;
                        crate::trajectory::TrajPoint::new(
                            p.frame,
                            BBox::new(self.frame_width - b.cx, b.cy, b.w, b.h),
                        )
                    })
                    .collect();
                Trajectory::from_points(t.id, t.class, pts)
            })
            .collect();
        Clip {
            frame_width: self.frame_width,
            frame_height: self.frame_height,
            objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::TrajPoint;

    fn line_traj(
        id: u64,
        class: ObjectClass,
        frames: std::ops::Range<u32>,
        step: f32,
    ) -> Trajectory {
        let pts = frames
            .map(|f| TrajPoint::new(f, BBox::new(f as f32 * step, 0.0, 4.0, 4.0)))
            .collect();
        Trajectory::from_points(id, class, pts)
    }

    fn sample_clip() -> Clip {
        Clip::new(
            100.0,
            100.0,
            vec![
                line_traj(1, ObjectClass::Car, 0..10, 5.0),
                line_traj(2, ObjectClass::Person, 2..8, 1.0),
            ],
        )
    }

    #[test]
    fn span_and_frames() {
        let c = sample_clip();
        assert_eq!(c.start_frame(), Some(0));
        assert_eq!(c.end_frame(), Some(9));
        assert_eq!(c.span(), 10);
        assert_eq!(c.num_objects(), 2);
    }

    #[test]
    fn classes_in_order() {
        let c = sample_clip();
        assert_eq!(c.classes(), vec![ObjectClass::Car, ObjectClass::Person]);
    }

    #[test]
    fn window_preserves_cross_object_timing() {
        let c = sample_clip();
        let w = c.window(2, 7);
        // Both objects observed in [2,7]; after rebase, car starts at 0 and
        // person also starts at 0 (person's first frame was 2).
        assert_eq!(w.objects[0].start_frame(), Some(0));
        assert_eq!(w.objects[1].start_frame(), Some(0));
        assert_eq!(w.end_frame(), Some(5));
    }

    #[test]
    fn bounds_covers_everything() {
        let c = sample_clip();
        let b = c.bounds().unwrap();
        // Car travels cx 0..45 with w=4 → x in [-2, 47].
        assert!((b.x1() - -2.0).abs() < 1e-5);
        assert!((b.x2() - 47.0).abs() < 1e-5);
    }

    #[test]
    fn normalized_fits_unit_square() {
        let c = sample_clip().normalized();
        let b = c.bounds().unwrap();
        assert!(b.w <= 1.0 + 1e-5);
        assert!(b.h <= 1.0 + 1e-5);
        // Centered around 0.5.
        assert!((b.cx - 0.5).abs() < 1e-5);
        assert!((b.cy - 0.5).abs() < 1e-5);
    }

    #[test]
    fn normalization_is_translation_and_scale_invariant() {
        let c = sample_clip();
        // Translate + scale the whole clip.
        let moved = Clip::new(
            1000.0,
            1000.0,
            c.objects
                .iter()
                .map(|t| {
                    let pts = t
                        .points()
                        .iter()
                        .map(|p| {
                            TrajPoint::new(
                                p.frame,
                                p.bbox
                                    .scaled(3.0)
                                    .translated(crate::geom::Point2::new(200.0, 100.0)),
                            )
                        })
                        .collect();
                    Trajectory::from_points(t.id, t.class, pts)
                })
                .collect(),
        );
        let a = c.normalized();
        let b = moved.normalized();
        for (ta, tb) in a.objects.iter().zip(&b.objects) {
            for (pa, pb) in ta.points().iter().zip(tb.points()) {
                assert!((pa.bbox.cx - pb.bbox.cx).abs() < 1e-4);
                assert!((pa.bbox.cy - pb.bbox.cy).abs() < 1e-4);
                assert!((pa.bbox.w - pb.bbox.w).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn resampled_has_fixed_length() {
        let c = sample_clip().resampled(16);
        for t in &c.objects {
            assert_eq!(t.len(), 16);
            assert_eq!(t.start_frame(), Some(0));
            assert_eq!(t.end_frame(), Some(15));
        }
    }

    #[test]
    fn resample_holds_pose_outside_lifetime() {
        let c = sample_clip().resampled(10);
        // Person lives frames 2..=7 in a 0..=9 clip: its first resampled
        // boxes should equal its first real box.
        let person = &c.objects[1];
        let first = person.points()[0].bbox;
        assert!((first.cx - 2.0).abs() < 1e-4);
    }

    #[test]
    fn resample_single_frame_clip() {
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            vec![TrajPoint::new(5, BBox::new(10.0, 10.0, 2.0, 2.0))],
        );
        let c = Clip::new(100.0, 100.0, vec![t]).resampled(4);
        assert_eq!(c.objects[0].len(), 4);
        for p in c.objects[0].points() {
            assert!((p.bbox.cx - 10.0).abs() < 1e-6);
        }
    }

    #[test]
    fn mirror_flips_x_and_chirality() {
        let c = sample_clip();
        let m = c.mirrored_x();
        // Double mirror is identity.
        let mm = m.mirrored_x();
        for (a, b) in c.objects.iter().zip(&mm.objects) {
            for (pa, pb) in a.points().iter().zip(b.points()) {
                assert!((pa.bbox.cx - pb.bbox.cx).abs() < 1e-4);
            }
        }
        // Turning sign flips.
        let turny = Trajectory::from_points(
            1,
            ObjectClass::Car,
            vec![
                TrajPoint::new(0, BBox::new(10.0, 50.0, 4.0, 4.0)),
                TrajPoint::new(1, BBox::new(30.0, 50.0, 4.0, 4.0)),
                TrajPoint::new(2, BBox::new(30.0, 30.0, 4.0, 4.0)),
            ],
        );
        let tc = Clip::new(100.0, 100.0, vec![turny]);
        let t_orig = tc.objects[0].total_turning();
        let t_mirr = tc.mirrored_x().objects[0].total_turning();
        assert!((t_orig + t_mirr).abs() < 1e-4, "{t_orig} vs {t_mirr}");
    }

    #[test]
    fn empty_clip_is_safe() {
        let c = Clip::new(10.0, 10.0, vec![]);
        assert!(c.is_empty());
        assert_eq!(c.bounds(), None);
        assert_eq!(c.span(), 0);
        let n = c.normalized();
        assert!(n.is_empty());
    }

    #[test]
    fn canonical_pipeline() {
        let c = sample_clip().canonical(8);
        assert_eq!(c.objects[0].len(), 8);
        let b = c.bounds().unwrap();
        assert!(b.x1() >= -1e-5 && b.x2() <= 1.0 + 1e-5);
    }
}
