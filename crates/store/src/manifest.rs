//! The shard-set manifest: one versioned JSON document tying a
//! directory of shards into a queryable store.
//!
//! The manifest is the only thing a server must parse to *attach* a
//! sharded dataset: it carries the dataset identity and ingest
//! configuration (everything `StoreMeta` carries for a monolithic
//! store), the shared coarse-quantizer centroids, and one entry per
//! shard — file name, frame range, row count, checksum, and the number
//! of rows each shard holds per centroid. That last column is what
//! makes lazy probing cheap: a query ranks the shared centroids once
//! and skips (never maps, never loads) any shard with zero rows across
//! the probed lists.
//!
//! Exactness: JSON numbers travel as `f64`, which cannot represent a
//! full `u64` (fingerprints, checksums) and would round-trip `f32`
//! configuration through decimal. The manifest therefore stores 64-bit
//! hashes as fixed-width hex strings and every float by its `u32` bit
//! pattern, so a round trip is bit-identical — the same guarantee the
//! binary formats make.

use serde::{Deserialize, Serialize};
use std::path::Path;

use crate::StoreError;

/// Current manifest schema version.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the manifest inside a shard-set directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Extension carried by shard-set directories (`<dataset>.skset/`).
pub const SHARD_SET_EXT: &str = "skset";

/// One shard's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestShard {
    /// Shard file name, relative to the shard-set directory.
    pub file: String,
    /// Position of this shard in the set (== index in `shards`).
    pub shard_id: u32,
    /// First frame this shard owns (inclusive).
    pub frame_start: u32,
    /// Last frame this shard owns (inclusive).
    pub frame_end: u32,
    /// Window rows stored in the shard.
    pub rows: u32,
    /// The shard file's trailing FNV-1a-64 checksum, as 16 hex digits.
    pub checksum: String,
    /// Rows this shard holds per shared-quantizer centroid
    /// (`list_rows[c]`, length == the set's `nlist`). Sums to `rows`.
    pub list_rows: Vec<u32>,
}

/// The shard-set manifest (see module docs for the exactness rules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Ingest epoch: 0 for a from-scratch ingest, incremented by one on
    /// every committed `append_frames`. Readers detect a live append by
    /// watching this value (together with `frames`) change under the
    /// atomic manifest rename. Manifests written before epochs existed
    /// parse as epoch 0.
    pub epoch: u64,
    /// Dataset name the windows were cut from.
    pub dataset: String,
    /// Model fingerprint as 16 hex digits (see the core crate's
    /// `model_fingerprint`).
    pub model_fingerprint: String,
    /// Video-index fingerprint as 16 hex digits.
    pub index_fingerprint: String,
    /// Frames in the source video.
    pub frames: u32,
    /// `fps` by bit pattern.
    pub fps_bits: u32,
    /// `frame_width` by bit pattern.
    pub frame_width_bits: u32,
    /// `frame_height` by bit pattern.
    pub frame_height_bits: u32,
    /// Ingest `stride_frac` by bit pattern.
    pub stride_frac_bits: u32,
    /// Ingest `min_overlap_frac` by bit pattern.
    pub min_overlap_frac_bits: u32,
    /// Window lengths (frames) enumerated at ingest, sorted.
    pub window_lens: Vec<u32>,
    /// Embedding dimensionality.
    pub dim: u32,
    /// Frames per shard used at ingest (the last shard may own fewer).
    pub shard_frames: u32,
    /// Shared coarse-quantizer lists (== centroids).
    pub nlist: u32,
    /// Shared quantizer centroids, row-major `nlist × dim`, each `f32`
    /// by bit pattern.
    pub centroid_bits: Vec<u32>,
    /// One entry per shard, ordered by `shard_id`.
    pub shards: Vec<ManifestShard>,
}

/// Formats a `u64` as the fixed-width hex the manifest stores.
pub fn hex_u64(v: u64) -> String {
    format!("{v:016x}")
}

/// Parses a manifest hex field back to `u64`.
pub fn parse_hex_u64(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

impl Manifest {
    /// The model fingerprint, decoded.
    pub fn model_fp(&self) -> Option<u64> {
        parse_hex_u64(&self.model_fingerprint)
    }

    /// The index fingerprint, decoded.
    pub fn index_fp(&self) -> Option<u64> {
        parse_hex_u64(&self.index_fingerprint)
    }

    /// Shared quantizer centroids, decoded to floats.
    pub fn centroids(&self) -> Vec<f32> {
        self.centroid_bits
            .iter()
            .map(|&b| f32::from_bits(b))
            .collect()
    }

    /// Total rows across all shards.
    pub fn total_rows(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.rows)).sum()
    }

    /// Structural validation: version, hex fields, centroid table shape,
    /// per-shard list columns, and contiguous frame coverage. `path`
    /// labels errors.
    pub fn validate(&self, path: &Path) -> Result<(), StoreError> {
        let bad = |detail: String| StoreError::BadHeader {
            path: path.to_path_buf(),
            detail,
        };
        if self.version != MANIFEST_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                found: self.version,
            });
        }
        if self.model_fp().is_none() || self.index_fp().is_none() {
            return Err(bad("fingerprint is not 16 hex digits".into()));
        }
        if self.centroid_bits.len() != self.nlist as usize * self.dim as usize {
            return Err(bad(format!(
                "centroid table has {} values, expected nlist {} × dim {}",
                self.centroid_bits.len(),
                self.nlist,
                self.dim
            )));
        }
        if self.shard_frames == 0 && self.frames > 0 {
            return Err(bad("shard_frames is zero".into()));
        }
        let mut next_frame = 0u32;
        for (i, s) in self.shards.iter().enumerate() {
            if s.shard_id as usize != i {
                return Err(bad(format!(
                    "shard entry {i} carries shard_id {}",
                    s.shard_id
                )));
            }
            if s.list_rows.len() != self.nlist as usize {
                return Err(bad(format!(
                    "shard {i} has {} list counts, expected nlist {}",
                    s.list_rows.len(),
                    self.nlist
                )));
            }
            if s.list_rows.iter().map(|&r| u64::from(r)).sum::<u64>() != u64::from(s.rows) {
                return Err(bad(format!(
                    "shard {i} list counts do not sum to its {} rows",
                    s.rows
                )));
            }
            if parse_hex_u64(&s.checksum).is_none() {
                return Err(bad(format!("shard {i} checksum is not 16 hex digits")));
            }
            if s.frame_start != next_frame || s.frame_end < s.frame_start {
                return Err(bad(format!(
                    "shard {i} covers frames {}..={} (expected to start at {next_frame})",
                    s.frame_start, s.frame_end
                )));
            }
            next_frame = s.frame_end + 1;
        }
        if self.frames > 0 && next_frame != self.frames {
            return Err(bad(format!(
                "shards cover frames 0..{next_frame} but the video has {}",
                self.frames
            )));
        }
        Ok(())
    }

    /// Serializes to the manifest JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("manifest structs always serialize")
    }

    /// Parses and validates a manifest document; `path` labels errors.
    ///
    /// Fields added after the format shipped (`epoch`) are defaulted
    /// when absent so manifests written by older builds keep parsing;
    /// a manifest declaring a *newer* `version` is still rejected with
    /// [`StoreError::UnsupportedVersion`] by `validate`.
    pub fn from_json(path: &Path, json: &str) -> Result<Self, StoreError> {
        let bad = |detail: String| StoreError::BadHeader {
            path: path.to_path_buf(),
            detail,
        };
        let mut value: serde::Value =
            serde_json::from_str(json).map_err(|e| bad(format!("manifest parse error: {e}")))?;
        if let serde::Value::Obj(fields) = &mut value {
            if !fields.iter().any(|(k, _)| k == "epoch") {
                fields.push(("epoch".to_string(), serde::Value::Num(0.0)));
            }
        }
        let manifest =
            Manifest::from_value(&value).map_err(|e| bad(format!("manifest parse error: {e}")))?;
        manifest.validate(path)?;
        Ok(manifest)
    }

    /// Writes the manifest into `dir` (atomically: temp file + rename).
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let io = |source| StoreError::Io {
            path: path.clone(),
            source,
        };
        std::fs::create_dir_all(dir).map_err(io)?;
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json()).map_err(io)?;
        std::fs::rename(&tmp, &path).map_err(io)
    }

    /// Reads and validates the manifest of a shard-set directory.
    pub fn load(dir: &Path) -> Result<Self, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let json = std::fs::read_to_string(&path).map_err(|source| StoreError::Io {
            path: path.clone(),
            source,
        })?;
        Self::from_json(&path, &json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            epoch: 3,
            dataset: "traffic/one".into(),
            model_fingerprint: hex_u64(0xdead_beef_0123_4567),
            index_fingerprint: hex_u64(u64::MAX - 3),
            frames: 300,
            fps_bits: 30.0f32.to_bits(),
            frame_width_bits: 1280.0f32.to_bits(),
            frame_height_bits: 720.0f32.to_bits(),
            stride_frac_bits: 0.25f32.to_bits(),
            min_overlap_frac_bits: 0.5f32.to_bits(),
            window_lens: vec![67, 90],
            dim: 2,
            shard_frames: 150,
            nlist: 2,
            centroid_bits: vec![
                1.0f32.to_bits(),
                0.0f32.to_bits(),
                (-0.0f32).to_bits(),
                f32::MIN_POSITIVE.to_bits(),
            ],
            shards: vec![
                ManifestShard {
                    file: "shard-0000.skshard".into(),
                    shard_id: 0,
                    frame_start: 0,
                    frame_end: 149,
                    rows: 3,
                    checksum: hex_u64(0x0123_4567_89ab_cdef),
                    list_rows: vec![1, 2],
                },
                ManifestShard {
                    file: "shard-0001.skshard".into(),
                    shard_id: 1,
                    frame_start: 150,
                    frame_end: 299,
                    rows: 0,
                    checksum: hex_u64(u64::MAX),
                    list_rows: vec![0, 0],
                },
            ],
        }
    }

    #[test]
    fn round_trip_preserves_every_bit() {
        let m = sample();
        let back = Manifest::from_json(Path::new("mem"), &m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.model_fp(), Some(0xdead_beef_0123_4567));
        assert_eq!(back.index_fp(), Some(u64::MAX - 3));
        // Bit-exact floats, including negative zero and subnormals.
        assert_eq!(back.centroids()[2].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn u64_extremes_survive_json() {
        // The whole reason fingerprints are hex strings: f64 JSON numbers
        // lose bits above 2^53.
        for v in [u64::MAX, u64::MAX - 1, (1 << 53) + 1, 0] {
            assert_eq!(parse_hex_u64(&hex_u64(v)), Some(v));
        }
        assert_eq!(parse_hex_u64("zz"), None);
        assert_eq!(parse_hex_u64(""), None);
    }

    #[test]
    fn pre_epoch_manifest_parses_as_epoch_zero() {
        // A manifest written before the epoch field existed: strip the
        // key from a serialized document and re-parse.
        let m = sample();
        let json = m.to_json();
        let stripped = {
            let mut v: serde::Value = serde_json::from_str(&json).unwrap();
            if let serde::Value::Obj(fields) = &mut v {
                fields.retain(|(k, _)| k != "epoch");
            }
            serde_json::to_string(&v).unwrap()
        };
        assert!(!stripped.contains("epoch"));
        let back = Manifest::from_json(Path::new("mem"), &stripped).unwrap();
        assert_eq!(back.epoch, 0);
        assert_eq!(back.shards, m.shards);
    }

    #[test]
    fn newer_manifest_version_is_a_typed_error() {
        // Version skew must surface as UnsupportedVersion (typed, with
        // the declared version), not a parse panic or a silent misread.
        let mut m = sample();
        m.version = MANIFEST_VERSION + 1;
        let json = m.to_json();
        match Manifest::from_json(Path::new("mem"), &json) {
            Err(StoreError::UnsupportedVersion { found, .. }) => {
                assert_eq!(found, MANIFEST_VERSION + 1);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("skql-manifest-{}", std::process::id()));
        let m = sample();
        m.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validation_rejects_structural_damage() {
        let path = Path::new("m");
        let mut m = sample();
        m.shards[1].frame_start = 151; // gap in coverage
        assert!(m.validate(path).is_err());

        let mut m = sample();
        m.shards[0].list_rows = vec![1]; // wrong nlist width
        assert!(m.validate(path).is_err());

        let mut m = sample();
        m.shards[0].list_rows = vec![1, 5]; // doesn't sum to rows
        assert!(m.validate(path).is_err());

        let mut m = sample();
        m.centroid_bits.pop(); // wrong centroid table shape
        assert!(m.validate(path).is_err());

        let mut m = sample();
        m.model_fingerprint = "nope".into();
        assert!(m.validate(path).is_err());

        let mut m = sample();
        m.version += 1;
        assert!(matches!(
            m.validate(path),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }
}
