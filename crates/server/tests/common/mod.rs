//! Shared fixtures for the server integration tests: a tiny trained
//! model and small oracle-track datasets, kept deterministic by seeding.

// Each test binary compiles this module afresh and uses its own subset.
#![allow(dead_code)]

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::training::{train, TrainedModel, TrainingConfig};
use sketchql::VideoIndex;
use sketchql_datasets::{generate_video, SceneFamily, VideoConfig};

pub fn tiny_model() -> TrainedModel {
    let mut cfg = TrainingConfig::tiny();
    cfg.steps = 10;
    train(cfg)
}

pub fn small_index(seed: u64) -> VideoIndex {
    let cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind: 1,
        distractors: 2,
        fps: 30.0,
    };
    VideoIndex::from_truth(&generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed)))
}

pub fn two_datasets() -> BTreeMap<String, VideoIndex> {
    let mut map = BTreeMap::new();
    map.insert("alpha".to_string(), small_index(11));
    map.insert("beta".to_string(), small_index(12));
    map
}
