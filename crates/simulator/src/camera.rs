//! Virtual pinhole cameras.
//!
//! The simulator records each 3D event from cameras placed at random poses;
//! the projections of the *same* event from *different* cameras are the
//! positive pairs of the contrastive objective. A [`CameraRig`] adds
//! per-frame shake (smooth Ornstein–Uhlenbeck orientation noise) to model
//! the wind/vibration the paper calls out for "stationary" cameras.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sketchql_trajectory::{BBox, Point2, Point3};

/// A pinhole camera with a look-at pose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Camera position in world space (meters).
    pub eye: Point3,
    /// Point the camera looks at.
    pub target: Point3,
    /// Vertical field of view (radians).
    pub vfov: f32,
    /// Output image width (pixels).
    pub image_width: f32,
    /// Output image height (pixels).
    pub image_height: f32,
}

impl Camera {
    /// Near-plane depth below which points are considered behind the camera.
    pub const NEAR: f32 = 0.1;

    /// A camera looking at `target` from `eye` with a 60° vertical FOV and a
    /// 1280x720 sensor.
    pub fn look_at(eye: Point3, target: Point3) -> Self {
        Camera {
            eye,
            target,
            vfov: 60f32.to_radians(),
            image_width: 1280.0,
            image_height: 720.0,
        }
    }

    /// Orthonormal camera basis `(right, up, forward)`.
    fn basis(&self) -> (Point3, Point3, Point3) {
        let forward = (self.target - self.eye).normalized();
        let world_up = Point3::new(0.0, 0.0, 1.0);
        let mut right = forward.cross(&world_up);
        if right.norm() < 1e-6 {
            // Looking straight down: pick an arbitrary right.
            right = Point3::new(1.0, 0.0, 0.0);
        }
        let right = right.normalized();
        let up = right.cross(&forward).normalized();
        (right, up, forward)
    }

    /// Projects a world point into image coordinates. Returns `None` when
    /// the point is behind (or almost on) the camera plane. Points outside
    /// the image rectangle are still returned; box clamping happens later.
    pub fn project(&self, p: &Point3) -> Option<Point2> {
        let (right, up, forward) = self.basis();
        let d = *p - self.eye;
        let z = d.dot(&forward);
        if z < Self::NEAR {
            return None;
        }
        let x = d.dot(&right);
        let y = d.dot(&up);
        let f = (self.image_height * 0.5) / (self.vfov * 0.5).tan();
        Some(Point2::new(
            self.image_width * 0.5 + f * x / z,
            self.image_height * 0.5 - f * y / z,
        ))
    }

    /// Projects a set of world points (e.g. a cuboid's corners) to the
    /// tight 2D bounding box of their images, clamped to the frame.
    ///
    /// Returns `None` if any point is behind the camera or the visible
    /// remainder is degenerate.
    pub fn project_bbox(&self, points: &[Point3]) -> Option<BBox> {
        let mut min_x = f32::INFINITY;
        let mut min_y = f32::INFINITY;
        let mut max_x = f32::NEG_INFINITY;
        let mut max_y = f32::NEG_INFINITY;
        for p in points {
            let q = self.project(p)?;
            min_x = min_x.min(q.x);
            min_y = min_y.min(q.y);
            max_x = max_x.max(q.x);
            max_y = max_y.max(q.y);
        }
        BBox::from_corners(min_x, min_y, max_x, max_y).clamped(self.image_width, self.image_height)
    }

    /// Samples a camera on a hemisphere shell around `center`: random
    /// azimuth, elevation in `[15°, 70°]`, radius in `[r_min, r_max]`.
    pub fn sample_around<R: Rng>(center: Point3, r_min: f32, r_max: f32, rng: &mut R) -> Self {
        let azimuth = rng.gen_range(0.0..std::f32::consts::TAU);
        let elevation = rng.gen_range(15f32.to_radians()..70f32.to_radians());
        let radius = rng.gen_range(r_min..r_max);
        let eye = Point3::new(
            center.x + radius * elevation.cos() * azimuth.cos(),
            center.y + radius * elevation.cos() * azimuth.sin(),
            center.z + radius * elevation.sin(),
        );
        let mut cam = Camera::look_at(eye, center);
        cam.vfov = rng.gen_range(40f32.to_radians()..75f32.to_radians());
        cam
    }
}

/// Parameters of the camera-shake model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShakeConfig {
    /// Standard deviation of the per-frame orientation noise (radians).
    pub sigma: f32,
    /// Mean-reversion rate of the OU process in `[0, 1]` (1 = white noise).
    pub reversion: f32,
}

impl Default for ShakeConfig {
    fn default() -> Self {
        ShakeConfig {
            sigma: 0.002,
            reversion: 0.15,
        }
    }
}

/// A camera plus temporally smooth orientation shake.
#[derive(Debug, Clone)]
pub struct CameraRig {
    /// The nominal (unshaken) camera.
    pub camera: Camera,
    /// Shake parameters; `sigma = 0` disables shake.
    pub shake: ShakeConfig,
    yaw: f32,
    pitch: f32,
}

impl CameraRig {
    /// Wraps a camera with a shake model.
    pub fn new(camera: Camera, shake: ShakeConfig) -> Self {
        CameraRig {
            camera,
            shake,
            yaw: 0.0,
            pitch: 0.0,
        }
    }

    /// A rig with no shake.
    pub fn stationary(camera: Camera) -> Self {
        CameraRig::new(
            camera,
            ShakeConfig {
                sigma: 0.0,
                reversion: 0.0,
            },
        )
    }

    /// Advances the shake process one frame and returns the camera for that
    /// frame (the nominal camera with a perturbed look-at target).
    pub fn next_frame<R: Rng>(&mut self, rng: &mut R) -> Camera {
        if self.shake.sigma <= 0.0 {
            return self.camera;
        }
        // Ornstein–Uhlenbeck step via Box–Muller gaussians.
        let (g1, g2) = gauss_pair(rng);
        self.yaw += -self.shake.reversion * self.yaw + self.shake.sigma * g1;
        self.pitch += -self.shake.reversion * self.pitch + self.shake.sigma * g2;

        let dir = self.camera.target - self.camera.eye;
        let dist = dir.norm();
        let d = dir.normalized();
        // Perturb direction: rotate around world-z by yaw, then tilt pitch.
        let (sy, cy) = self.yaw.sin_cos();
        let rotated = Point3::new(d.x * cy - d.y * sy, d.x * sy + d.y * cy, d.z + self.pitch);
        let mut cam = self.camera;
        cam.target = cam.eye + rotated.normalized() * dist;
        cam
    }
}

/// One pair of independent standard gaussians (Box–Muller), avoiding a
/// `rand_distr` dependency.
pub fn gauss_pair<R: Rng>(rng: &mut R) -> (f32, f32) {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f32::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

/// One standard gaussian sample.
pub fn gauss<R: Rng>(rng: &mut R) -> f32 {
    gauss_pair(rng).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn overhead_cam() -> Camera {
        Camera::look_at(Point3::new(0.0, -30.0, 20.0), Point3::ZERO)
    }

    #[test]
    fn target_projects_to_image_center() {
        let cam = overhead_cam();
        let p = cam.project(&Point3::ZERO).unwrap();
        assert!((p.x - 640.0).abs() < 1e-3);
        assert!((p.y - 360.0).abs() < 1e-3);
    }

    #[test]
    fn points_behind_camera_are_rejected() {
        let cam = overhead_cam();
        // Behind the eye, away from the target.
        let behind = Point3::new(0.0, -100.0, 60.0);
        assert!(cam.project(&behind).is_none());
    }

    #[test]
    fn nearer_objects_project_larger() {
        let cam = Camera::look_at(Point3::new(0.0, -50.0, 10.0), Point3::ZERO);
        let near_pts = [Point3::new(-1.0, -20.0, 0.0), Point3::new(1.0, -20.0, 2.0)];
        let far_pts = [Point3::new(-1.0, 20.0, 0.0), Point3::new(1.0, 20.0, 2.0)];
        let near = cam.project_bbox(&near_pts).unwrap();
        let far = cam.project_bbox(&far_pts).unwrap();
        assert!(near.area() > far.area());
    }

    #[test]
    fn right_of_world_is_consistent() {
        // Camera at -y looking at origin: +x in world should appear to the
        // right (larger image x).
        let cam = overhead_cam();
        let left = cam.project(&Point3::new(-5.0, 0.0, 0.0)).unwrap();
        let right = cam.project(&Point3::new(5.0, 0.0, 0.0)).unwrap();
        assert!(right.x > left.x);
        // Higher z appears higher in the image (smaller y).
        let low = cam.project(&Point3::new(0.0, 0.0, 0.0)).unwrap();
        let high = cam.project(&Point3::new(0.0, 0.0, 5.0)).unwrap();
        assert!(high.y < low.y);
    }

    #[test]
    fn straight_down_camera_is_handled() {
        let cam = Camera::look_at(Point3::new(0.0, 0.0, 30.0), Point3::ZERO);
        assert!(cam.project(&Point3::new(1.0, 1.0, 0.0)).is_some());
    }

    #[test]
    fn project_bbox_clamps_to_frame() {
        let cam = overhead_cam();
        // A huge slab: parts off screen.
        let pts = [
            Point3::new(-500.0, 0.0, 0.0),
            Point3::new(500.0, 0.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        ];
        let b = cam.project_bbox(&pts).unwrap();
        assert!(b.x1() >= 0.0 && b.x2() <= cam.image_width);
        assert!(b.y1() >= 0.0 && b.y2() <= cam.image_height);
    }

    #[test]
    fn sample_around_looks_at_center() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let cam = Camera::sample_around(Point3::ZERO, 20.0, 60.0, &mut rng);
            assert_eq!(cam.target, Point3::ZERO);
            assert!(cam.eye.z > 0.0, "camera above ground");
            let r = cam.eye.norm();
            assert!((19.0..61.0).contains(&r));
            // Center always projects to image center.
            let p = cam.project(&Point3::ZERO).unwrap();
            assert!((p.x - 640.0).abs() < 1.0);
        }
    }

    #[test]
    fn stationary_rig_never_moves() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rig = CameraRig::stationary(overhead_cam());
        let c0 = rig.next_frame(&mut rng);
        let c1 = rig.next_frame(&mut rng);
        assert_eq!(c0, c1);
    }

    #[test]
    fn shaky_rig_jitters_but_stays_close() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rig = CameraRig::new(overhead_cam(), ShakeConfig::default());
        let base = overhead_cam();
        let mut moved = false;
        for _ in 0..100 {
            let c = rig.next_frame(&mut rng);
            let drift = (c.target - base.target).norm();
            assert!(drift < 3.0, "shake should stay small, drifted {drift}");
            if drift > 1e-4 {
                moved = true;
            }
        }
        assert!(moved, "shake should actually perturb the camera");
    }

    #[test]
    fn gaussians_have_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let g = gauss(&mut rng) as f64;
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
