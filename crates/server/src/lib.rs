//! # sketchql-server
//!
//! A concurrent query service wrapping the SketchQL matcher: a fixed
//! worker pool behind a bounded admission queue ([`Engine`]), per-query
//! deadlines with cooperative cancellation, and a line-delimited JSON
//! wire protocol over plain TCP ([`Server`] / [`Client`]) — `std::net`
//! and `std::thread` only, no async runtime.
//!
//! ```no_run
//! use std::collections::BTreeMap;
//! use sketchql::{TrainedModel, VideoIndex};
//! use sketchql_server::{Engine, EngineConfig, QuerySpec, Server, Client};
//!
//! # let model: TrainedModel = unimplemented!();
//! # let index: VideoIndex = unimplemented!();
//! let mut datasets = BTreeMap::new();
//! datasets.insert("traffic".to_string(), index);
//! let engine = Engine::start(model, datasets, EngineConfig::default());
//!
//! // In-process:
//! let query = sketchql_datasets::query_clip(sketchql_datasets::EventKind::LeftTurn);
//! let result = engine.execute(QuerySpec::new("traffic", query)).unwrap();
//!
//! // Over the wire:
//! let server = Server::start(engine, "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let outcome = client.query_event("traffic", "left_turn", Some(5), None).unwrap();
//! client.shutdown().unwrap();
//! server.shutdown();
//! # let _ = (result, outcome);
//! ```
//!
//! Design properties (see each module's docs):
//!
//! - **Load shedding, not queue growth**: admission beyond
//!   [`EngineConfig::queue_depth`] fails fast with
//!   [`EngineError::Overloaded`].
//! - **Deadlines end work, not just waits**: an expired
//!   [`CancelToken`](sketchql::CancelToken) stops the sliding-window scan
//!   between windows and encoder batches.
//! - **Fusion, not just fan-out**: a worker drains same-dataset queries
//!   and executes them as one shared scan with bit-identical per-query
//!   results — concurrency pays off even on one core.
//! - **Graceful drain**: shutdown answers every admitted query before
//!   returning.

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod live;
pub mod protocol;
pub mod scrape;
pub mod server;

pub use client::{
    Client, ClientError, LiveFeed, ProfileOutcome, QueryOptions, QueryOutcome, Registered,
};
pub use engine::{
    ClassConfig, ClassStats, DatasetInfo, DatasetTraffic, Engine, EngineConfig, EngineError,
    EngineStats, QueryHandle, QueryResult, QuerySpec, SchedMode, SchedPolicy, DEFAULT_CLASS,
};
pub use live::{
    LiveMatch, LiveNotifications, LiveRegistration, LiveReload, LIVE_CLASS, NOTIFY_QUEUE_CAP,
};
pub use protocol::{ErrorKind, Request, Response, WireSpan, WireTrace, PROTOCOL_VERSION};
pub use scrape::MetricsListener;
pub use server::{named_datasets, Server};
