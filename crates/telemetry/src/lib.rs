//! Telemetry for the SketchQL query pipeline.
//!
//! Zero external dependencies; everything is built on `std` atomics,
//! thread-locals, and the monotonic clock. Three layers:
//!
//! - [`span`] / [`SpanGuard`]: RAII wall-clock timers with hierarchical
//!   parent/child nesting per thread. Dropping the guard records a
//!   [`SpanRecord`] (name, depth, duration).
//! - [`counter`] / [`gauge`] / [`histogram`]: lock-cheap metrics in a
//!   global named registry. Handles are `&'static`; increments are single
//!   relaxed atomic ops, so hot loops can update them directly (or batch
//!   locally and flush once, as `Matcher::search` does).
//! - [`Recorder`] / [`QueryReport`]: a recorder snapshots the pipeline
//!   counters before a query and turns the deltas plus the top-level spans
//!   into a per-query report with [`QueryReport::to_json`] and
//!   [`QueryReport::render_table`].
//! - [`TraceContext`] / [`QueryTrace`]: a per-query trace that travels
//!   with the query across threads (admission queue, workers, fused
//!   batches); threads [`enter`](TraceContext::enter) it to route their
//!   spans into it. Finalized traces land in the global
//!   [`flight_recorder`] ring buffer, and — when configured — in the
//!   slow-query log ([`configure_slow_query_log`]).
//! - Resource attribution and profiling: a counting global allocator
//!   ([`thread_allocated`]) and per-thread CPU clocks
//!   ([`thread_cpu_nanos`]) give every trace `alloc_bytes` /
//!   `alloc_count` / `cpu_nanos` (attributed over `enter` scopes), and
//!   a cooperative sampling profiler ([`collect_profile`],
//!   [`start_continuous_profiler`]) folds live span stacks into
//!   flamegraph-compatible output.
//!
//! Registry-wide state exports as JSON ([`snapshot_json`]) or Prometheus
//! text format ([`snapshot_prometheus`]).
//!
//! Everything is gated on the `enabled` cargo feature (on by default).
//! With the feature off the same API exists but every operation compiles
//! to a no-op, so instrumented code needs no `cfg` of its own.
//!
//! Metric and span names follow a dotted convention, `sketchql.<stage>.
//! <what>`; the canonical names live in [`names`].

#![warn(missing_docs)]

mod alloc;
mod cpu;
mod export;
mod flight;
mod metrics;
mod profiler;
mod report;
mod slowlog;
mod span;
mod trace;

pub use alloc::{process_allocated, thread_allocated, CountingAlloc};
pub use cpu::{current_tid, thread_cpu_nanos, tid_cpu_nanos};
pub use export::{snapshot_json, snapshot_prometheus};
pub use flight::{
    configure_flight_capacity, flight_recorder, FlightRecorder, QueryTrace, FLIGHT_CAPACITY,
};
pub use metrics::{
    counter, gauge, histogram, reset, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
};
pub use profiler::{
    collect_profile, continuous_profile_snapshot, start_continuous_profiler, ProfileEntry,
    ProfileReport,
};
pub use report::{QueryReport, Recorder};
pub use slowlog::{
    configure_slow_query_log, configure_slow_query_log_path, configure_slow_query_log_path_capped,
    disable_slow_query_log,
};
pub use span::{span, take_finished_spans, SpanGuard, SpanRecord};
pub use trace::{
    format_trace_id, mint_trace_id, parse_trace_id, TraceContext, TraceGuard, TraceOutcome,
};

/// Canonical metric and span names used across the pipeline.
///
/// Dotted segments name the subsystem and the quantity; exporters
/// sanitize them for Prometheus (`sketchql.matcher.search` becomes
/// `sketchql_matcher_search`).
pub mod names {
    /// Span: one `VideoIndex::build` run.
    pub const INDEX_BUILD: &str = "sketchql.index.build";
    /// Counter: frames run through detection + preprocessing.
    pub const FRAMES_PREPROCESSED: &str = "sketchql.index.frames_preprocessed";
    /// Counter: object tracks materialized into an index.
    pub const TRACKS_BUILT: &str = "sketchql.index.tracks_built";

    /// Span: one `Matcher::search` run.
    pub const MATCHER_SEARCH: &str = "sketchql.matcher.search";
    /// Span: query preparation (embedding the sketch clip).
    pub const MATCHER_PREPARE: &str = "sketchql.matcher.prepare";
    /// Span: sliding-window enumeration and scoring.
    pub const MATCHER_SCAN: &str = "sketchql.matcher.scan";
    /// Span: ranking, NMS, and boundary refinement.
    pub const MATCHER_RANK: &str = "sketchql.matcher.rank";
    /// Counter: candidate windows enumerated across all scales.
    pub const WINDOWS_ENUMERATED: &str = "sketchql.matcher.windows_enumerated";
    /// Counter: windows discarded before scoring (no eligible tracks).
    pub const WINDOWS_PRUNED: &str = "sketchql.matcher.windows_pruned";
    /// Counter: pushes into the candidate ranking structure.
    pub const TOPK_HEAP_OPS: &str = "sketchql.matcher.topk_heap_ops";
    /// Histogram: similarity score of each scored window.
    pub const WINDOW_SCORE: &str = "sketchql.matcher.window_score";
    /// Counter: candidate segments served from the per-search embedding
    /// cache (a duplicate `(track_ids, start, end)` segment re-used).
    pub const EMBED_CACHE_HITS: &str = "sketchql.matcher.embed_cache_hits";
    /// Counter: distinct candidate segments the per-search embedding cache
    /// had to embed (one batched encoder pass each).
    pub const EMBED_CACHE_MISSES: &str = "sketchql.matcher.embed_cache_misses";

    /// Counter: clip embeddings computed by the learned encoder.
    pub const EMBEDDINGS_COMPUTED: &str = "sketchql.similarity.embeddings_computed";
    /// Counter: similarity evaluations (query vs. candidate).
    pub const SIMILARITY_EVALS: &str = "sketchql.similarity.evals";
    /// Histogram: clips per batched encoder forward pass.
    pub const EMBED_BATCH_SIZE: &str = "sketchql.similarity.embed_batch_size";

    /// Span: one ByteTrack association run over a full detection stream.
    pub const TRACKER_ASSOCIATE: &str = "sketchql.tracker.associate";
    /// Counter: detection-to-track associations performed.
    pub const TRACKER_ASSOCIATIONS: &str = "sketchql.tracker.associations";
    /// Counter: Kalman predict steps.
    pub const KALMAN_PREDICTS: &str = "sketchql.tracker.kalman_predicts";
    /// Counter: Kalman update steps.
    pub const KALMAN_UPDATES: &str = "sketchql.tracker.kalman_updates";

    /// Span: one `MaterializedWindows::build` run.
    pub const MATERIALIZED_BUILD: &str = "sketchql.materialized.build";
    /// Span: one `MaterializedWindows::query` run.
    pub const MATERIALIZED_QUERY: &str = "sketchql.materialized.query";
    /// Counter: window embeddings materialized ahead of time.
    pub const MATERIALIZED_WINDOWS: &str = "sketchql.materialized.windows_built";
    /// Counter: dot products evaluated against materialized windows.
    pub const MATERIALIZED_SCANS: &str = "sketchql.materialized.scans";

    /// Span: one full training run.
    pub const TRAINING_RUN: &str = "sketchql.training.run";
    /// Counter: optimizer steps taken.
    pub const TRAINING_STEPS: &str = "sketchql.training.steps";
    /// Counter: training examples consumed.
    pub const TRAINING_EXAMPLES: &str = "sketchql.training.examples";
    /// Gauge: most recent training loss.
    pub const TRAINING_LAST_LOSS: &str = "sketchql.training.last_loss";
    /// Gauge: training throughput, examples per second.
    pub const TRAINING_EXAMPLES_PER_SEC: &str = "sketchql.training.examples_per_sec";
    /// Histogram: per-step wall time in milliseconds.
    pub const TRAINING_STEP_MS: &str = "sketchql.training.step_ms";

    /// Counter: queries executed through the session façade.
    pub const SESSION_QUERY: &str = "sketchql.session.queries";

    /// Gauge: queries waiting in the server's admission queue.
    pub const SERVER_QUEUE_DEPTH: &str = "sketchql.server.queue_depth";
    /// Gauge: queries currently executing on server workers.
    pub const SERVER_IN_FLIGHT: &str = "sketchql.server.in_flight";
    /// Histogram: milliseconds a query waited in the admission queue.
    pub const SERVER_QUEUE_WAIT_MS: &str = "sketchql.server.queue_wait_ms";
    /// Histogram: milliseconds a query spent executing on a worker.
    pub const SERVER_EXECUTE_MS: &str = "sketchql.server.execute_ms";
    /// Counter: queries admitted into the queue.
    pub const SERVER_ACCEPTED: &str = "sketchql.server.queries_accepted";
    /// Counter: queries rejected at admission because the queue was full.
    pub const SERVER_REJECTED_OVERLOAD: &str = "sketchql.server.queries_rejected_overload";
    /// Counter: queries whose deadline expired (in queue or mid-search).
    pub const SERVER_TIMED_OUT: &str = "sketchql.server.queries_timed_out";
    /// Counter: queries completed successfully.
    pub const SERVER_COMPLETED: &str = "sketchql.server.queries_completed";
    /// Counter: queries that failed with a non-deadline error.
    pub const SERVER_FAILED: &str = "sketchql.server.queries_failed";
    /// Counter: TCP connections accepted by the wire server.
    pub const SERVER_CONNECTIONS: &str = "sketchql.server.connections";
    /// Counter: wire requests handled (any type, any outcome).
    pub const SERVER_REQUESTS: &str = "sketchql.server.requests";
    /// Histogram: queries fused into one shared engine scan.
    pub const SERVER_FUSED_BATCH: &str = "sketchql.server.fused_batch_size";
    /// Span: time a query spent in the admission queue (recorded into
    /// its trace by the worker that dequeued it).
    pub const SERVER_QUEUE_WAIT: &str = "sketchql.server.queue_wait";
    /// Span: a worker executing a query (or a fused batch of queries).
    pub const SERVER_EXECUTE: &str = "sketchql.server.execute";
    /// Span: shared-scan fusion — present in each member query's trace
    /// when the query executed as part of a fused batch.
    pub const SERVER_FUSION: &str = "sketchql.server.fusion";
    /// Span: serializing and writing a query's wire response.
    pub const SERVER_SERIALIZE: &str = "sketchql.server.serialize";
    /// Histogram: milliseconds between a query finishing and its
    /// deadline (negative = the deadline had already passed).
    pub const SERVER_DEADLINE_MARGIN_MS: &str = "sketchql.server.deadline_margin_ms";
    /// Counter: queries shed at admission because the queue was full.
    pub const SERVER_SHED_QUEUE_FULL: &str = "sketchql.server.shed_queue_full";
    /// Counter: queries shed at admission during shutdown.
    pub const SERVER_SHED_SHUTDOWN: &str = "sketchql.server.shed_shutdown";
    /// Counter: queries shed at dequeue because their deadline expired
    /// while still waiting in the admission queue.
    pub const SERVER_SHED_DEADLINE_QUEUE: &str = "sketchql.server.shed_deadline_queue";
    /// Counter: queries abandoned because the caller cancelled them.
    pub const SERVER_SHED_CANCELLED: &str = "sketchql.server.shed_cancelled";
    /// Counter: queries rejected at admission by a class token-bucket
    /// rate limit.
    pub const SERVER_SHED_RATE_LIMITED: &str = "sketchql.server.shed_rate_limited";
    /// Counter: worker panics survived (the batch was answered `Failed`
    /// and the worker kept running).
    pub const SERVER_WORKER_PANICS: &str = "sketchql.server.worker_panics";

    /// Per-admission-class metric family name:
    /// `sketchql.server.class.<class>.<metric>`. The class is sanitized
    /// to ASCII alphanumerics and underscores so the Prometheus
    /// exposition stays well formed for any wire-supplied class string.
    pub fn server_class_metric(class: &str, metric: &str) -> String {
        let safe: String = class
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("sketchql.server.class.{safe}.{metric}")
    }

    /// Span: one offline store ingest (window enumeration + embedding +
    /// persistence).
    pub const STORE_BUILD: &str = "sketchql.store.build";
    /// Span: one store load from disk (parse + checksum + ANN build).
    pub const STORE_LOAD: &str = "sketchql.store.load";
    /// Counter: window embeddings persisted into stores at ingest.
    pub const STORE_VECTORS: &str = "sketchql.store.vectors_ingested";
    /// Counter: queries answered from a persistent store (index-backed
    /// path taken end to end).
    pub const STORE_HITS: &str = "sketchql.store.hits";
    /// Counter: queries that had a store available but fell back to the
    /// full scan (fingerprint or window-config mismatch, multi-object
    /// query, …).
    pub const STORE_FALLBACKS: &str = "sketchql.store.fallbacks";
    /// Counter: store rows probed (retrieved from inverted lists and
    /// exactly re-ranked).
    pub const STORE_PROBED: &str = "sketchql.store.rows_probed";
    /// Histogram: rows returned per ANN probe.
    pub const STORE_PROBE_ROWS: &str = "sketchql.store.probe_rows";
    /// Span: one ANN probe + exact re-rank against a persistent store.
    pub const STORE_PROBE: &str = "sketchql.store.probe";

    /// Gauge: shards currently resident (mapped, checksummed, decoded)
    /// across every attached shard set. Starts at 0 on attach — shards
    /// fault in on first probe.
    pub const SHARD_RESIDENT: &str = "sketchql.shard.resident";
    /// Counter: shard load events (first-probe faults that mapped and
    /// verified a shard file).
    pub const SHARD_LOADS: &str = "sketchql.shard.loads";
    /// Counter: shard loads that failed (corrupt, truncated, or
    /// unreadable shard files discovered at first probe).
    pub const SHARD_LOAD_ERRORS: &str = "sketchql.shard.load_errors";
    /// Counter: shards consulted by probes (loaded and their posting
    /// lists gathered).
    pub const SHARD_PROBES: &str = "sketchql.shard.probes";
    /// Counter: shards skipped by probes without loading because the
    /// manifest showed no rows under any probed centroid.
    pub const SHARD_SKIPPED: &str = "sketchql.shard.skipped";
    /// Gauge: bytes of shard payload currently memory-mapped across
    /// every attached shard set.
    pub const SHARD_BYTES_MAPPED: &str = "sketchql.shard.bytes_mapped";
    /// Span: faulting one shard in (map + checksum + column decode).
    pub const SHARD_LOAD: &str = "sketchql.shard.load";
    /// Counter: resident shards evicted under `--max-resident-shards`
    /// (LRU; the shard reloads transparently on its next probe).
    pub const SHARD_EVICTIONS: &str = "sketchql.shard.evictions";

    /// Counter: committed `append_frames` epochs across all datasets.
    pub const LIVE_APPENDS: &str = "sketchql.live.appends";
    /// Counter: rows embedded by incremental appends (fresh windows).
    pub const LIVE_ROWS_APPENDED: &str = "sketchql.live.rows_appended";
    /// Counter: rows reused verbatim by incremental appends (windows
    /// untouched by the new frames, copied from the old shards).
    pub const LIVE_ROWS_REUSED: &str = "sketchql.live.rows_reused";
    /// Span: one `append_frames` call (enumerate + embed + commit).
    pub const LIVE_APPEND: &str = "sketchql.live.append";
    /// Gauge: standing queries currently registered.
    pub const LIVE_REGISTRATIONS: &str = "sketchql.live.registrations";
    /// Counter: standing-query evaluations (one per registration per
    /// ingest epoch).
    pub const LIVE_EVALUATIONS: &str = "sketchql.live.evaluations";
    /// Counter: matches delivered into notification queues.
    pub const LIVE_NOTIFICATIONS: &str = "sketchql.live.notifications";
    /// Counter: notifications shed because a registration's bounded
    /// queue overflowed (oldest dropped first).
    pub const LIVE_DROPPED: &str = "sketchql.live.dropped";

    /// Span: embedding the candidate clips of one scan (the batched,
    /// possibly parallel encoder pass).
    pub const MATCHER_EMBED: &str = "sketchql.matcher.embed";

    /// Counter: heap bytes attributed to finalized query traces.
    pub const RESOURCE_ALLOC_BYTES: &str = "sketchql.resource.alloc_bytes";
    /// Counter: heap allocations attributed to finalized query traces.
    pub const RESOURCE_ALLOC_COUNT: &str = "sketchql.resource.alloc_count";
    /// Counter: CPU nanoseconds attributed to finalized query traces.
    pub const RESOURCE_CPU_NANOS: &str = "sketchql.resource.cpu_nanos";
    /// Histogram: per-query attributed heap allocation, KiB.
    pub const RESOURCE_QUERY_ALLOC_KB: &str = "sketchql.resource.query_alloc_kb";
    /// Histogram: per-query attributed CPU time, milliseconds.
    pub const RESOURCE_QUERY_CPU_MS: &str = "sketchql.resource.query_cpu_ms";
    /// Gauge: cumulative heap bytes allocated by the process (pressure,
    /// not live heap).
    pub const RESOURCE_PROCESS_ALLOC_BYTES: &str = "sketchql.resource.process_alloc_bytes";
    /// Gauge: cumulative heap allocations made by the process.
    pub const RESOURCE_PROCESS_ALLOC_COUNT: &str = "sketchql.resource.process_alloc_count";
    /// Counter: sampling ticks taken by the cooperative profiler.
    pub const RESOURCE_PROFILE_SAMPLES: &str = "sketchql.resource.profile_samples";
}

/// Whether the `enabled` feature is compiled in.
///
/// Lets callers skip work that only feeds telemetry (building label
/// strings, for instance) without `cfg` attributes of their own.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}
