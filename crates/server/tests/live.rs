//! Live-monitoring acceptance: a standing query registered before an
//! append receives exactly the matches an offline epoch-scoped query
//! over the appended range returns — no duplicates, no misses, scores
//! bit-identical — across several epochs; the registry survives a
//! restart and catches up on appends committed while the server was
//! down; and the wire protocol round-trips the whole flow.

mod common;

use std::collections::BTreeMap;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::{append_frames, ingest_sharded, IngestConfig, MatcherConfig, ShardSet, StoreTier};
use sketchql_datasets::{
    extend_video, generate_video, query_clip, EventKind, ExtendConfig, SceneFamily, SyntheticVideo,
    VideoConfig,
};
use sketchql_server::{
    Client, ClientError, Engine, EngineConfig, EngineError, ErrorKind, QuerySpec, Server,
    LIVE_CLASS, PROTOCOL_VERSION,
};
use sketchql_trajectory::Clip;

use common::tiny_model;

/// A base video plus streamed continuations: one ingest epoch per
/// continuation.
fn streaming_stages(seed: u64, continuations: u64) -> Vec<SyntheticVideo> {
    let cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind: 1,
        distractors: 2,
        fps: 30.0,
    };
    let base = generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed));
    let ext = ExtendConfig {
        events_per_kind: 1,
        distractors: 1,
    };
    let mut stages = vec![base];
    for k in 1..=continuations {
        let next = extend_video(
            stages.last().unwrap(),
            ext,
            &mut StdRng::seed_from_u64(seed + k),
        );
        stages.push(next);
    }
    stages
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skql-live-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ingest_cfg(query: &Clip) -> IngestConfig {
    IngestConfig::from_matcher(&MatcherConfig::default(), &[query.span()])
}

/// Reopens the shard set at `dir` with exhaustive probing so the store
/// path is provably exact (matches the scan bit-for-bit).
fn exhaustive_tier(dir: &std::path::Path) -> StoreTier {
    let mut set = ShardSet::open(dir).expect("reopen shard set");
    set.nprobe = set.nlist();
    StoreTier::Sharded(set)
}

/// The acceptance property: for every appended epoch, the standing
/// query's drained notifications equal an offline query scoped to the
/// same range, bit-for-bit.
#[test]
fn standing_query_matches_offline_scoped_query_per_epoch() {
    let model = tiny_model();
    let query = query_clip(EventKind::LeftTurn);
    let stages = streaming_stages(61, 3);
    let indexes: Vec<sketchql::VideoIndex> = stages
        .iter()
        .map(sketchql::VideoIndex::from_truth)
        .collect();
    let dir = temp_dir("epochs");
    ingest_sharded(
        &model.similarity(),
        &indexes[0],
        "alpha",
        &ingest_cfg(&query),
        25,
        &dir,
        &|_| {},
    )
    .unwrap();

    let mut datasets = BTreeMap::new();
    datasets.insert("alpha".to_string(), indexes[0].clone());
    datasets.insert("beta".to_string(), common::small_index(12));
    let mut stores = BTreeMap::new();
    stores.insert("alpha".to_string(), exhaustive_tier(&dir));
    let engine =
        Engine::start_with_stores(model.clone(), datasets, stores, EngineConfig::default());

    let reg = engine.register("alpha", query.clone(), None, None).unwrap();
    assert_eq!(reg.watermark, indexes[0].frames);
    // Nothing appended yet: the queue exists but is empty.
    let feed = engine.notifications(reg.id, None).unwrap();
    assert!(feed.matches.is_empty());
    assert_eq!(feed.watermark, indexes[0].frames);

    let mut total = 0usize;
    for (k, index) in indexes.iter().enumerate().skip(1) {
        let prev_frames = indexes[k - 1].frames;
        let out = append_frames(&model.similarity(), index, &dir, 2, &|_| {}).unwrap();
        assert_eq!(out.epoch, k as u64);
        drop(out);
        let reload = engine
            .reload_dataset("alpha", index.clone(), exhaustive_tier(&dir))
            .unwrap();
        assert_eq!(reload.epoch, k as u64);
        assert_eq!(reload.frames, index.frames);
        assert_eq!(reload.evaluated, 1, "one registration was due");

        // Offline reference: the same engine, the same snapshot, the
        // same scope — an interactive query over the appended range.
        let offline = engine
            .execute(QuerySpec {
                min_end: Some(prev_frames),
                ..QuerySpec::new("alpha", query.clone())
            })
            .unwrap();
        assert_eq!(reload.delivered, offline.moments.len());

        let feed = engine.notifications(reg.id, None).unwrap();
        assert_eq!(feed.epoch, k as u64);
        assert_eq!(feed.watermark, index.frames);
        assert_eq!(feed.dropped, 0);
        assert_eq!(
            feed.matches.len(),
            offline.moments.len(),
            "epoch {k}: match count diverged from the offline scoped query"
        );
        for (m, r) in feed.matches.iter().zip(&offline.moments) {
            assert_eq!((m.start, m.end), (r.start, r.end), "epoch {k}");
            assert_eq!(m.score.to_bits(), r.score.to_bits(), "epoch {k}");
            assert_eq!(m.track_ids, r.track_ids, "epoch {k}");
            assert_eq!(m.epoch, k as u64);
        }
        total += feed.matches.len();

        // Drained means drained: a second poll returns nothing new.
        let again = engine.notifications(reg.id, None).unwrap();
        assert!(again.matches.is_empty(), "epoch {k}: duplicate delivery");
    }
    assert!(total > 0, "fixture produced no live matches at all");

    // The live admission class was auto-declared at its documented
    // priority and did the evaluations.
    let stats = engine.stats();
    let live = stats
        .classes
        .iter()
        .find(|c| c.name == LIVE_CLASS)
        .expect("live class declared");
    assert_eq!(live.priority, -100);
    assert!(live.completed >= 3, "one evaluation per epoch");

    // A dataset without a store cannot host a standing query, and an
    // unknown name is its own error.
    let Err(EngineError::NotStored(_)) =
        engine.register("beta", query_clip(EventKind::Overtake), None, None)
    else {
        panic!("store-less dataset must not register");
    };
    let Err(EngineError::UnknownDataset(_)) =
        engine.register("gamma", query_clip(EventKind::Overtake), None, None)
    else {
        panic!("unknown dataset must not register");
    };
    assert!(!engine.unregister(reg.id + 100));
    assert!(engine.unregister(reg.id));
    assert!(
        engine.notifications(reg.id, None).is_none(),
        "gone after unregister"
    );

    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Registrations survive a restart through the durable registry, and
/// appends committed while the server was down are evaluated at
/// startup (catch-up), so matches are delayed — never lost.
#[test]
fn registry_survives_restart_and_catches_up() {
    let model = tiny_model();
    let query = query_clip(EventKind::StopAndGo);
    let stages = streaming_stages(71, 1);
    let base = sketchql::VideoIndex::from_truth(&stages[0]);
    let grown = sketchql::VideoIndex::from_truth(&stages[1]);
    let dir = temp_dir("restart");
    let registry = dir.join("registry.json");
    ingest_sharded(
        &model.similarity(),
        &base,
        "alpha",
        &ingest_cfg(&query),
        25,
        &dir.join("set"),
        &|_| {},
    )
    .unwrap();
    let config = EngineConfig {
        registry_path: Some(registry.clone()),
        ..EngineConfig::default()
    };

    let mut datasets = BTreeMap::new();
    datasets.insert("alpha".to_string(), base.clone());
    let mut stores = BTreeMap::new();
    stores.insert("alpha".to_string(), exhaustive_tier(&dir.join("set")));
    let engine = Engine::start_with_stores(model.clone(), datasets, stores, config.clone());
    let reg = engine.register("alpha", query.clone(), None, None).unwrap();
    engine.shutdown();
    drop(engine);

    // The append lands while no server is running.
    append_frames(&model.similarity(), &grown, &dir.join("set"), 2, &|_| {}).unwrap();

    // Restart against the grown store: startup catch-up must evaluate
    // the restored registration over the missed range.
    let mut datasets = BTreeMap::new();
    datasets.insert("alpha".to_string(), grown.clone());
    let mut stores = BTreeMap::new();
    stores.insert("alpha".to_string(), exhaustive_tier(&dir.join("set")));
    let engine = Engine::start_with_stores(model, datasets, stores, config);
    let offline = engine
        .execute(QuerySpec {
            min_end: Some(base.frames),
            ..QuerySpec::new("alpha", query.clone())
        })
        .unwrap();
    let feed = engine
        .notifications(reg.id, None)
        .expect("registration restored from disk");
    assert_eq!(feed.epoch, 1);
    assert_eq!(feed.watermark, grown.frames);
    assert_eq!(feed.matches.len(), offline.moments.len());
    for (m, r) in feed.matches.iter().zip(&offline.moments) {
        assert_eq!((m.start, m.end), (r.start, r.end));
        assert_eq!(m.score.to_bits(), r.score.to_bits());
    }

    // Fresh ids keep counting past the restored ones.
    let next = engine.register("alpha", query, None, None).unwrap();
    assert!(next.id > reg.id);

    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The whole flow over the wire: register, append + reload, drain,
/// unregister — with the v6 protocol version announced on ping.
#[test]
fn wire_register_and_notifications_round_trip() {
    let model = tiny_model();
    let query = query_clip(EventKind::LaneChange);
    let stages = streaming_stages(81, 1);
    let base = sketchql::VideoIndex::from_truth(&stages[0]);
    let grown = sketchql::VideoIndex::from_truth(&stages[1]);
    let dir = temp_dir("wire");
    ingest_sharded(
        &model.similarity(),
        &base,
        "alpha",
        &ingest_cfg(&query),
        25,
        &dir,
        &|_| {},
    )
    .unwrap();

    let mut datasets = BTreeMap::new();
    datasets.insert("alpha".to_string(), base.clone());
    datasets.insert("beta".to_string(), common::small_index(12));
    let mut stores = BTreeMap::new();
    stores.insert("alpha".to_string(), exhaustive_tier(&dir));
    let engine =
        Engine::start_with_stores(model.clone(), datasets, stores, EngineConfig::default());
    let server = Server::start(engine, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);

    // Store-less datasets refuse registration with a BadRequest.
    let err = client
        .register_event("beta", "lane_change", None, None)
        .unwrap_err();
    let ClientError::Server { kind, .. } = err else {
        panic!("expected a server error, got {err}");
    };
    assert_eq!(kind, ErrorKind::BadRequest);

    let reg = client
        .register_event("alpha", "lane_change", None, None)
        .unwrap();
    assert_eq!(reg.watermark, base.frames);

    append_frames(&model.similarity(), &grown, &dir, 2, &|_| {}).unwrap();
    let reload = server
        .engine()
        .reload_dataset("alpha", grown.clone(), exhaustive_tier(&dir))
        .unwrap();
    assert_eq!(reload.epoch, 1);

    let offline = server
        .engine()
        .execute(QuerySpec {
            min_end: Some(base.frames),
            ..QuerySpec::new("alpha", query)
        })
        .unwrap();
    let feed = client.notifications(reg.registration_id, None).unwrap();
    assert_eq!(feed.epoch, 1);
    assert_eq!(feed.watermark, grown.frames);
    assert_eq!(feed.matches.len(), offline.moments.len());
    for (m, r) in feed.matches.iter().zip(&offline.moments) {
        assert_eq!((m.start, m.end), (r.start, r.end));
        assert_eq!(m.score.to_bits(), r.score.to_bits());
        assert_eq!(m.epoch, 1);
    }

    client.unregister(reg.registration_id).unwrap();
    let err = client.notifications(reg.registration_id, None).unwrap_err();
    let ClientError::Server { kind, .. } = err else {
        panic!("expected a server error, got {err}");
    };
    assert_eq!(kind, ErrorKind::BadRequest);

    client.shutdown().unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
