//! Telemetry counter correctness: one query over a fully-known synthetic
//! video must produce exactly the analytically expected counter values.
//!
//! The same test compiles and passes with the `telemetry` feature disabled
//! (`cargo test --no-default-features`): the recorder then reports all-zero
//! counters and the assertions switch to the no-op expectations.

use sketchql::telemetry::{self, Recorder};
use sketchql::training::{train, TrainingConfig};
use sketchql::{Matcher, MatcherConfig, VideoIndex};
use sketchql_trajectory::{BBox, Clip, ObjectClass, TrajPoint, Trajectory};
use std::sync::Mutex;

/// Counters are process-global, so tests that bracket them with a
/// [`Recorder`] must not interleave.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

const FRAMES: u32 = 100;
const QUERY_SPAN: u32 = 40;

/// One car covering every frame: every enumerated window has exactly one
/// candidate object combination.
fn single_track_index() -> VideoIndex {
    let pts = (0..FRAMES)
        .map(|f| TrajPoint::new(f, BBox::new(50.0 + f as f32 * 8.0, 360.0, 60.0, 35.0)))
        .collect();
    let clip = Clip::new(
        1280.0,
        720.0,
        vec![Trajectory::from_points(1, ObjectClass::Car, pts)],
    );
    VideoIndex::from_clip("analytic", &clip, FRAMES, 30.0)
}

fn query() -> Clip {
    let pts = (0..QUERY_SPAN)
        .map(|i| TrajPoint::new(i, BBox::new(100.0 + i as f32 * 10.0, 400.0, 80.0, 45.0)))
        .collect();
    Clip::new(
        1000.0,
        600.0,
        vec![Trajectory::from_points(0, ObjectClass::Car, pts)],
    )
}

/// Closed-form window count: per scale, `window = max(round_down(q_span *
/// scale), min_window)`; scales whose window exceeds the video are skipped;
/// start positions advance by `stride = max(round_down(window * stride_frac),
/// 1)` until a window reaches the final frame, giving
/// `ceil((frames - window) / stride) + 1` windows. Assumes every scale maps
/// to a distinct window length (true for the default config at
/// `QUERY_SPAN = 40`); the matcher deduplicates clamped scales otherwise.
fn expected_windows(cfg: &MatcherConfig, q_span: u32, frames: u32) -> u64 {
    let mut count = 0u64;
    for &scale in &cfg.window_scales {
        let window = ((q_span as f32 * scale) as u32).max(cfg.min_window);
        if window > frames {
            continue;
        }
        let stride = ((window as f32 * cfg.stride_frac) as u32).max(1);
        count += ((frames - window) as u64).div_ceil(stride as u64) + 1;
    }
    count
}

#[test]
fn counters_match_analytic_expectations() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let mut cfg = TrainingConfig::tiny();
    cfg.steps = 2;
    let matcher = Matcher::new(train(cfg).similarity());
    let idx = single_track_index();
    let q = query();
    assert_eq!(q.span(), QUERY_SPAN);
    assert_eq!(idx.frames, FRAMES);

    let recorder = Recorder::begin();
    let results = matcher.search(&idx, &q).unwrap();
    let report = recorder.finish("analytic/car_query");

    assert!(!results.is_empty());
    assert_eq!(report.label, "analytic/car_query");

    if !telemetry::is_enabled() {
        // Feature off: the API exists but every counter reads zero.
        assert_eq!(report.windows_enumerated, 0);
        assert_eq!(report.embeddings_computed, 0);
        assert_eq!(report.similarity_evals, 0);
        return;
    }

    let expected = expected_windows(&matcher.config, QUERY_SPAN, FRAMES);
    assert!(expected > 0);
    assert_eq!(report.windows_enumerated, expected);
    // The single full-coverage track gives one combination per window, so
    // every window is scored exactly once and none are pruned.
    assert_eq!(report.similarity_evals, expected);
    assert_eq!(report.windows_pruned, 0);
    // One embedding per scored candidate plus one for the query itself.
    // (The window scales here map to distinct lengths, so the per-search
    // embedding cache sees only distinct segments: every lookup misses.)
    assert_eq!(report.embeddings_computed, expected + 1);
    assert_eq!(report.embed_cache_misses, expected);
    assert_eq!(report.embed_cache_hits, 0);
    assert_eq!(report.embed_cache_hit_rate(), Some(0.0));
    // The index was pre-built outside the bracket.
    assert_eq!(report.frames_preprocessed, 0);
    assert_eq!(report.tracks_built, 0);
    assert_eq!(report.topk_heap_ops, results.len() as u64);
}

/// Regression: scales `0.75` and `1.0` of a 16-frame query both clamp to
/// `min_window = 16`; enumeration must emit that window grid once, not
/// once per scale (the duplicate-window bug doubled both the counter and
/// the scoring work).
#[test]
fn clamped_scales_enumerate_each_window_once() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let matcher = Matcher::new(sketchql::ClassicalSimilarity::new(
        sketchql_trajectory::DistanceKind::Dtw,
    ));
    let idx = single_track_index();
    let pts = (0..16)
        .map(|i| TrajPoint::new(i, BBox::new(100.0 + i as f32 * 10.0, 400.0, 80.0, 45.0)))
        .collect();
    let q = Clip::new(
        1000.0,
        600.0,
        vec![Trajectory::from_points(0, ObjectClass::Car, pts)],
    );
    assert_eq!(q.span(), 16);

    let recorder = Recorder::begin();
    let results = matcher.search(&idx, &q).unwrap();
    let report = recorder.finish("analytic/clamped_scales");
    assert!(!results.is_empty());

    if !telemetry::is_enabled() {
        assert_eq!(report.windows_enumerated, 0);
        return;
    }

    // Deduplicated grids: 16-frame windows (stride 4, starts 0..=84) give
    // 22, 24-frame windows (stride 6) give ceil(76/6) + 1 = 14.
    let expected = 22 + 14;
    assert_eq!(report.windows_enumerated, expected);
    // One candidate combination per window: scoring work shrinks with it.
    assert_eq!(report.similarity_evals, expected);
}

#[test]
fn stage_spans_cover_the_query() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let mut cfg = TrainingConfig::tiny();
    cfg.steps = 2;
    let matcher = Matcher::new(train(cfg).similarity());
    let idx = single_track_index();
    let q = query();

    let recorder = Recorder::begin();
    let _ = matcher.search(&idx, &q).unwrap();
    let report = recorder.finish("analytic/stages");

    if !telemetry::is_enabled() {
        assert_eq!(report.total_nanos, 0);
        assert!(report.stages().is_empty());
        return;
    }

    assert!(report.total_nanos > 0);
    let stages = report.stages();
    assert!(
        stages
            .iter()
            .any(|(name, _)| *name == "sketchql.matcher.search"),
        "depth-0 stages: {stages:?}"
    );
    // The stage spans account for (nearly) all of the bracketed wall time.
    let sum = report.stage_nanos_sum();
    assert!(sum <= report.total_nanos);
    assert!(
        sum as f64 >= report.total_nanos as f64 * 0.9,
        "stage sum {sum} vs total {}",
        report.total_nanos
    );
}

#[test]
fn report_exports_are_well_formed() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let recorder = Recorder::begin();
    let idx = single_track_index();
    let matcher = Matcher::new(sketchql::ClassicalSimilarity::new(
        sketchql_trajectory::DistanceKind::Dtw,
    ));
    let _ = matcher.search(&idx, &query()).unwrap();
    let report = recorder.finish("analytic/export");

    let json = report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"label\":\"analytic/export\""));
    assert!(json.contains("\"sketchql.matcher.windows_enumerated\""));

    let table = report.render_table();
    assert!(table.contains("query report: analytic/export"));
    assert!(table.contains("sketchql.matcher.windows_enumerated"));

    // Registry-level exports are valid regardless of feature state.
    let snap = telemetry::snapshot_json();
    assert!(snap.starts_with('{') && snap.ends_with('}'));
    let prom = telemetry::snapshot_prometheus();
    if telemetry::is_enabled() {
        assert!(prom.contains("# TYPE"));
    } else {
        assert!(prom.is_empty());
    }
}
