//! Per-query reporting: a [`Recorder`] brackets one `run_query` and
//! produces a [`QueryReport`] from counter deltas and top-level spans.

#[cfg(feature = "enabled")]
use crate::metrics::counter;
use crate::names;
#[cfg(feature = "enabled")]
use crate::span::take_finished_spans;
use crate::span::SpanRecord;

#[cfg(feature = "enabled")]
use std::time::Instant;

/// The pipeline counters a [`Recorder`] tracks, in report order.
#[cfg(feature = "enabled")]
const REPORT_COUNTERS: &[&str] = &[
    names::FRAMES_PREPROCESSED,
    names::TRACKS_BUILT,
    names::WINDOWS_ENUMERATED,
    names::WINDOWS_PRUNED,
    names::EMBEDDINGS_COMPUTED,
    names::EMBED_CACHE_HITS,
    names::EMBED_CACHE_MISSES,
    names::SIMILARITY_EVALS,
    names::TOPK_HEAP_OPS,
    names::STORE_HITS,
    names::STORE_FALLBACKS,
    names::STORE_PROBED,
];

/// Everything observed about one query run.
///
/// Counters are deltas over the bracketed region, so concurrent queries
/// on other sessions of the same process can inflate each other's
/// numbers; SketchQL sessions run queries serially, where the deltas are
/// exact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryReport {
    /// Label for the run, usually `<dataset>/<query>`.
    pub label: String,
    /// Frames run through detection + preprocessing while building
    /// indexes inside the bracketed region (0 for pre-built indexes).
    pub frames_preprocessed: u64,
    /// Tracks materialized inside the bracketed region.
    pub tracks_built: u64,
    /// Candidate windows enumerated across all scales.
    pub windows_enumerated: u64,
    /// Windows discarded before scoring (no eligible tracks).
    pub windows_pruned: u64,
    /// Clip embeddings computed by the learned encoder.
    pub embeddings_computed: u64,
    /// Candidate segments served from the per-search embedding cache.
    pub embed_cache_hits: u64,
    /// Distinct candidate segments the embedding cache had to embed.
    pub embed_cache_misses: u64,
    /// Similarity evaluations (query vs. candidate combination).
    pub similarity_evals: u64,
    /// Pushes into the candidate ranking structure.
    pub topk_heap_ops: u64,
    /// Queries answered from a persistent embedding store.
    pub store_hits: u64,
    /// Queries that had a store available but fell back to the full scan.
    pub store_fallbacks: u64,
    /// Store rows probed and exactly re-ranked.
    pub store_probed: u64,
    /// Completed spans, completion order (children precede parents).
    pub spans: Vec<SpanRecord>,
    /// Total wall time of the bracketed region, nanoseconds.
    pub total_nanos: u64,
}

impl QueryReport {
    /// Per-stage wall times: the depth-0 spans, in completion order.
    pub fn stages(&self) -> Vec<(&'static str, u64)> {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| (s.name, s.nanos))
            .collect()
    }

    /// Sum of the depth-0 span durations, nanoseconds. For a fully
    /// instrumented query this lands within a few percent of
    /// [`total_nanos`](Self::total_nanos).
    pub fn stage_nanos_sum(&self) -> u64 {
        self.stages().iter().map(|(_, n)| n).sum()
    }

    /// The counters as `(metric name, value)` pairs, report order.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            (names::FRAMES_PREPROCESSED, self.frames_preprocessed),
            (names::TRACKS_BUILT, self.tracks_built),
            (names::WINDOWS_ENUMERATED, self.windows_enumerated),
            (names::WINDOWS_PRUNED, self.windows_pruned),
            (names::EMBEDDINGS_COMPUTED, self.embeddings_computed),
            (names::EMBED_CACHE_HITS, self.embed_cache_hits),
            (names::EMBED_CACHE_MISSES, self.embed_cache_misses),
            (names::SIMILARITY_EVALS, self.similarity_evals),
            (names::TOPK_HEAP_OPS, self.topk_heap_ops),
            (names::STORE_HITS, self.store_hits),
            (names::STORE_FALLBACKS, self.store_fallbacks),
            (names::STORE_PROBED, self.store_probed),
        ]
    }

    /// Fraction of candidate-segment lookups served from the per-search
    /// embedding cache, or `None` when the query never consulted it
    /// (classical similarity, or the cache disabled).
    pub fn embed_cache_hit_rate(&self) -> Option<f64> {
        let total = self.embed_cache_hits + self.embed_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.embed_cache_hits as f64 / total as f64)
        }
    }
}

/// Brackets one query: snapshots the pipeline counters at
/// [`Recorder::begin`], and turns deltas + spans into a [`QueryReport`]
/// at [`Recorder::finish`].
pub struct Recorder {
    #[cfg(feature = "enabled")]
    start: Instant,
    #[cfg(feature = "enabled")]
    base: Vec<u64>,
}

impl Recorder {
    /// Starts recording. Drains any stale finished spans on this thread
    /// so the report only sees spans completed inside the bracket.
    pub fn begin() -> Self {
        #[cfg(feature = "enabled")]
        {
            let _ = take_finished_spans();
            Recorder {
                start: Instant::now(),
                base: REPORT_COUNTERS.iter().map(|n| counter(n).get()).collect(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Recorder {}
        }
    }

    /// Stops recording and builds the report. When telemetry is disabled
    /// this returns a default (all-zero) report carrying only the label.
    pub fn finish(self, label: impl Into<String>) -> QueryReport {
        #[cfg(feature = "enabled")]
        {
            let deltas: Vec<u64> = REPORT_COUNTERS
                .iter()
                .zip(&self.base)
                .map(|(n, base)| counter(n).get().saturating_sub(*base))
                .collect();
            QueryReport {
                label: label.into(),
                frames_preprocessed: deltas[0],
                tracks_built: deltas[1],
                windows_enumerated: deltas[2],
                windows_pruned: deltas[3],
                embeddings_computed: deltas[4],
                embed_cache_hits: deltas[5],
                embed_cache_misses: deltas[6],
                similarity_evals: deltas[7],
                topk_heap_ops: deltas[8],
                store_hits: deltas[9],
                store_fallbacks: deltas[10],
                store_probed: deltas[11],
                spans: take_finished_spans(),
                total_nanos: self.start.elapsed().as_nanos() as u64,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            QueryReport {
                label: label.into(),
                ..QueryReport::default()
            }
        }
    }
}
