//! ASCII rendering of clips.
//!
//! The real SketchQL pops up a video player for "Open Query" and for
//! retrieved results; a Rust library gets the terminal equivalent: render a
//! [`Clip`] frame as a character grid, or a whole clip as a storyboard of
//! key frames with motion trails. Used by the examples and handy when
//! debugging matcher output.

// Index arithmetic is clearer than iterator adapters in these numeric
// kernels.
#![allow(clippy::needless_range_loop)]

use crate::clip::Clip;

/// Glyph assigned to object `i` (by position in the clip's object list).
fn glyph(i: usize) -> char {
    const GLYPHS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    GLYPHS[i % GLYPHS.len()] as char
}

/// Renders one frame of a clip onto a `cols x rows` character grid.
///
/// Boxes are drawn as filled rectangles of the object's glyph; the frame
/// border is drawn with `+-|`. Objects outside the clip's frame bounds are
/// clamped away.
pub fn render_frame(clip: &Clip, frame: u32, cols: usize, rows: usize) -> String {
    assert!(cols >= 4 && rows >= 4, "grid too small");
    let mut grid = vec![vec![' '; cols]; rows];
    // Border.
    for c in 0..cols {
        grid[0][c] = '-';
        grid[rows - 1][c] = '-';
    }
    for row in grid.iter_mut() {
        row[0] = '|';
        row[cols - 1] = '|';
    }
    grid[0][0] = '+';
    grid[0][cols - 1] = '+';
    grid[rows - 1][0] = '+';
    grid[rows - 1][cols - 1] = '+';

    let sx = (cols - 2) as f32 / clip.frame_width.max(1e-6);
    let sy = (rows - 2) as f32 / clip.frame_height.max(1e-6);
    for (i, traj) in clip.objects.iter().enumerate() {
        let Some(bb) = traj.bbox_at(frame) else {
            continue;
        };
        let x1 = (bb.x1() * sx).floor().max(0.0) as usize + 1;
        let x2 = ((bb.x2() * sx).ceil() as usize).min(cols - 2);
        let y1 = (bb.y1() * sy).floor().max(0.0) as usize + 1;
        let y2 = ((bb.y2() * sy).ceil() as usize).min(rows - 2);
        for row in grid.iter_mut().take(y2 + 1).skip(y1.min(rows - 2)) {
            for cell in row.iter_mut().take(x2 + 1).skip(x1.min(cols - 2)) {
                *cell = glyph(i);
            }
        }
    }
    grid.into_iter()
        .map(|r| r.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders a storyboard: the clip's motion trails (`.` marks) plus each
/// object's final box, annotated with a legend of object classes.
pub fn render_storyboard(clip: &Clip, cols: usize, rows: usize) -> String {
    assert!(cols >= 4 && rows >= 4, "grid too small");
    let mut grid = vec![vec![' '; cols]; rows];
    for c in 0..cols {
        grid[0][c] = '-';
        grid[rows - 1][c] = '-';
    }
    for row in grid.iter_mut() {
        row[0] = '|';
        row[cols - 1] = '|';
    }
    let sx = (cols - 2) as f32 / clip.frame_width.max(1e-6);
    let sy = (rows - 2) as f32 / clip.frame_height.max(1e-6);
    let clamp_x = |v: f32| ((v * sx) as usize + 1).min(cols - 2).max(1);
    let clamp_y = |v: f32| ((v * sy) as usize + 1).min(rows - 2).max(1);

    // Trails first, then start/end markers on top.
    for traj in clip.objects.iter() {
        for p in traj.points() {
            grid[clamp_y(p.bbox.cy)][clamp_x(p.bbox.cx)] = '.';
        }
    }
    for (i, traj) in clip.objects.iter().enumerate() {
        if let Some(first) = traj.points().first() {
            grid[clamp_y(first.bbox.cy)][clamp_x(first.bbox.cx)] = 'o';
        }
        if let Some(last) = traj.points().last() {
            grid[clamp_y(last.bbox.cy)][clamp_x(last.bbox.cx)] = glyph(i);
        }
    }

    let mut out: Vec<String> = grid
        .into_iter()
        .map(|r| r.into_iter().collect::<String>())
        .collect();
    let legend = clip
        .objects
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{}={} ({} pts)", glyph(i), t.class, t.len()))
        .collect::<Vec<_>>()
        .join("  ");
    out.push(format!("o = start, {legend}"));
    out.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;
    use crate::object::ObjectClass;
    use crate::trajectory::{TrajPoint, Trajectory};

    fn demo_clip() -> Clip {
        let car = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..20)
                .map(|f| TrajPoint::new(f, BBox::new(100.0 + f as f32 * 40.0, 500.0, 120.0, 80.0)))
                .collect(),
        );
        let person = Trajectory::from_points(
            2,
            ObjectClass::Person,
            (0..20)
                .map(|f| TrajPoint::new(f, BBox::new(500.0, 100.0 + f as f32 * 20.0, 40.0, 90.0)))
                .collect(),
        );
        Clip::new(1000.0, 600.0, vec![car, person])
    }

    #[test]
    fn frame_render_contains_both_objects() {
        let s = render_frame(&demo_clip(), 5, 60, 20);
        assert!(s.contains('A'), "car glyph missing:\n{s}");
        assert!(s.contains('B'), "person glyph missing:\n{s}");
        // Border intact.
        assert!(s.starts_with('+'));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 20);
        assert!(lines.iter().all(|l| l.len() == 60));
    }

    #[test]
    fn objects_move_between_frames() {
        let a = render_frame(&demo_clip(), 0, 60, 20);
        let b = render_frame(&demo_clip(), 19, 60, 20);
        assert_ne!(a, b);
    }

    #[test]
    fn absent_objects_are_not_drawn() {
        let clip = demo_clip();
        let s = render_frame(&clip, 500, 60, 20);
        assert!(!s.contains('A'));
        assert!(!s.contains('B'));
    }

    #[test]
    fn storyboard_has_trails_and_legend() {
        let s = render_storyboard(&demo_clip(), 60, 20);
        assert!(s.contains('.'), "trail missing:\n{s}");
        assert!(s.contains('o'), "start marker missing");
        assert!(s.contains("A=car"));
        assert!(s.contains("B=person"));
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grids_are_rejected() {
        let _ = render_frame(&demo_clip(), 0, 2, 2);
    }
}
