//! Scheduler-policy integration tests: admission classes (quotas, rate
//! limits), starvation protection, the mid-batch deadline-inversion
//! regression, the submit/shutdown race, and worker-panic containment.

mod common;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sketchql_datasets::{query_clip, EventKind};
use sketchql_server::{
    ClassConfig, Engine, EngineConfig, EngineError, QuerySpec, SchedPolicy, DEFAULT_CLASS,
};

use common::{small_index, tiny_model, two_datasets};

fn spec(dataset: &str, event: EventKind) -> QuerySpec {
    QuerySpec::new(dataset, query_clip(event))
}

fn classed(dataset: &str, event: EventKind, class: &str) -> QuerySpec {
    let mut q = spec(dataset, event);
    q.class = Some(class.to_string());
    q
}

/// Two classes at wildly unequal offered load both make progress: the
/// heavy class is bounded by its queue quota (sheds as `Overloaded`),
/// so the light class's queries are never crowded out of the queue.
#[test]
fn unequal_load_classes_both_progress() {
    let mut classes = BTreeMap::new();
    classes.insert(
        "heavy".to_string(),
        ClassConfig {
            queue_quota: 2,
            ..Default::default()
        },
    );
    classes.insert("light".to_string(), ClassConfig::default());
    let engine = Arc::new(Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            queue_depth: 64,
            sched: SchedPolicy {
                classes,
                ..Default::default()
            },
            ..Default::default()
        },
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let (light_done, heavy_shed) = std::thread::scope(|scope| {
        // The heavy class floods: far more offered load than one worker
        // clears, but at most 2 of its queries may wait at once.
        let flood = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut shed = 0u64;
                let mut handles = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    match engine.submit(classed("alpha", EventKind::LeftTurn, "heavy")) {
                        Ok(h) => handles.push(h),
                        Err(EngineError::Overloaded { queue_depth }) => {
                            assert_eq!(queue_depth, 2, "quota, not the global bound");
                            shed += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(other) => panic!("unexpected rejection: {other:?}"),
                    }
                }
                for h in handles {
                    let _ = h.wait();
                }
                shed
            })
        };
        // The light class trickles through the same single worker.
        let mut light_done = 0u64;
        for _ in 0..4 {
            engine
                .execute(classed("beta", EventKind::UTurn, "light"))
                .expect("light-class query must complete under heavy-class flood");
            light_done += 1;
        }
        stop.store(true, Ordering::Relaxed);
        (light_done, flood.join().unwrap())
    });
    assert_eq!(light_done, 4);
    assert!(
        heavy_shed > 0,
        "the flood must hit the heavy class's queue quota"
    );
    let stats = engine.stats();
    let heavy = stats.classes.iter().find(|c| c.name == "heavy").unwrap();
    let light = stats.classes.iter().find(|c| c.name == "light").unwrap();
    assert!(heavy.completed > 0, "heavy class must still make progress");
    assert_eq!(light.completed, 4);
    assert!(heavy.shed >= heavy_shed, "quota rejections count as shed");
    engine.shutdown();
}

/// Starvation protection: a continuously re-filled high-priority stream
/// must not hold a low-priority query past its aging bound. With
/// `aging_ms = 5`, ~5 ms of queue wait buys +1 effective priority, so a
/// base gap of 3 closes after ~15 ms of waiting.
#[test]
fn aging_promotes_past_a_high_priority_stream() {
    let mut classes = BTreeMap::new();
    classes.insert(
        "vip".to_string(),
        ClassConfig {
            priority: 3,
            ..Default::default()
        },
    );
    let engine = Arc::new(Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            queue_depth: 64,
            sched: SchedPolicy {
                classes,
                aging_ms: 5,
                ..Default::default()
            },
            ..Default::default()
        },
    ));

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Two feeders keep high-priority work queued at all times; a
        // bounded iteration count is the backstop if the low-priority
        // query somehow never completes.
        let feeders: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut handles = Vec::new();
                    for _ in 0..500 {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Ok(h) = engine.submit(classed("alpha", EventKind::LeftTurn, "vip")) {
                            handles.push(h);
                        }
                        // Keep a few queued, not thousands.
                        while handles.len() > 4 {
                            let _ = handles.remove(0).wait();
                        }
                    }
                    for h in handles {
                        let _ = h.wait();
                    }
                })
            })
            .collect();
        // Let the stream establish itself, then submit one default-class
        // (priority 0) query and insist it completes.
        std::thread::sleep(Duration::from_millis(20));
        let started = Instant::now();
        engine
            .execute(spec("beta", EventKind::UTurn))
            .expect("aged low-priority query must run despite the vip stream");
        let waited = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        for f in feeders {
            f.join().unwrap();
        }
        // Not a tight bound (scan time dominates), but it must not have
        // waited for the entire 2x500-query stream to drain.
        assert!(
            waited < Duration::from_secs(30),
            "low-priority query took {waited:?}"
        );
    });
    engine.shutdown();
}

/// A class with a 1-query burst at 1 query/sec sheds the second
/// immediate submission with `RateLimited` (a distinct error from
/// queue-quota `Overloaded`).
#[test]
fn token_bucket_rejects_burst_past_capacity() {
    let mut classes = BTreeMap::new();
    classes.insert(
        "metered".to_string(),
        ClassConfig {
            rate_per_sec: 1.0,
            burst: 1.0,
            ..Default::default()
        },
    );
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            sched: SchedPolicy {
                classes,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let first = engine
        .submit(classed("alpha", EventKind::LeftTurn, "metered"))
        .expect("burst capacity admits the first query");
    let err = engine
        .submit(classed("alpha", EventKind::RightTurn, "metered"))
        .unwrap_err();
    assert_eq!(
        err,
        EngineError::RateLimited {
            class: "metered".into()
        }
    );
    // An unmetered class is unaffected.
    engine
        .execute(classed("beta", EventKind::UTurn, "other"))
        .expect("rate limit must not leak across classes");
    first.wait().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.rate_limited, 1);
    let metered = stats.classes.iter().find(|c| c.name == "metered").unwrap();
    assert_eq!(metered.rate_limited, 1);
    // Undeclared classes fold into the default class.
    assert!(stats.classes.iter().any(|c| c.name == DEFAULT_CLASS));
    engine.shutdown();
}

/// The deadline-inversion regression: a fused member whose deadline
/// expires mid-scan is answered `DeadlineExceeded` by the monitor while
/// the shared scan is still running — not after it completes. Uses FIFO
/// mode so formation deterministically fuses the tight query (the
/// deadline monitor is mode-independent).
#[test]
fn mid_batch_expiry_is_answered_before_the_scan_finishes() {
    let engine = Arc::new(Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            fused_batch: 4,
            sched: SchedPolicy::fifo(),
            ..Default::default()
        },
    ));
    // Measure one solo scan to size the deadline.
    let warmup = Instant::now();
    engine.execute(spec("alpha", EventKind::LeftTurn)).unwrap();
    let scan = warmup.elapsed();

    // Occupy the single worker, then queue a no-deadline query and a
    // tight-deadline query on the same dataset: they fuse into one
    // batch whose scan outlives the tight member's margin.
    let blocker = engine.submit(spec("alpha", EventKind::RightTurn)).unwrap();
    std::thread::sleep((scan / 10).max(Duration::from_millis(1)));
    let patient = engine.submit(spec("alpha", EventKind::LeftTurn)).unwrap();
    let mut tight_spec = spec("alpha", EventKind::UTurn);
    // A hair past the queue wait (the blocker's remaining scan), so the
    // queue-expiry check passes but the fused scan outlives the margin.
    tight_spec.deadline = Some(scan + scan / 10);
    let tight = engine.submit(tight_spec).unwrap();

    let ((tight_result, tight_at), (patient_result, patient_at)) = std::thread::scope(|scope| {
        let tight_waiter = scope.spawn(move || {
            let r = tight.wait();
            (r, Instant::now())
        });
        let patient_waiter = scope.spawn(move || {
            let r = patient.wait();
            (r, Instant::now())
        });
        (tight_waiter.join().unwrap(), patient_waiter.join().unwrap())
    });
    blocker.wait().unwrap();

    assert_eq!(tight_result, Err(EngineError::DeadlineExceeded));
    let patient = patient_result.expect("the surviving member still gets its answer");
    assert!(
        patient.batch_size >= 2,
        "test premise: the two queries must have fused (batch {})",
        patient.batch_size
    );
    assert!(
        patient_at > tight_at + Duration::from_millis(2),
        "tight member must be answered mid-scan, not after it \
         (gap {:?})",
        patient_at.saturating_duration_since(tight_at)
    );
    assert_eq!(engine.stats().timed_out, 1);
    engine.shutdown();
}

/// Submit racing shutdown never leaves a `QueryHandle::wait()` hanging:
/// every submission either errs at admission or is drained/answered.
#[test]
fn submit_shutdown_race_always_answers() {
    for round in 0..20 {
        let engine = Arc::new(Engine::start(
            tiny_model(),
            two_datasets(),
            EngineConfig {
                workers: 2,
                fused_batch: 4,
                ..Default::default()
            },
        ));
        std::thread::scope(|scope| {
            let submitters: Vec<_> = (0..4)
                .map(|t| {
                    let engine = Arc::clone(&engine);
                    scope.spawn(move || {
                        let mut outcomes = Vec::new();
                        for i in 0..10 {
                            let mut q = spec(
                                if (t + i) % 2 == 0 { "alpha" } else { "beta" },
                                EventKind::LeftTurn,
                            );
                            // Mostly pre-expired deadlines so a round is
                            // cheap; a couple of real scans keep workers
                            // busy across the shutdown.
                            if i % 5 != 0 {
                                q.deadline = Some(Duration::ZERO);
                            }
                            match engine.submit(q) {
                                Ok(handle) => outcomes.push(handle.wait()),
                                Err(e) => outcomes.push(Err(e)),
                            }
                        }
                        outcomes
                    })
                })
                .collect();
            // Shut down while submissions are in flight.
            if round % 2 == 0 {
                std::thread::sleep(Duration::from_millis(round / 2));
            }
            engine.shutdown();
            for s in submitters {
                for outcome in s.join().expect("no submitter may hang or panic") {
                    match outcome {
                        Ok(_)
                        | Err(EngineError::ShuttingDown)
                        | Err(EngineError::DeadlineExceeded)
                        | Err(EngineError::Overloaded { .. }) => {}
                        Err(other) => panic!("unexpected outcome: {other:?}"),
                    }
                }
            }
        });
    }
}

/// A worker panic mid-batch is contained: the members are answered
/// `WorkerLost` (not left hanging), `in_flight` returns to zero, and
/// the pool keeps serving other datasets.
#[test]
fn worker_panic_answers_members_and_restores_in_flight() {
    if !cfg!(debug_assertions) {
        // The fault-injection hook compiles out of release builds.
        return;
    }
    let mut datasets = BTreeMap::new();
    datasets.insert("doomed".to_string(), small_index(31));
    datasets.insert("steady".to_string(), small_index(32));
    let engine = Engine::start(
        tiny_model(),
        datasets,
        EngineConfig {
            workers: 2,
            ..Default::default()
        },
    );
    // The injection hook matches on dataset name, so a unique name keeps
    // the env var inert for every other (possibly concurrent) test.
    std::env::set_var("SKETCHQL_TEST_PANIC_DATASET", "doomed");
    let doomed = engine.submit(spec("doomed", EventKind::LeftTurn)).unwrap();
    assert_eq!(doomed.wait(), Err(EngineError::WorkerLost));
    std::env::remove_var("SKETCHQL_TEST_PANIC_DATASET");

    let stats = engine.stats();
    assert_eq!(stats.in_flight, 0, "panic must not leak in_flight");
    assert_eq!(stats.failed, 1);
    // The pool survives: both datasets still answer.
    engine.execute(spec("steady", EventKind::UTurn)).unwrap();
    engine.execute(spec("doomed", EventKind::UTurn)).unwrap();
    engine.shutdown();
}
