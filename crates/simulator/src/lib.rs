//! # sketchql-simulator
//!
//! The paper's 3D trajectory simulator: the training-data engine behind
//! SketchQL's zero-shot similarity model. Motions are generated in a 3D
//! world ([`motion`], [`agent`]), recorded by virtual pinhole cameras with
//! optional shake ([`camera`]), and projected into 2D bounding box clips
//! ([`scene`]). Two recordings of the same 3D event from different cameras
//! form a contrastive positive pair; recordings of different events are
//! negatives ([`pairs`]).

#![warn(missing_docs)]

pub mod agent;
pub mod camera;
pub mod motion;
pub mod pairs;
pub mod scene;

pub use agent::{class_priors, Agent, BodyDims, ClassPriors};
pub use camera::{gauss, gauss_pair, Camera, CameraRig, ShakeConfig};
pub use motion::{templates, AgentPose, MotionPrimitive, MotionScript};
pub use pairs::{PairGenConfig, PairGenerator, RandomSceneSampler, SamplerConfig, TrainingPair};
pub use scene::{Scene3D, SceneObject};
