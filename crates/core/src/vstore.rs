//! Persistent embedding stores: offline ingest + index-backed search.
//!
//! The learned similarity embeds candidate clips independently of the
//! query, so candidate-window embeddings are query-agnostic. This module
//! computes them once — [`ingest`] enumerates the matcher's sliding
//! windows over a [`VideoIndex`], embeds every single-track window
//! segment through the batched encoder path, and persists vectors +
//! metadata to an [`EmbeddingStore`] — and serves them forever after:
//! [`Matcher::search_with_store`] embeds only the query, probes an
//! IVF-style ANN index over the stored vectors, and re-ranks the probed
//! rows with the *exact* same `score_embedding` call the full scan uses,
//! so every moment the store path reports carries a bit-identical score.
//!
//! Stores are strictly a cache: when one does not match the live model
//! (fingerprint), the live index (fingerprint), or the query's window
//! configuration, the search falls back to the full scan and the results
//! are what they always were. Multi-object queries always fall back —
//! the store persists one track per row, not track combinations.

use sketchql_store::{AnnConfig, EmbeddingStore, Fnv64, IvfIndex, StoreError, StoreMeta, StoreRow};
use sketchql_telemetry::{self as telemetry, names};
use sketchql_trajectory::{TrackId, Trajectory};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;

use crate::cancel::CancelToken;
use crate::embed_cache::embed_clips_parallel;
use crate::index::VideoIndex;
use crate::matcher::{window_clip, MatchError, Matcher, MatcherConfig, RetrievedMoment};
use crate::similarity::{LearnedSimilarity, PreparedQuery, Similarity};

/// Bucket bounds for the rows-per-probe histogram.
const PROBE_BOUNDS: &[f64] = &[8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0];

/// Fingerprints a trained similarity model: the encoder's
/// hyper-parameters plus every weight, bit-exact. Two models fingerprint
/// equal iff they embed every clip identically, which is exactly when a
/// store built by one can serve the other.
pub fn model_fingerprint(sim: &LearnedSimilarity) -> u64 {
    let mut h = Fnv64::new();
    let c = &sim.encoder.config;
    for v in [
        c.input_dim,
        c.d_model,
        c.heads,
        c.layers,
        c.ff_hidden,
        c.embed_dim,
        c.steps,
    ] {
        h.write_u64(v as u64);
    }
    h.write(&[u8::from(c.positional)]);
    h.write(format!("{:?}", c.pooling).as_bytes());
    for (name, tensor) in sim.store.iter() {
        h.write(name.as_bytes());
        h.write_u64(tensor.rows as u64);
        h.write_u64(tensor.cols as u64);
        for &v in &tensor.data {
            h.write_f32(v);
        }
    }
    h.finish()
}

/// Fingerprints a video index: dimensions plus every track's identity and
/// full point data, bit-exact. A store only serves an index whose
/// fingerprint matches the one it was ingested from.
pub fn index_fingerprint(index: &VideoIndex) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(index.frames);
    h.write_f32(index.fps);
    h.write_f32(index.frame_width);
    h.write_f32(index.frame_height);
    h.write_u64(index.tracks.len() as u64);
    for t in &index.tracks {
        h.write_u64(t.id);
        h.write(t.class.label().as_bytes());
        h.write_u64(t.points().len() as u64);
        for p in t.points() {
            h.write_u32(p.frame);
            h.write_f32(p.bbox.cx);
            h.write_f32(p.bbox.cy);
            h.write_f32(p.bbox.w);
            h.write_f32(p.bbox.h);
        }
    }
    h.finish()
}

/// Ingest parameters: the window grid to enumerate plus embedding and
/// ANN settings.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestConfig {
    /// Window lengths (frames) to enumerate. Build this from the matcher
    /// configuration with [`IngestConfig::from_matcher`] so the grids the
    /// store persists are exactly the grids queries will ask for.
    pub window_lens: Vec<u32>,
    /// Window stride as a fraction of the window length; must match the
    /// matcher's [`MatcherConfig::stride_frac`] or queries fall back.
    pub stride_frac: f32,
    /// Track-eligibility overlap fraction; must match the matcher's
    /// [`MatcherConfig::min_overlap_frac`] or queries fall back.
    pub min_overlap_frac: f32,
    /// Worker threads for the batched embedding pass.
    pub threads: usize,
    /// ANN build parameters.
    pub ann: AnnConfig,
}

impl IngestConfig {
    /// Derives the ingest grid from a matcher configuration and the query
    /// spans (frames) expected at serving time: every `span × scale`
    /// window length the matcher would enumerate for those spans, clamped
    /// to `min_window` exactly as the matcher clamps, deduplicated and
    /// sorted.
    pub fn from_matcher(config: &MatcherConfig, query_spans: &[u32]) -> Self {
        let mut lens: Vec<u32> = Vec::new();
        for &span in query_spans {
            for &scale in &config.window_scales {
                let len = ((span as f32 * scale) as u32).max(config.min_window);
                lens.push(len);
            }
        }
        lens.sort_unstable();
        lens.dedup();
        IngestConfig {
            window_lens: lens,
            stride_frac: config.stride_frac,
            min_overlap_frac: config.min_overlap_frac,
            threads: config.threads,
            ann: AnnConfig::default(),
        }
    }
}

/// A dataset's persisted embeddings plus the ANN index probing them.
///
/// The ANN index is rebuilt deterministically at load time — the
/// expensive part of a store is the encoder forwards, which are never
/// repeated; the k-means quantizer over a few thousand small vectors is
/// milliseconds.
pub struct DatasetStore {
    /// The persisted vectors and window metadata.
    pub store: EmbeddingStore,
    /// How many inverted lists a query probes (defaults to the build's
    /// [`AnnConfig::nprobe`]; raise it toward `nlist` to trade speed for
    /// recall, at `nlist` the probe is exhaustive).
    pub nprobe: usize,
    ann: IvfIndex,
}

impl DatasetStore {
    /// Wraps an already-loaded [`EmbeddingStore`], building its ANN index.
    pub fn from_store(store: EmbeddingStore, ann_config: &AnnConfig) -> Self {
        let ann = IvfIndex::build(store.vectors(), store.dim(), ann_config);
        DatasetStore {
            store,
            nprobe: ann_config.nprobe.max(1),
            ann,
        }
    }

    /// Loads a store file and builds its ANN index.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let _span = telemetry::span(names::STORE_LOAD);
        let store = EmbeddingStore::load(path)?;
        Ok(Self::from_store(store, &AnnConfig::default()))
    }

    /// Persists the underlying [`EmbeddingStore`] (the ANN index is
    /// derived state and is not written).
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        self.store.save(path)
    }

    /// Dataset name recorded at ingest.
    pub fn dataset(&self) -> &str {
        &self.store.meta.dataset
    }

    /// Number of lists the ANN index partitioned the vectors into.
    pub fn nlist(&self) -> usize {
        self.ann.nlist()
    }

    /// Whether this store was built from exactly this index's contents.
    pub fn matches_index(&self, index: &VideoIndex) -> bool {
        self.store.meta.frames == index.frames
            && self.store.meta.index_fingerprint == index_fingerprint(index)
    }

    /// Whether this store's vectors came from exactly this model.
    pub fn matches_model(&self, sim: &LearnedSimilarity) -> bool {
        self.store.meta.model_fingerprint == model_fingerprint(sim)
    }
}

/// Builds a [`DatasetStore`] offline: enumerates every sliding window of
/// `index` across `config.window_lens` with the matcher's stride and
/// clamping rules, slices each eligible track into its window segment,
/// embeds the distinct segments through the batched encoder path, and
/// records one row per `(track, start, end)`.
///
/// Segments that produce an empty clip (a track whose frame range brushes
/// a window it has no points in) are skipped — the matcher's embedding
/// cache excludes exactly the same candidates.
pub fn ingest(
    sim: &LearnedSimilarity,
    index: &VideoIndex,
    dataset: &str,
    config: &IngestConfig,
) -> DatasetStore {
    let _span = telemetry::span(names::STORE_BUILD);
    let mut lens = config.window_lens.clone();
    lens.sort_unstable();
    lens.dedup();

    // Enumerate rows exactly as the matcher enumerates candidates: per
    // length, the strided window grid with tail clamping; per window,
    // every class-eligible track in index order. A `(track, start, end)`
    // row is recorded once even when several lengths produce the same
    // clamped window; insertion happens only on qualification so a later
    // length with a laxer overlap floor can still add the tracks the
    // stricter one rejected.
    let mut rows: Vec<StoreRow> = Vec::new();
    let mut clips = Vec::new();
    let mut seen: HashSet<(TrackId, u32, u32)> = HashSet::new();
    for &window in &lens {
        if window == 0 || window > index.frames {
            continue;
        }
        let stride = ((window as f32 * config.stride_frac) as u32).max(1);
        let min_overlap = ((window as f32 * config.min_overlap_frac) as u32).max(1);
        let mut start = 0u32;
        loop {
            let end = (start + window - 1).min(index.frames.saturating_sub(1));
            for t in &index.tracks {
                if !track_overlaps(t, start, end, min_overlap) || seen.contains(&(t.id, start, end))
                {
                    continue;
                }
                let slot: Vec<Vec<&Trajectory>> = vec![vec![t]];
                let clip = window_clip(index, &[0], &slot, start, end);
                if clip.is_empty() {
                    continue;
                }
                seen.insert((t.id, start, end));
                rows.push(StoreRow {
                    track_id: t.id,
                    class: t.class,
                    start,
                    end,
                });
                clips.push(clip);
            }
            if end + 1 >= index.frames {
                break;
            }
            start += stride;
        }
    }

    let embeddings = embed_clips_parallel(sim, &clips, config.threads.max(1));
    let dim = embeddings
        .iter()
        .flatten()
        .next()
        .map_or(sim.encoder.config.embed_dim, Vec::len);
    let meta = StoreMeta {
        dataset: dataset.to_string(),
        model_fingerprint: model_fingerprint(sim),
        index_fingerprint: index_fingerprint(index),
        frames: index.frames,
        fps: index.fps,
        frame_width: index.frame_width,
        frame_height: index.frame_height,
        stride_frac: config.stride_frac,
        min_overlap_frac: config.min_overlap_frac,
        window_lens: lens,
    };
    let mut store = EmbeddingStore::new(meta, dim);
    for (row, embedding) in rows.into_iter().zip(embeddings) {
        // A non-empty single-track clip always embeds (the encoder only
        // rejects empty clips and object-count overflows), but stay
        // defensive: an unembeddable segment is unservable either way.
        if let Some(v) = embedding {
            store.push(row, &v);
        }
    }
    telemetry::counter(names::STORE_VECTORS).add(store.len() as u64);
    DatasetStore::from_store(store, &config.ann)
}

/// Eligibility of a track for a window, matching
/// [`VideoIndex::tracks_in_window`]'s overlap rule.
pub(crate) fn track_overlaps(t: &Trajectory, start: u32, end: u32, min_overlap: u32) -> bool {
    match (t.start_frame(), t.end_frame()) {
        (Some(s), Some(e)) => {
            let lo = s.max(start);
            let hi = e.min(end);
            hi >= lo && (hi - lo + 1) >= min_overlap
        }
        _ => false,
    }
}

/// Outcome of [`Matcher::search_with_store`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSearch {
    /// The retrieved moments (ranked, NMS'd, refined — same pipeline as
    /// the full scan).
    pub moments: Vec<RetrievedMoment>,
    /// Whether the store served the query (`false` = full-scan fallback).
    pub from_store: bool,
    /// Store rows probed and re-ranked (0 on fallback).
    pub probed: u64,
}

impl Matcher<LearnedSimilarity> {
    /// The index-backed search path: embeds the query once, probes
    /// `store`'s ANN index, exactly re-ranks the probed rows, and runs
    /// the usual ranking pipeline. Falls back to
    /// [`search_with_cancel`](Self::search_with_cancel) when the store
    /// cannot serve this query:
    ///
    /// - the query binds more than one object (stores hold single-track
    ///   rows);
    /// - the store's model or index fingerprint differs from the live
    ///   model/index;
    /// - the matcher's stride or overlap fractions differ from the
    ///   store's, or a window length this query derives was not ingested.
    ///
    /// Every moment the store path reports scores bit-identically to the
    /// full scan (the same `score_embedding` over the same vector bits);
    /// probing fewer than all lists can only *omit* windows, never change
    /// a reported score.
    pub fn search_with_store(
        &self,
        index: &VideoIndex,
        store: &DatasetStore,
        query: &sketchql_trajectory::Clip,
        cancel: &CancelToken,
    ) -> Result<StoreSearch, MatchError> {
        self.search_with_store_scoped(index, store, query, cancel, None)
    }

    /// [`search_with_store`](Self::search_with_store) restricted to an
    /// epoch scope: only windows whose **end** frame is at least
    /// `min_end` are considered (the standing-query evaluation range —
    /// a window fires in the epoch that first covers its last frame, so
    /// scoping by end makes epochs partition the windows: no window is
    /// delivered twice, none is skipped). Candidates are filtered
    /// before ranking, so `top_k` applies *within* the scope and scores
    /// stay bit-identical to an unscoped query. On the scan-fallback
    /// path the filter applies to the ranked moments instead (the scan
    /// has no per-window candidate stage), a documented approximation:
    /// top-k there is global.
    pub fn search_with_store_scoped(
        &self,
        index: &VideoIndex,
        store: &DatasetStore,
        query: &sketchql_trajectory::Clip,
        cancel: &CancelToken,
        min_end: Option<u32>,
    ) -> Result<StoreSearch, MatchError> {
        let q_span = query.span();
        if q_span == 0
            || q_span < self.config.min_window
            || query.num_objects() == 0
            || index.frames == 0
        {
            return Ok(StoreSearch {
                moments: Vec::new(),
                from_store: false,
                probed: 0,
            });
        }
        if !self.store_serves(index, store, query, q_span) {
            telemetry::counter(names::STORE_FALLBACKS).inc();
            let moments = self.search_with_cancel(index, query, cancel)?;
            return Ok(StoreSearch {
                moments: scope_moments(moments, min_end),
                from_store: false,
                probed: 0,
            });
        }

        let _search_span = telemetry::span(names::MATCHER_SEARCH);
        cancel.check().map_err(MatchError::from)?;
        let prepared = {
            let _prepare_span = telemetry::span(names::MATCHER_PREPARE);
            self.sim.prepare(query)?
        };
        let PreparedQuery::Embedding(ref qe) = prepared else {
            unreachable!("learned similarity always prepares an embedding");
        };
        let probed = {
            let _probe_span = telemetry::span(names::STORE_PROBE);
            self.probe_rows(store, qe)
        };
        cancel.check().map_err(MatchError::from)?;
        let candidates = scope_candidates(rows_of(store, &probed), min_end);
        self.finish_store_search(index, query, &prepared, candidates, cancel)
    }

    /// [`search_with_store`](Self::search_with_store) for a batch of
    /// concurrent same-dataset queries: every served member's embedding
    /// goes through **one** shared centroid ranking
    /// ([`IvfIndex::probe_batch`](sketchql_store::IvfIndex)) instead of
    /// per-member probes, then each member is exactly re-ranked on its
    /// own. Per-member results (and fallback behavior) are bit-identical
    /// to calling [`search_with_store`](Self::search_with_store) once
    /// per member — the classification, probe ranking, and scoring run
    /// the same code over the same inputs.
    pub fn search_with_store_batch(
        &self,
        index: &VideoIndex,
        store: &DatasetStore,
        queries: &[(&sketchql_trajectory::Clip, &CancelToken)],
    ) -> Vec<Result<StoreSearch, MatchError>> {
        self.search_with_store_batch_scoped(index, store, queries, None)
    }

    /// [`search_with_store_batch`](Self::search_with_store_batch) with
    /// one epoch scope shared by every member (the scheduler only fuses
    /// jobs with equal scopes). See
    /// [`search_with_store_scoped`](Self::search_with_store_scoped) for
    /// the scope semantics.
    pub fn search_with_store_batch_scoped(
        &self,
        index: &VideoIndex,
        store: &DatasetStore,
        queries: &[(&sketchql_trajectory::Clip, &CancelToken)],
        min_end: Option<u32>,
    ) -> Vec<Result<StoreSearch, MatchError>> {
        if queries.len() <= 1 {
            return queries
                .iter()
                .map(|&(q, c)| self.search_with_store_scoped(index, store, q, c, min_end))
                .collect();
        }
        enum Plan {
            Ready(PreparedQuery),
            Done(Result<StoreSearch, MatchError>),
        }
        let _search_span = telemetry::span(names::MATCHER_SEARCH);
        // Pass 1: classify each member exactly as the solo entry point
        // does (empty-result guard, fallback, or prepare-for-probe).
        let plans: Vec<Plan> = queries
            .iter()
            .map(|&(query, cancel)| {
                let q_span = query.span();
                if q_span == 0
                    || q_span < self.config.min_window
                    || query.num_objects() == 0
                    || index.frames == 0
                {
                    return Plan::Done(Ok(StoreSearch {
                        moments: Vec::new(),
                        from_store: false,
                        probed: 0,
                    }));
                }
                if !self.store_serves(index, store, query, q_span) {
                    telemetry::counter(names::STORE_FALLBACKS).inc();
                    return Plan::Done(self.search_with_cancel(index, query, cancel).map(
                        |moments| StoreSearch {
                            moments: scope_moments(moments, min_end),
                            from_store: false,
                            probed: 0,
                        },
                    ));
                }
                match cancel.check().map_err(MatchError::from).and_then(|()| {
                    let _prepare_span = telemetry::span(names::MATCHER_PREPARE);
                    self.sim.prepare(query).map_err(MatchError::from)
                }) {
                    Ok(prepared) => Plan::Ready(prepared),
                    Err(e) => Plan::Done(Err(e)),
                }
            })
            .collect();
        // Pass 2: one shared centroid ranking for every served member.
        let embeddings: Vec<&[f32]> = plans
            .iter()
            .filter_map(|plan| match plan {
                Plan::Ready(PreparedQuery::Embedding(qe)) => Some(qe.as_slice()),
                Plan::Ready(_) => {
                    unreachable!("learned similarity always prepares an embedding")
                }
                Plan::Done(_) => None,
            })
            .collect();
        let probed_all = if embeddings.is_empty() {
            Vec::new()
        } else {
            let _probe_span = telemetry::span(names::STORE_PROBE);
            store.ann.probe_batch(&embeddings, store.nprobe.max(1))
        };
        // Pass 3: exact per-member re-rank, identical to the solo path.
        let mut probe_iter = probed_all.into_iter();
        queries
            .iter()
            .zip(plans)
            .map(|(&(query, cancel), plan)| match plan {
                Plan::Done(result) => result,
                Plan::Ready(prepared) => {
                    let probed = probe_iter.next().expect("one probe per served member");
                    cancel.check().map_err(MatchError::from).and_then(|()| {
                        let candidates = scope_candidates(rows_of(store, &probed), min_end);
                        self.finish_store_search(index, query, &prepared, candidates, cancel)
                    })
                }
            })
            .collect()
    }

    /// Served-path tail shared by every store-backed search — solo,
    /// batched, monolithic, and sharded: window enumeration, exact
    /// re-rank of the probed candidates, and the usual ranking pipeline.
    /// Taking the probed candidates as `(row, vector)` pairs is what
    /// makes the batched and sharded paths bit-identical by
    /// construction: the candidate *source* (one store, many shards)
    /// cannot influence scoring, and the best-per-slot selection below
    /// is insensitive to candidate order (strictly-greater score wins,
    /// ties break on track position).
    pub(crate) fn finish_store_search(
        &self,
        index: &VideoIndex,
        query: &sketchql_trajectory::Clip,
        prepared: &PreparedQuery,
        candidates: Vec<(StoreRow, &[f32])>,
        cancel: &CancelToken,
    ) -> Result<StoreSearch, MatchError> {
        let q_span = query.span();
        let qclass = query.classes()[0];

        let scan_span = telemetry::span(names::MATCHER_SCAN);
        let windows = self.enumerate_windows(q_span, index.frames);
        telemetry::counter(names::WINDOWS_ENUMERATED).add(windows.len() as u64);

        // The overlap floors in play per (start, end) range: clamped tail
        // windows of different lengths can share a range while demanding
        // different floors, and each floor is its own ranking slot.
        let mut by_range: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for &(s, e, o) in &windows {
            by_range.entry((s, e)).or_default().push(o);
        }
        // Track order decides ties exactly as the scan's combination
        // order does (first strictly-greatest wins).
        let track_pos: HashMap<TrackId, usize> = index
            .tracks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, i))
            .collect();
        let track_range: HashMap<TrackId, (u32, u32)> = index
            .tracks
            .iter()
            .filter_map(|t| Some((t.id, (t.start_frame()?, t.end_frame()?))))
            .collect();

        // Best candidate per (start, end, overlap-floor) slot.
        let mut best: HashMap<(u32, u32, u32), (f32, usize, TrackId)> = HashMap::new();
        for (k, &(row, vector)) in candidates.iter().enumerate() {
            if k % 1024 == 1023 {
                cancel.check().map_err(MatchError::from)?;
            }
            if !qclass.matches(&row.class) {
                continue;
            }
            let Some(floors) = by_range.get(&(row.start, row.end)) else {
                continue;
            };
            let Some(&pos) = track_pos.get(&row.track_id) else {
                continue;
            };
            let (ts, te) = track_range[&row.track_id];
            let lo = ts.max(row.start);
            let hi = te.min(row.end);
            let overlap = if hi >= lo { hi - lo + 1 } else { 0 };
            let score = self.sim.score_embedding(prepared, Some(vector));
            let score = if score.is_finite() { score } else { 0.0 };
            for &floor in floors {
                if overlap < floor {
                    continue;
                }
                let slot = best.entry((row.start, row.end, floor)).or_insert((
                    f32::NEG_INFINITY,
                    usize::MAX,
                    0,
                ));
                if score > slot.0 || (score == slot.0 && pos < slot.1) {
                    *slot = (score, pos, row.track_id);
                }
            }
        }

        // Emit in window-enumeration order, the order the scan scores in.
        let mut scored: Vec<RetrievedMoment> = Vec::new();
        for &(s, e, o) in &windows {
            if let Some(&(score, _, track_id)) = best.get(&(s, e, o)) {
                scored.push(RetrievedMoment {
                    start: s,
                    end: e,
                    score,
                    track_ids: vec![track_id],
                });
            }
        }
        telemetry::counter(names::WINDOWS_PRUNED).add((windows.len() - scored.len()) as u64);
        drop(scan_span);

        telemetry::counter(names::STORE_HITS).inc();
        telemetry::counter(names::STORE_PROBED).add(candidates.len() as u64);
        if telemetry::is_enabled() {
            telemetry::histogram(names::STORE_PROBE_ROWS, PROBE_BOUNDS)
                .observe(candidates.len() as f64);
        }
        Ok(StoreSearch {
            moments: self.rank(index, scored),
            from_store: true,
            probed: candidates.len() as u64,
        })
    }

    /// Whether `store` can serve this query over this index with results
    /// the full scan would also produce.
    fn store_serves(
        &self,
        index: &VideoIndex,
        store: &DatasetStore,
        query: &sketchql_trajectory::Clip,
        q_span: u32,
    ) -> bool {
        self.meta_serves(index, &store.store.meta, query, q_span)
    }

    /// [`store_serves`](Self::store_serves) on provenance metadata alone
    /// — the shared eligibility rule for every store tier (a sharded
    /// set's manifest carries the same `StoreMeta` a monolithic file
    /// does).
    pub(crate) fn meta_serves(
        &self,
        index: &VideoIndex,
        meta: &StoreMeta,
        query: &sketchql_trajectory::Clip,
        q_span: u32,
    ) -> bool {
        if query.num_objects() != 1
            || meta.model_fingerprint != model_fingerprint(&self.sim)
            || meta.frames != index.frames
            || meta.index_fingerprint != index_fingerprint(index)
            || meta.stride_frac.to_bits() != self.config.stride_frac.to_bits()
            || meta.min_overlap_frac.to_bits() != self.config.min_overlap_frac.to_bits()
        {
            return false;
        }
        // Every window length this query derives (and that fits the
        // video) must have been ingested.
        self.config.window_scales.iter().all(|&scale| {
            let len = ((q_span as f32 * scale) as u32).max(self.config.min_window);
            len > index.frames || meta.window_lens.contains(&len)
        })
    }

    /// Probes the ANN index, exhaustively when `nprobe` covers every list.
    fn probe_rows(&self, store: &DatasetStore, query_embedding: &[f32]) -> Vec<u32> {
        store.ann.probe(query_embedding, store.nprobe.max(1))
    }
}

/// Materializes probed row ids as the `(row, vector)` candidate pairs
/// [`Matcher::finish_store_search`] scores.
fn rows_of<'a>(store: &'a DatasetStore, probed: &[u32]) -> Vec<(StoreRow, &'a [f32])> {
    probed
        .iter()
        .map(|&id| {
            (
                store.store.row(id as usize),
                store.store.vector(id as usize),
            )
        })
        .collect()
}

/// Restricts store candidates to windows ending at or after `min_end`
/// (the live epoch scope); `None` keeps everything. Applied before
/// ranking, so `top_k` acts within the scope.
pub(crate) fn scope_candidates(
    candidates: Vec<(StoreRow, &[f32])>,
    min_end: Option<u32>,
) -> Vec<(StoreRow, &[f32])> {
    match min_end {
        None => candidates,
        Some(m) => candidates.into_iter().filter(|(r, _)| r.end >= m).collect(),
    }
}

/// Epoch-scope filter for the scan-fallback path, which has no
/// per-window candidate stage: the filter runs over the ranked moments,
/// so top-k there is global (a documented approximation).
pub(crate) fn scope_moments(
    moments: Vec<RetrievedMoment>,
    min_end: Option<u32>,
) -> Vec<RetrievedMoment> {
    match min_end {
        None => moments,
        Some(m) => moments.into_iter().filter(|r| r.end >= m).collect(),
    }
}

/// Filesystem-safe store file name for a dataset, mirroring the session's
/// naming scheme.
pub(crate) fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Extension store files carry inside a store directory.
pub const STORE_EXT: &str = "skstore";

/// Writes one store per dataset into `dir` as `<sanitized-name>.skstore`,
/// suffixing on sanitization collisions. The dataset's real name travels
/// inside the file ([`StoreMeta::dataset`]), so loading never depends on
/// the file name.
pub fn save_store_dir(
    dir: &Path,
    stores: &BTreeMap<String, DatasetStore>,
) -> Result<(), StoreError> {
    let mut used: HashSet<String> = HashSet::new();
    for (name, store) in stores {
        let base = sanitize(name);
        let mut file = format!("{base}.{STORE_EXT}");
        let mut k = 2;
        while !used.insert(file.clone()) {
            file = format!("{base}_{k}.{STORE_EXT}");
            k += 1;
        }
        store.save(&dir.join(file))?;
    }
    Ok(())
}

/// Loads every `.skstore` file under `dir`, keyed by the dataset name
/// recorded in each file. Unreadable or corrupt files are errors — a
/// store directory with a half-written member should fail loudly, not
/// serve a partial set.
pub fn load_store_dir(dir: &Path) -> Result<BTreeMap<String, DatasetStore>, StoreError> {
    let mut out = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == STORE_EXT))
        .collect();
    paths.sort();
    for path in paths {
        let store = DatasetStore::open(&path)?;
        out.insert(store.dataset().to_string(), store);
    }
    Ok(out)
}
