//! The slow-query log: JSON lines for queries worth a second look.
//!
//! Once configured, every finalized trace whose wall time exceeds the
//! threshold — or that ended any way other than
//! [`TraceOutcome::Completed`](crate::TraceOutcome::Completed) (shed,
//! cancelled, deadline-exceeded, failed) — is written as one JSON line
//! carrying the full stage waterfall (see
//! [`QueryTrace::to_json`](crate::QueryTrace::to_json) for the shape).
//! Unconfigured (the default), nothing is written.
//!
//! File-backed sinks can cap their size: past `max_bytes` the file
//! rotates to `<path>.1` (keeping exactly one predecessor, so the disk
//! footprint is bounded at roughly twice the cap) and a fresh file
//! starts at `<path>`.
//!
//! The sink is process-global: the server configures it once at
//! startup (`serve --slow-query-ms N [--slow-query-log PATH
//! [--slow-query-log-max-bytes N]]`).

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::flight::QueryTrace;
use crate::trace::TraceOutcome;

enum SinkWriter {
    /// An arbitrary stream (stderr, a test buffer): never rotated.
    Stream(Box<dyn Write + Send>),
    /// A file we own the path of, optionally size-capped.
    File {
        file: File,
        path: PathBuf,
        max_bytes: Option<u64>,
        written: u64,
    },
}

struct SlowLogSink {
    threshold_nanos: u64,
    writer: SinkWriter,
}

impl SlowLogSink {
    fn write_line(&mut self, line: &str) {
        match &mut self.writer {
            SinkWriter::Stream(w) => {
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            }
            SinkWriter::File {
                file,
                path,
                max_bytes,
                written,
            } => {
                let line_bytes = line.len() as u64 + 1;
                if let Some(cap) = *max_bytes {
                    if *written > 0 && *written + line_bytes > cap.max(1) {
                        // Rotate: current file becomes <path>.1 (clobbering
                        // the previous predecessor), then start fresh.
                        let _ = file.flush();
                        let mut rotated = path.clone().into_os_string();
                        rotated.push(".1");
                        let _ = std::fs::rename(&*path, PathBuf::from(rotated));
                        if let Ok(fresh) = File::create(&*path) {
                            *file = fresh;
                            *written = 0;
                        }
                    }
                }
                let _ = writeln!(file, "{line}");
                let _ = file.flush();
                *written += line_bytes;
            }
        }
    }
}

fn sink() -> &'static Mutex<Option<SlowLogSink>> {
    static SINK: OnceLock<Mutex<Option<SlowLogSink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Routes the slow-query log to `writer`, logging queries slower than
/// `threshold` (and all queries that did not complete normally,
/// regardless of duration). Replaces any previous sink. Stream sinks
/// never rotate; use [`configure_slow_query_log_path_capped`] for a
/// size-capped file.
pub fn configure_slow_query_log(writer: Box<dyn Write + Send>, threshold: Duration) {
    *sink().lock().unwrap() = Some(SlowLogSink {
        threshold_nanos: threshold.as_nanos() as u64,
        writer: SinkWriter::Stream(writer),
    });
}

/// Routes the slow-query log to a file (created or appended to),
/// unbounded.
pub fn configure_slow_query_log_path(path: &Path, threshold: Duration) -> io::Result<()> {
    configure_slow_query_log_path_capped(path, threshold, None)
}

/// Routes the slow-query log to a file (created or appended to). With
/// `max_bytes` set, the file rotates to `<path>.1` once a write would
/// push it past the cap, keeping exactly one predecessor.
pub fn configure_slow_query_log_path_capped(
    path: &Path,
    threshold: Duration,
    max_bytes: Option<u64>,
) -> io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let written = file.metadata().map(|m| m.len()).unwrap_or(0);
    *sink().lock().unwrap() = Some(SlowLogSink {
        threshold_nanos: threshold.as_nanos() as u64,
        writer: SinkWriter::File {
            file,
            path: path.to_path_buf(),
            max_bytes,
            written,
        },
    });
    Ok(())
}

/// Turns the slow-query log off (flushing and dropping the sink).
pub fn disable_slow_query_log() {
    if let Some(mut old) = sink().lock().unwrap().take() {
        match &mut old.writer {
            SinkWriter::Stream(w) => {
                let _ = w.flush();
            }
            SinkWriter::File { file, .. } => {
                let _ = file.flush();
            }
        }
    }
}

/// Offers a finalized trace to the log; writes one JSON line if the
/// trace qualifies. Called from trace finalization.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn observe_trace(trace: &QueryTrace) {
    let mut guard = sink().lock().unwrap();
    let Some(slow) = guard.as_mut() else {
        return;
    };
    let qualifies =
        trace.total_nanos > slow.threshold_nanos || trace.outcome != TraceOutcome::Completed;
    if qualifies {
        slow.write_line(&trace.to_json());
    }
}
