//! Q1 — "a car making a left turn" — across the diverse conditions of the
//! paper's Figure 1: near/far cars, acute/obtuse turn angles, arbitrary
//! initial headings, different camera viewpoints.
//!
//! One sketch, drawn once, is executed against three videos of different
//! scene families; for each we report which ground-truth left turns the
//! top-k results recover, with the learned similarity and a DTW baseline
//! side by side.
//!
//! ```text
//! cargo run --release --example left_turn_q1
//! ```

use sketchql::prelude::*;
use sketchql::ClassicalSimilarity;
use sketchql_datasets::{evaluate_retrieval, EventKind, PredictedMoment, SceneFamily};
use sketchql_trajectory::DistanceKind;

fn main() {
    let model = sketchql_suite::demo_model();
    let mut sq = SketchQL::new(model);

    // Sketch Q1 once (Figure 2's canvas contents).
    let mut sketch = sq.new_sketch();
    let car = sketch
        .create_object(ObjectClass::Car, Point2::new(150.0, 450.0))
        .unwrap();
    sketch.set_mode(MouseMode::Drag);
    sketch
        .drag_object_along(
            car,
            &[
                Point2::new(280.0, 450.0),
                Point2::new(420.0, 448.0),
                Point2::new(555.0, 440.0),
                Point2::new(630.0, 400.0),
                Point2::new(657.0, 320.0),
                Point2::new(661.0, 230.0),
                Point2::new(663.0, 120.0),
            ],
        )
        .unwrap();
    // Stretch the sparse programmatic drag to a realistic duration.
    let seg = sketch.panel().lane(car)[0];
    sketch.stretch_segment(seg, 80).unwrap();
    let query = sketch.compile().expect("Q1 compiles");
    println!(
        "Sketched Q1: car left turn, {} ticks, 1 object\n",
        query.span()
    );

    for (i, family) in SceneFamily::ALL.iter().enumerate() {
        let video = sketchql_suite::demo_video(*family, 20 + i as u64);
        let name = video.name.clone();
        sq.upload_dataset(&name, &video);
        let truth = video.events_of(EventKind::LeftTurn);

        println!(
            "=== dataset {name} ({} frames, {} left turns) ===",
            video.frames,
            truth.len()
        );
        for learned in [true, false] {
            let results = if learned {
                sq.run_sketch(&name, &sketch).unwrap()
            } else {
                sq.run_query_with(&name, &query, ClassicalSimilarity::new(DistanceKind::Dtw))
                    .unwrap()
            };
            let preds: Vec<PredictedMoment> = results
                .iter()
                .map(|m| PredictedMoment {
                    start: m.start,
                    end: m.end,
                    score: m.score,
                })
                .collect();
            let report = evaluate_retrieval(&preds, &truth);
            println!(
                "  {:<9}  P@{}: {:.2}  recall {:.2}  AP {:.2}   top hits: {}",
                if learned { "sketchql" } else { "dtw" },
                report.num_truth,
                report.precision_at_k,
                report.recall,
                report.average_precision,
                results
                    .iter()
                    .take(3)
                    .map(|m| format!("[{}..{} s={:.2}]", m.start, m.end, m.score))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        println!();
    }
    println!("(Expected shape: the learned similarity recovers left turns across");
    println!(" families and viewpoints; the raw-coordinate DTW baseline is less robust.)");
}
