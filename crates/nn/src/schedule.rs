//! Learning-rate schedules.
//!
//! Contrastive training benefits from a short warmup (the NT-Xent loss
//! surface is ill-conditioned around random init) followed by cosine decay.
//! Schedules are pure functions of the step index so training stays
//! deterministic and resumable.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule: maps a 0-based step index to a multiplier on
/// the optimizer's base learning rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant multiplier 1 (the default; matches plain Adam).
    Constant,
    /// Linear warmup from ~0 to 1 over `warmup` steps, then constant.
    Warmup {
        /// Steps to ramp over.
        warmup: usize,
    },
    /// Linear warmup then cosine decay to `floor` at `total` steps.
    WarmupCosine {
        /// Steps to ramp over.
        warmup: usize,
        /// Total steps of the run (decay horizon).
        total: usize,
        /// Final multiplier (e.g. 0.1 keeps 10% of the base LR).
        floor: f32,
    },
    /// Step decay: multiply by `gamma` every `every` steps.
    StepDecay {
        /// Interval between decays.
        every: usize,
        /// Multiplier applied at each interval.
        gamma: f32,
    },
}

impl LrSchedule {
    /// The learning-rate multiplier at `step` (0-based).
    pub fn multiplier(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup } => warmup_mult(step, warmup),
            LrSchedule::WarmupCosine {
                warmup,
                total,
                floor,
            } => {
                let w = warmup_mult(step, warmup);
                if step < warmup || total <= warmup {
                    return w;
                }
                let t = (step - warmup) as f32 / (total - warmup).max(1) as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t.min(1.0)).cos());
                floor + (1.0 - floor) * cos
            }
            LrSchedule::StepDecay { every, gamma } => gamma.powi((step / every.max(1)) as i32),
        }
    }
}

fn warmup_mult(step: usize, warmup: usize) -> f32 {
    if warmup == 0 || step >= warmup {
        1.0
    } else {
        (step + 1) as f32 / warmup as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        for s in [0, 1, 10, 100_000] {
            assert_eq!(LrSchedule::Constant.multiplier(s), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_linearly_then_holds() {
        let sch = LrSchedule::Warmup { warmup: 10 };
        assert!((sch.multiplier(0) - 0.1).abs() < 1e-6);
        assert!((sch.multiplier(4) - 0.5).abs() < 1e-6);
        assert_eq!(sch.multiplier(9), 1.0);
        assert_eq!(sch.multiplier(50), 1.0);
    }

    #[test]
    fn warmup_cosine_decays_to_floor() {
        let sch = LrSchedule::WarmupCosine {
            warmup: 10,
            total: 110,
            floor: 0.1,
        };
        // During warmup: ramping.
        assert!(sch.multiplier(0) < 0.2);
        // Just after warmup: near 1.
        assert!(sch.multiplier(10) > 0.95);
        // Midpoint of decay: roughly halfway between 1 and floor.
        let mid = sch.multiplier(60);
        assert!((mid - 0.55).abs() < 0.05, "mid {mid}");
        // At and beyond the horizon: the floor.
        assert!((sch.multiplier(110) - 0.1).abs() < 1e-4);
        assert!((sch.multiplier(500) - 0.1).abs() < 1e-4);
    }

    #[test]
    fn warmup_cosine_is_monotone_after_warmup() {
        let sch = LrSchedule::WarmupCosine {
            warmup: 5,
            total: 100,
            floor: 0.0,
        };
        let mut prev = f32::INFINITY;
        for s in 5..100 {
            let m = sch.multiplier(s);
            assert!(m <= prev + 1e-6, "not monotone at {s}");
            prev = m;
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let sch = LrSchedule::StepDecay {
            every: 100,
            gamma: 0.5,
        };
        assert_eq!(sch.multiplier(0), 1.0);
        assert_eq!(sch.multiplier(99), 1.0);
        assert_eq!(sch.multiplier(100), 0.5);
        assert_eq!(sch.multiplier(250), 0.25);
    }

    #[test]
    fn degenerate_parameters_are_safe() {
        assert_eq!(LrSchedule::Warmup { warmup: 0 }.multiplier(0), 1.0);
        let sch = LrSchedule::WarmupCosine {
            warmup: 10,
            total: 10,
            floor: 0.2,
        };
        assert_eq!(sch.multiplier(20), 1.0); // total <= warmup: no decay
        assert_eq!(
            LrSchedule::StepDecay {
                every: 0,
                gamma: 0.5
            }
            .multiplier(3),
            0.125
        );
    }
}
