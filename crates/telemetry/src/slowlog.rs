//! The slow-query log: JSON lines for queries worth a second look.
//!
//! Once configured, every finalized trace whose wall time exceeds the
//! threshold — or that ended any way other than
//! [`TraceOutcome::Completed`](crate::TraceOutcome::Completed) (shed,
//! cancelled, deadline-exceeded, failed) — is written as one JSON line
//! carrying the full stage waterfall (see
//! [`QueryTrace::to_json`](crate::QueryTrace::to_json) for the shape).
//! Unconfigured (the default), nothing is written.
//!
//! The sink is process-global: the server configures it once at
//! startup (`serve --slow-query-ms N [--slow-query-log PATH]`).

use std::io::{self, Write};
use std::path::Path;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::flight::QueryTrace;
use crate::trace::TraceOutcome;

struct SlowLogSink {
    threshold_nanos: u64,
    writer: Box<dyn Write + Send>,
}

fn sink() -> &'static Mutex<Option<SlowLogSink>> {
    static SINK: OnceLock<Mutex<Option<SlowLogSink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Routes the slow-query log to `writer`, logging queries slower than
/// `threshold` (and all queries that did not complete normally,
/// regardless of duration). Replaces any previous sink.
pub fn configure_slow_query_log(writer: Box<dyn Write + Send>, threshold: Duration) {
    *sink().lock().unwrap() = Some(SlowLogSink {
        threshold_nanos: threshold.as_nanos() as u64,
        writer,
    });
}

/// Routes the slow-query log to a file (created or appended to).
pub fn configure_slow_query_log_path(path: &Path, threshold: Duration) -> io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    configure_slow_query_log(Box::new(file), threshold);
    Ok(())
}

/// Turns the slow-query log off (flushing and dropping the sink).
pub fn disable_slow_query_log() {
    if let Some(mut old) = sink().lock().unwrap().take() {
        let _ = old.writer.flush();
    }
}

/// Offers a finalized trace to the log; writes one JSON line if the
/// trace qualifies. Called from trace finalization.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn observe_trace(trace: &QueryTrace) {
    let mut guard = sink().lock().unwrap();
    let Some(slow) = guard.as_mut() else {
        return;
    };
    let qualifies =
        trace.total_nanos > slow.threshold_nanos || trace.outcome != TraceOutcome::Completed;
    if qualifies {
        let _ = writeln!(slow.writer, "{}", trace.to_json());
        let _ = slow.writer.flush();
    }
}
