//! Per-object bounding box trajectories.
//!
//! A [`Trajectory`] is one object's time-stamped sequence of bounding boxes,
//! the output of the tracker preprocessing step and the building block of
//! both query clips and video clips.

use crate::bbox::BBox;
use crate::geom::Point2;
use crate::object::{ObjectClass, TrackId};
use serde::{Deserialize, Serialize};

/// A single observation of an object at a frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajPoint {
    /// Frame index within the source video (monotonically increasing).
    pub frame: u32,
    /// The observed bounding box at that frame.
    pub bbox: BBox,
}

impl TrajPoint {
    /// Creates an observation.
    pub fn new(frame: u32, bbox: BBox) -> Self {
        TrajPoint { frame, bbox }
    }
}

/// One object's bounding box trajectory.
///
/// Invariant: points are sorted by frame with strictly increasing frame
/// indices. Constructors enforce this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Track identifier unique within the source video.
    pub id: TrackId,
    /// Object category assigned by the tracker (or the sketcher).
    pub class: ObjectClass,
    points: Vec<TrajPoint>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new(id: TrackId, class: ObjectClass) -> Self {
        Trajectory {
            id,
            class,
            points: Vec::new(),
        }
    }

    /// Creates a trajectory from points, sorting them and dropping duplicate
    /// frames (keeping the last observation for a frame).
    pub fn from_points(id: TrackId, class: ObjectClass, mut pts: Vec<TrajPoint>) -> Self {
        pts.sort_by_key(|p| p.frame);
        pts.dedup_by(|later, earlier| {
            if later.frame == earlier.frame {
                // keep the later observation's bbox
                earlier.bbox = later.bbox;
                true
            } else {
                false
            }
        });
        Trajectory {
            id,
            class,
            points: pts,
        }
    }

    /// Appends an observation; panics in debug builds if frames go backwards.
    pub fn push(&mut self, frame: u32, bbox: BBox) {
        debug_assert!(
            self.points.last().is_none_or(|p| p.frame < frame),
            "frames must be strictly increasing (got {frame} after {:?})",
            self.points.last().map(|p| p.frame)
        );
        self.points.push(TrajPoint::new(frame, bbox));
    }

    /// The underlying observations, sorted by frame.
    #[inline]
    pub fn points(&self) -> &[TrajPoint] {
        &self.points
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First frame index, if any.
    pub fn start_frame(&self) -> Option<u32> {
        self.points.first().map(|p| p.frame)
    }

    /// Last frame index, if any.
    pub fn end_frame(&self) -> Option<u32> {
        self.points.last().map(|p| p.frame)
    }

    /// Number of frames spanned (inclusive), counting gaps.
    pub fn span(&self) -> u32 {
        match (self.start_frame(), self.end_frame()) {
            (Some(s), Some(e)) => e - s + 1,
            _ => 0,
        }
    }

    /// Center path of the trajectory.
    pub fn centers(&self) -> Vec<Point2> {
        self.points.iter().map(|p| p.bbox.center()).collect()
    }

    /// The bounding box observed at `frame`, interpolating linearly across
    /// gaps. Returns `None` outside the trajectory's span.
    pub fn bbox_at(&self, frame: u32) -> Option<BBox> {
        if self.points.is_empty() {
            return None;
        }
        match self.points.binary_search_by_key(&frame, |p| p.frame) {
            Ok(i) => Some(self.points[i].bbox),
            Err(i) => {
                if i == 0 || i == self.points.len() {
                    None
                } else {
                    let a = &self.points[i - 1];
                    let b = &self.points[i];
                    let t = (frame - a.frame) as f32 / (b.frame - a.frame) as f32;
                    Some(a.bbox.lerp(&b.bbox, t))
                }
            }
        }
    }

    /// Extracts the sub-trajectory overlapping `[start, end]` (inclusive),
    /// keeping original frame numbers.
    pub fn slice(&self, start: u32, end: u32) -> Trajectory {
        let pts = self
            .points
            .iter()
            .filter(|p| p.frame >= start && p.frame <= end)
            .copied()
            .collect();
        Trajectory {
            id: self.id,
            class: self.class,
            points: pts,
        }
    }

    /// Shifts all frame numbers so the trajectory starts at `new_start`.
    pub fn rebase(&self, new_start: u32) -> Trajectory {
        let Some(s) = self.start_frame() else {
            return self.clone();
        };
        let pts = self
            .points
            .iter()
            .map(|p| TrajPoint::new(p.frame - s + new_start, p.bbox))
            .collect();
        Trajectory {
            id: self.id,
            class: self.class,
            points: pts,
        }
    }

    /// Total path length of the box centers.
    pub fn path_length(&self) -> f32 {
        self.points
            .windows(2)
            .map(|w| w[0].bbox.center().distance(&w[1].bbox.center()))
            .sum()
    }

    /// Net displacement from first to last center.
    pub fn displacement(&self) -> f32 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => a.bbox.center().distance(&b.bbox.center()),
            _ => 0.0,
        }
    }

    /// Per-step velocity vectors (divided by frame gap so units are
    /// pixels/frame even across gaps). Length is `len() - 1`.
    pub fn velocities(&self) -> Vec<Point2> {
        self.points
            .windows(2)
            .map(|w| {
                let dt = (w[1].frame - w[0].frame).max(1) as f32;
                (w[1].bbox.center() - w[0].bbox.center()) * (1.0 / dt)
            })
            .collect()
    }

    /// Per-step headings in radians; steps with negligible motion inherit
    /// the previous heading (or 0 at the start).
    pub fn headings(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.points.len().saturating_sub(1));
        let mut last = 0.0f32;
        for v in self.velocities() {
            if v.norm() > 1e-4 {
                last = v.angle();
            }
            out.push(last);
        }
        out
    }

    /// Signed total turning (sum of heading changes). Positive is
    /// counter-clockwise in screen coordinates where y grows downward the
    /// sign flips — callers interpret the convention consistently.
    pub fn total_turning(&self) -> f32 {
        let hs = self.headings();
        hs.windows(2)
            .map(|w| crate::geom::wrap_angle(w[1] - w[0]))
            .sum()
    }

    /// Largest frame gap between consecutive observations (1 = no gaps).
    pub fn max_gap(&self) -> u32 {
        self.points
            .windows(2)
            .map(|w| w[1].frame - w[0].frame)
            .max()
            .unwrap_or(0)
    }

    /// Fills frame gaps by linear interpolation so every frame in the span
    /// has an observation.
    pub fn fill_gaps(&self) -> Trajectory {
        let Some(start) = self.start_frame() else {
            return self.clone();
        };
        let end = self.end_frame().unwrap();
        let mut pts = Vec::with_capacity((end - start + 1) as usize);
        for f in start..=end {
            // bbox_at is total within the span
            pts.push(TrajPoint::new(f, self.bbox_at(f).unwrap()));
        }
        Trajectory {
            id: self.id,
            class: self.class,
            points: pts,
        }
    }

    /// Moving-average smoothing of centers and extents with window
    /// `2*radius + 1`. Frames are preserved.
    pub fn smoothed(&self, radius: usize) -> Trajectory {
        if radius == 0 || self.points.len() < 3 {
            return self.clone();
        }
        let n = self.points.len();
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(radius);
            let hi = (i + radius + 1).min(n);
            let k = (hi - lo) as f32;
            let mut cx = 0.0;
            let mut cy = 0.0;
            let mut w = 0.0;
            let mut h = 0.0;
            for p in &self.points[lo..hi] {
                cx += p.bbox.cx;
                cy += p.bbox.cy;
                w += p.bbox.w;
                h += p.bbox.h;
            }
            pts.push(TrajPoint::new(
                self.points[i].frame,
                BBox::new(cx / k, cy / k, w / k, h / k),
            ));
        }
        Trajectory {
            id: self.id,
            class: self.class,
            points: pts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(frames: &[(u32, f32, f32)]) -> Trajectory {
        let pts = frames
            .iter()
            .map(|&(f, x, y)| TrajPoint::new(f, BBox::new(x, y, 2.0, 2.0)))
            .collect();
        Trajectory::from_points(1, ObjectClass::Car, pts)
    }

    #[test]
    fn from_points_sorts_and_dedups() {
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            vec![
                TrajPoint::new(3, BBox::new(3.0, 0.0, 1.0, 1.0)),
                TrajPoint::new(1, BBox::new(1.0, 0.0, 1.0, 1.0)),
                TrajPoint::new(3, BBox::new(9.0, 0.0, 1.0, 1.0)),
            ],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.points()[0].frame, 1);
        assert_eq!(t.points()[1].frame, 3);
        // last observation for frame 3 wins
        assert_eq!(t.points()[1].bbox.cx, 9.0);
    }

    #[test]
    fn span_counts_gaps() {
        let t = traj(&[(10, 0.0, 0.0), (15, 5.0, 0.0)]);
        assert_eq!(t.span(), 6);
        assert_eq!(t.max_gap(), 5);
    }

    #[test]
    fn bbox_at_exact_and_interpolated() {
        let t = traj(&[(0, 0.0, 0.0), (10, 10.0, 20.0)]);
        assert_eq!(t.bbox_at(0).unwrap().cx, 0.0);
        let mid = t.bbox_at(5).unwrap();
        assert!((mid.cx - 5.0).abs() < 1e-6);
        assert!((mid.cy - 10.0).abs() < 1e-6);
        assert!(t.bbox_at(11).is_none());
    }

    #[test]
    fn fill_gaps_produces_dense_track() {
        let t = traj(&[(0, 0.0, 0.0), (4, 4.0, 0.0)]);
        let d = t.fill_gaps();
        assert_eq!(d.len(), 5);
        assert_eq!(d.max_gap(), 1);
        assert!((d.bbox_at(2).unwrap().cx - 2.0).abs() < 1e-6);
    }

    #[test]
    fn slice_keeps_frames_rebase_shifts() {
        let t = traj(&[(5, 0.0, 0.0), (6, 1.0, 0.0), (7, 2.0, 0.0), (8, 3.0, 0.0)]);
        let s = t.slice(6, 7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.start_frame(), Some(6));
        let r = s.rebase(0);
        assert_eq!(r.start_frame(), Some(0));
        assert_eq!(r.end_frame(), Some(1));
    }

    #[test]
    fn path_length_vs_displacement() {
        // Right 10 then back left 10: path 20, displacement 0.
        let t = traj(&[(0, 0.0, 0.0), (1, 10.0, 0.0), (2, 0.0, 0.0)]);
        assert!((t.path_length() - 20.0).abs() < 1e-5);
        assert!(t.displacement() < 1e-6);
    }

    #[test]
    fn velocities_account_for_gaps() {
        let t = traj(&[(0, 0.0, 0.0), (4, 8.0, 0.0)]);
        let v = t.velocities();
        assert_eq!(v.len(), 1);
        assert!((v[0].x - 2.0).abs() < 1e-6);
    }

    #[test]
    fn total_turning_quarter_turn() {
        // Move +x then +y: one 90 degree heading change.
        let t = traj(&[(0, 0.0, 0.0), (1, 1.0, 0.0), (2, 1.0, 1.0)]);
        assert!((t.total_turning().abs() - std::f32::consts::FRAC_PI_2).abs() < 1e-4);
    }

    #[test]
    fn headings_inherit_on_stationary_steps() {
        let t = traj(&[(0, 0.0, 0.0), (1, 1.0, 0.0), (2, 1.0, 0.0)]);
        let h = t.headings();
        assert_eq!(h.len(), 2);
        assert!((h[0] - 0.0).abs() < 1e-6);
        assert!((h[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn smoothing_reduces_jitter() {
        let mut pts = Vec::new();
        for f in 0..20u32 {
            let jitter = if f % 2 == 0 { 1.0 } else { -1.0 };
            pts.push(TrajPoint::new(f, BBox::new(f as f32, jitter, 2.0, 2.0)));
        }
        let t = Trajectory::from_points(1, ObjectClass::Car, pts);
        let s = t.smoothed(2);
        let max_y = s
            .points()
            .iter()
            .map(|p| p.bbox.cy.abs())
            .fold(0.0f32, f32::max);
        assert!(max_y < 0.5, "smoothed jitter should shrink, got {max_y}");
        assert_eq!(s.len(), t.len());
    }

    #[test]
    fn empty_trajectory_is_safe() {
        let t = Trajectory::new(1, ObjectClass::Person);
        assert!(t.is_empty());
        assert_eq!(t.span(), 0);
        assert_eq!(t.bbox_at(0), None);
        assert_eq!(t.path_length(), 0.0);
        assert!(t.fill_gaps().is_empty());
    }
}
