#!/usr/bin/env bash
# End-to-end tracing smoke: serve with the observability side channels
# on, run a query, and verify every output the tracing layer promises —
# the client-visible trace id, a flight-recorder span tree covering
# queue wait / embed / probe-or-scan / rank, the Prometheus scrape
# endpoint (including the queue-wait and fused-batch-size series), and
# the slow-query log.
#
#   scripts/smoke_trace.sh                     # uses target/release
#   SKETCHQL_CLI=target/debug/sketchql-cli scripts/smoke_trace.sh
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${SKETCHQL_CLI:-target/release/sketchql-cli}"
ADDR="${SKETCHQL_TRACE_SMOKE_ADDR:-127.0.0.1:17879}"
METRICS_ADDR="${SKETCHQL_TRACE_SMOKE_METRICS_ADDR:-127.0.0.1:17989}"
METRICS_HOST="${METRICS_ADDR%:*}"
METRICS_PORT="${METRICS_ADDR##*:}"
if [ ! -x "$CLI" ]; then
    echo "missing $CLI (run cargo build --release first)" >&2
    exit 2
fi

work="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== trace smoke: fixtures"
"$CLI" generate --out "$work/video.json" --events 1 --distractors 2 --seed 3 >/dev/null
"$CLI" train --out "$work/model.json" --steps 20 >/dev/null

echo "== trace smoke: serve on $ADDR (metrics on $METRICS_ADDR)"
"$CLI" serve --model "$work/model.json" --videos "traffic=$work/video.json" \
    --addr "$ADDR" --workers 2 --oracle-tracks \
    --metrics-addr "$METRICS_ADDR" \
    --slow-query-ms 0 --slow-query-log "$work/slow.jsonl" \
    >"$work/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    grep -q "serving on" "$work/serve.log" 2>/dev/null && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log" >&2; exit 1; }
    sleep 0.1
done

echo "== trace smoke: query and capture the trace id"
"$CLI" client --addr "$ADDR" --action query \
    --dataset traffic --event left_turn --top-k 3 --deadline-ms 30000 \
    | tee "$work/query.out"
trace_id="$(sed -n 's/.*trace \([0-9a-f]\{12\}\)).*/\1/p' "$work/query.out")"
if [ -z "$trace_id" ]; then
    echo "query output did not include a trace id" >&2
    exit 1
fi

echo "== trace smoke: fetch the span tree for trace $trace_id"
"$CLI" client --addr "$ADDR" --action trace --trace-id "$trace_id" \
    | tee "$work/trace.out"
grep -q "trace $trace_id" "$work/trace.out" \
    || { echo "flight recorder did not return trace $trace_id" >&2; exit 1; }
for span in \
    sketchql.server.queue_wait \
    sketchql.server.execute \
    sketchql.matcher.search \
    sketchql.matcher.embed \
    sketchql.matcher.rank; do
    grep -q "$span" "$work/trace.out" \
        || { echo "span tree is missing $span" >&2; exit 1; }
done
# The dataset has no ingested store, so the scan stage must appear (a
# store-backed dataset would show sketchql.store.probe instead).
grep -Eq "sketchql\.(matcher\.scan|store\.probe)" "$work/trace.out" \
    || { echo "span tree has neither a scan nor a store probe stage" >&2; exit 1; }

echo "== trace smoke: scrape $METRICS_ADDR"
exec 3<>"/dev/tcp/$METRICS_HOST/$METRICS_PORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 >"$work/scrape.out"
exec 3<&- 3>&-
head -1 "$work/scrape.out" | grep -q "200 OK" \
    || { echo "scrape endpoint did not answer 200" >&2; head -5 "$work/scrape.out" >&2; exit 1; }
for series in \
    sketchql_server_queue_wait_ms_bucket \
    sketchql_server_fused_batch_size \
    sketchql_server_queue_depth \
    sketchql_server_queries_completed; do
    grep -q "$series" "$work/scrape.out" \
        || { echo "scrape output is missing $series" >&2; exit 1; }
done

echo "== trace smoke: slow-query log (threshold 0 logs every query)"
grep -q "$trace_id" "$work/slow.jsonl" \
    || { echo "slow-query log is missing trace $trace_id" >&2; cat "$work/slow.jsonl" >&2; exit 1; }

"$CLI" client --addr "$ADDR" --action metrics | grep -q sketchql_server_requests \
    || { echo "wire metrics request failed" >&2; exit 1; }

"$CLI" client --addr "$ADDR" --action shutdown
for _ in $(seq 1 50); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "serve did not exit after wire shutdown" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
serve_pid=""

echo "ok: trace smoke passed"
