#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the tier-1 verify.
#
#   scripts/check.sh
#
# Run before sending a change. Mirrors what CI would run; everything is
# offline (the workspace vendors its dependencies under compat/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== feature check: telemetry disabled still builds and tests"
cargo build --release --no-default-features
cargo test -q --no-default-features

echo "ok: all checks passed"
