//! A minimal read-only memory-map wrapper.
//!
//! Shards are mapped, not read: attaching a sharded store touches only
//! headers, and the kernel pages vector data in on first probe. This is
//! the one place in the workspace that calls `mmap` directly — no
//! external crate, just the two libc symbols declared here (the process
//! already links libc on every supported unix target).
//!
//! Safety model: the mapping is `PROT_READ` + `MAP_PRIVATE` over a file
//! we opened, and the length is captured at map time. The [`Mmap`] owns
//! the mapping for its whole lifetime (`munmap` on drop), hands out only
//! `&[u8]`, and is `Send + Sync` because the pages are never written
//! through it. A concurrent writer truncating the file can still fault a
//! reader — the store layout prevents that by writing shards atomically
//! (temp file + rename) and never mutating them in place.
//!
//! Non-unix targets (and empty files, for which `mmap` is ill-defined)
//! fall back to reading the file into an owned buffer; callers see the
//! same `&[u8]` either way.

use std::fs::File;
use std::io::Read;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only byte view of a file, memory-mapped where the platform
/// allows and heap-backed otherwise. Deref to `&[u8]`.
#[derive(Debug)]
pub struct Mmap {
    state: State,
}

#[derive(Debug)]
enum State {
    /// A live `mmap` region: base pointer + mapped length.
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// Owned fallback (empty files, non-unix targets, or `mmap` failure).
    Owned(Vec<u8>),
}

// SAFETY: the mapping is read-only for its whole lifetime; `&[u8]` views
// of immutable pages are safe to share and send across threads.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only. The returned view is valid for the life of
    /// the `Mmap` even if the `File` used to create it is closed.
    pub fn open(path: &Path) -> std::io::Result<Mmap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
        })?;
        if len == 0 {
            return Ok(Mmap {
                state: State::Owned(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open file descriptor; len is the
            // file's current size and non-zero; PROT_READ + MAP_PRIVATE
            // asks for a read-only private view, so no aliasing with any
            // Rust-visible mutable state is possible.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(Mmap {
                    state: State::Mapped {
                        ptr: ptr as *mut u8,
                        len,
                    },
                });
            }
            // Fall through to the owned read on mmap failure (e.g. a
            // filesystem that refuses mapping); correctness is identical.
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            state: State::Owned(buf),
        })
    }

    /// The mapped (or read) bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.state {
            #[cfg(unix)]
            // SAFETY: ptr/len came from a successful mmap that lives
            // until drop; pages are read-only.
            State::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            State::Owned(v) => v,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        match &self.state {
            #[cfg(unix)]
            State::Mapped { len, .. } => *len,
            State::Owned(v) => v.len(),
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes are actually memory-mapped (`false` = owned
    /// fallback). Telemetry uses this to report bytes mapped honestly.
    pub fn is_mapped(&self) -> bool {
        match &self.state {
            #[cfg(unix)]
            State::Mapped { .. } => true,
            State::Owned(_) => false,
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let State::Mapped { ptr, len } = self.state {
            // SAFETY: ptr/len are exactly what mmap returned; the region
            // is unmapped once, here, and no view outlives self.
            unsafe {
                sys::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("skql-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn mapped_bytes_equal_file_contents() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("cycle.bin", &data);
        let map = Mmap::open(&path).unwrap();
        assert_eq!(&*map, &data[..]);
        assert_eq!(map.len(), data.len());
        assert!(!map.is_empty());
    }

    #[test]
    fn empty_file_maps_to_empty_view() {
        let path = temp_file("empty.bin", &[]);
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(&*map, &[] as &[u8]);
        assert!(!map.is_mapped());
    }

    #[test]
    fn view_survives_source_file_handle() {
        // Mmap::open's File is dropped before we read; the mapping (or
        // owned buffer) must remain valid.
        let data = b"still readable after close".to_vec();
        let path = temp_file("close.bin", &data);
        let map = Mmap::open(&path).unwrap();
        assert_eq!(&*map, &data[..]);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Mmap::open(Path::new("/definitely/not/here.bin")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn many_maps_drop_cleanly() {
        // Exercise map + unmap in a loop so a leaked mapping (or a bad
        // munmap length) would blow up under any leak checking and keeps
        // the address space bounded.
        let data: Vec<u8> = vec![7u8; 4096 * 3 + 17];
        let path = temp_file("loop.bin", &data);
        for _ in 0..64 {
            let map = Mmap::open(&path).unwrap();
            assert_eq!(map.len(), data.len());
            assert_eq!(map[4096], 7);
        }
    }

    #[cfg(unix)]
    #[test]
    fn unix_maps_are_real_mappings() {
        let path = temp_file("real.bin", &[1, 2, 3, 4]);
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_mapped());
    }
}
