//! Constant-velocity Kalman filter over bounding boxes, following the
//! state parameterization used by SORT/ByteTrack: the state is
//! `[cx, cy, a, h, vcx, vcy, va, vh]` where `a` is the aspect ratio `w/h`
//! and `h` the box height; the measurement is `[cx, cy, a, h]`.

// Index arithmetic is clearer than iterator adapters in these numeric
// kernels.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};
use sketchql_trajectory::BBox;

const DIM: usize = 8;
const MEAS: usize = 4;

/// Standard-deviation weights relative to box height (ByteTrack defaults).
const STD_WEIGHT_POSITION: f32 = 1.0 / 20.0;
const STD_WEIGHT_VELOCITY: f32 = 1.0 / 160.0;

type Mat8 = [[f32; DIM]; DIM];
type Vec8 = [f32; DIM];

fn mat_identity() -> Mat8 {
    let mut m = [[0.0; DIM]; DIM];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

fn mat_mul(a: &Mat8, b: &Mat8) -> Mat8 {
    let mut out = [[0.0; DIM]; DIM];
    for i in 0..DIM {
        for k in 0..DIM {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..DIM {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

fn mat_vec(a: &Mat8, v: &Vec8) -> Vec8 {
    let mut out = [0.0; DIM];
    for i in 0..DIM {
        for j in 0..DIM {
            out[i] += a[i][j] * v[j];
        }
    }
    out
}

fn transpose(a: &Mat8) -> Mat8 {
    let mut out = [[0.0; DIM]; DIM];
    for i in 0..DIM {
        for j in 0..DIM {
            out[j][i] = a[i][j];
        }
    }
    out
}

/// Inverts a 4x4 symmetric positive-definite matrix via Cholesky.
fn inv4(s: &[[f32; MEAS]; MEAS]) -> [[f32; MEAS]; MEAS] {
    // Cholesky decomposition S = L L^T.
    let mut l = [[0.0f32; MEAS]; MEAS];
    for i in 0..MEAS {
        for j in 0..=i {
            let mut sum = s[i][j];
            for k in 0..j {
                sum -= l[i][k] * l[j][k];
            }
            if i == j {
                l[i][j] = sum.max(1e-12).sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    // Invert L (lower triangular).
    let mut li = [[0.0f32; MEAS]; MEAS];
    for i in 0..MEAS {
        li[i][i] = 1.0 / l[i][i];
        for j in 0..i {
            let mut sum = 0.0;
            for k in j..i {
                sum -= l[i][k] * li[k][j];
            }
            li[i][j] = sum / l[i][i];
        }
    }
    // S^-1 = L^-T L^-1.
    let mut out = [[0.0f32; MEAS]; MEAS];
    for i in 0..MEAS {
        for j in 0..MEAS {
            let mut sum = 0.0;
            for k in 0..MEAS {
                sum += li[k][i] * li[k][j];
            }
            out[i][j] = sum;
        }
    }
    out
}

/// A constant-velocity Kalman filter tracking one bounding box.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KalmanBoxTracker {
    mean: Vec8,
    covariance: Mat8,
}

fn measurement_of(bbox: &BBox) -> [f32; MEAS] {
    [bbox.cx, bbox.cy, bbox.aspect(), bbox.h]
}

fn bbox_of(mean: &Vec8) -> BBox {
    let h = mean[3].max(1e-3);
    let a = mean[2].max(1e-3);
    BBox::new(mean[0], mean[1], a * h, h)
}

impl KalmanBoxTracker {
    /// Initializes the filter from a first measurement.
    pub fn new(bbox: &BBox) -> Self {
        let z = measurement_of(bbox);
        let mut mean = [0.0; DIM];
        mean[..MEAS].copy_from_slice(&z);
        let h = bbox.h.max(1.0);
        let mut covariance = [[0.0; DIM]; DIM];
        let stds = [
            2.0 * STD_WEIGHT_POSITION * h,
            2.0 * STD_WEIGHT_POSITION * h,
            1e-2,
            2.0 * STD_WEIGHT_POSITION * h,
            10.0 * STD_WEIGHT_VELOCITY * h,
            10.0 * STD_WEIGHT_VELOCITY * h,
            1e-5,
            10.0 * STD_WEIGHT_VELOCITY * h,
        ];
        for i in 0..DIM {
            covariance[i][i] = stds[i] * stds[i];
        }
        KalmanBoxTracker { mean, covariance }
    }

    /// Time update: advances the state one frame under constant velocity.
    pub fn predict(&mut self) {
        // F = I with dt=1 coupling position to velocity.
        let mut f = mat_identity();
        for i in 0..MEAS {
            f[i][i + MEAS] = 1.0;
        }
        self.mean = mat_vec(&f, &self.mean);
        let h = self.mean[3].max(1.0);
        let mut q = [[0.0; DIM]; DIM];
        let stds = [
            STD_WEIGHT_POSITION * h,
            STD_WEIGHT_POSITION * h,
            1e-2,
            STD_WEIGHT_POSITION * h,
            STD_WEIGHT_VELOCITY * h,
            STD_WEIGHT_VELOCITY * h,
            1e-5,
            STD_WEIGHT_VELOCITY * h,
        ];
        for i in 0..DIM {
            q[i][i] = stds[i] * stds[i];
        }
        let fp = mat_mul(&f, &self.covariance);
        let mut p = mat_mul(&fp, &transpose(&f));
        for i in 0..DIM {
            for j in 0..DIM {
                p[i][j] += q[i][j];
            }
        }
        self.covariance = p;
    }

    /// Measurement update with an observed box.
    pub fn update(&mut self, bbox: &BBox) {
        let z = measurement_of(bbox);
        let h_meas = self.mean[3].max(1.0);
        // Measurement noise R.
        let r_stds = [
            STD_WEIGHT_POSITION * h_meas,
            STD_WEIGHT_POSITION * h_meas,
            1e-1,
            STD_WEIGHT_POSITION * h_meas,
        ];
        // Innovation covariance S = H P H^T + R (H selects first 4 dims).
        let mut s = [[0.0f32; MEAS]; MEAS];
        for i in 0..MEAS {
            for j in 0..MEAS {
                s[i][j] = self.covariance[i][j];
            }
            s[i][i] += r_stds[i] * r_stds[i];
        }
        let s_inv = inv4(&s);
        // Kalman gain K = P H^T S^-1 (DIM x MEAS).
        let mut k = [[0.0f32; MEAS]; DIM];
        for i in 0..DIM {
            for j in 0..MEAS {
                let mut sum = 0.0;
                for m in 0..MEAS {
                    sum += self.covariance[i][m] * s_inv[m][j];
                }
                k[i][j] = sum;
            }
        }
        // Innovation y = z - H x.
        let mut y = [0.0f32; MEAS];
        for i in 0..MEAS {
            y[i] = z[i] - self.mean[i];
        }
        // State update.
        for i in 0..DIM {
            for j in 0..MEAS {
                self.mean[i] += k[i][j] * y[j];
            }
        }
        // Covariance update P = (I - K H) P.
        let mut ikh = mat_identity();
        for i in 0..DIM {
            for j in 0..MEAS {
                ikh[i][j] -= k[i][j];
            }
        }
        self.covariance = mat_mul(&ikh, &self.covariance);
    }

    /// The current state as a bounding box.
    pub fn bbox(&self) -> BBox {
        bbox_of(&self.mean)
    }

    /// Estimated center velocity (px/frame).
    pub fn velocity(&self) -> (f32, f32) {
        (self.mean[4], self.mean[5])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_reproduces_measurement() {
        let b = BBox::new(100.0, 50.0, 40.0, 20.0);
        let kf = KalmanBoxTracker::new(&b);
        let out = kf.bbox();
        assert!((out.cx - 100.0).abs() < 1e-3);
        assert!((out.cy - 50.0).abs() < 1e-3);
        assert!((out.w - 40.0).abs() < 1e-2);
        assert!((out.h - 20.0).abs() < 1e-3);
    }

    #[test]
    fn tracks_constant_velocity_motion() {
        let mut kf = KalmanBoxTracker::new(&BBox::new(0.0, 0.0, 40.0, 20.0));
        // Feed measurements moving +3 px/frame in x.
        for f in 1..40 {
            kf.predict();
            kf.update(&BBox::new(f as f32 * 3.0, 0.0, 40.0, 20.0));
        }
        // After convergence, prediction should anticipate motion.
        kf.predict();
        let pred = kf.bbox();
        assert!((pred.cx - 40.0 * 3.0).abs() < 1.5, "predicted {}", pred.cx);
        let (vx, vy) = kf.velocity();
        assert!((vx - 3.0).abs() < 0.5, "vx {vx}");
        assert!(vy.abs() < 0.5);
    }

    #[test]
    fn coasting_continues_along_velocity() {
        let mut kf = KalmanBoxTracker::new(&BBox::new(0.0, 0.0, 40.0, 20.0));
        for f in 1..30 {
            kf.predict();
            kf.update(&BBox::new(f as f32 * 2.0, f as f32, 40.0, 20.0));
        }
        let before = kf.bbox();
        // Coast 5 frames with no measurements.
        for _ in 0..5 {
            kf.predict();
        }
        let after = kf.bbox();
        assert!(after.cx > before.cx + 5.0, "should keep moving in x");
        assert!(after.cy > before.cy + 2.0, "should keep moving in y");
    }

    #[test]
    fn update_pulls_state_toward_measurement() {
        let mut kf = KalmanBoxTracker::new(&BBox::new(0.0, 0.0, 40.0, 20.0));
        kf.predict();
        kf.update(&BBox::new(10.0, 0.0, 40.0, 20.0));
        let b = kf.bbox();
        assert!(b.cx > 0.5 && b.cx <= 10.0, "cx {}", b.cx);
    }

    #[test]
    fn noisy_measurements_are_smoothed() {
        let mut kf = KalmanBoxTracker::new(&BBox::new(0.0, 0.0, 40.0, 20.0));
        // Alternate +/- 5 px noise around a fixed position.
        let mut estimates = Vec::new();
        for f in 1..60 {
            kf.predict();
            let noise = if f % 2 == 0 { 5.0 } else { -5.0 };
            kf.update(&BBox::new(100.0 + noise, 0.0, 40.0, 20.0));
            estimates.push(kf.bbox().cx);
        }
        // Late estimates should be much closer to 100 than the raw +/-5.
        let late: Vec<f32> = estimates[40..].to_vec();
        for e in late {
            assert!((e - 100.0).abs() < 4.0, "estimate {e}");
        }
    }

    #[test]
    fn aspect_is_preserved() {
        let mut kf = KalmanBoxTracker::new(&BBox::new(0.0, 0.0, 60.0, 20.0));
        for _ in 0..10 {
            kf.predict();
            kf.update(&BBox::new(0.0, 0.0, 60.0, 20.0));
        }
        let b = kf.bbox();
        assert!((b.aspect() - 3.0).abs() < 0.05);
    }

    #[test]
    fn inv4_inverts_spd_matrix() {
        let s = [
            [4.0, 1.0, 0.5, 0.0],
            [1.0, 3.0, 0.2, 0.1],
            [0.5, 0.2, 2.0, 0.3],
            [0.0, 0.1, 0.3, 1.5],
        ];
        let si = inv4(&s);
        // s @ si ≈ I.
        for i in 0..4 {
            for j in 0..4 {
                let mut sum = 0.0;
                for k in 0..4 {
                    sum += s[i][k] * si[k][j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((sum - expect).abs() < 1e-4, "({i},{j}) = {sum}");
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut kf = KalmanBoxTracker::new(&BBox::new(5.0, 6.0, 30.0, 15.0));
        kf.predict();
        kf.update(&BBox::new(6.0, 6.5, 30.0, 15.0));
        let json = serde_json::to_string(&kf).unwrap();
        let back: KalmanBoxTracker = serde_json::from_str(&json).unwrap();
        assert_eq!(kf.bbox(), back.bbox());
    }
}
