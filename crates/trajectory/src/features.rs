//! Feature extraction: turning a [`Clip`] into the token sequence the
//! trajectory encoder consumes.
//!
//! The encoder is a transformer over *time steps*: each token is the
//! concatenation of per-object feature slots for one time step. A slot holds
//! the object's normalized box (cx, cy, w, h), its instantaneous velocity
//! (vx, vy), a signed curvature (the sine of the per-step turn angle, which
//! makes motion chirality — left vs right turns — directly readable), and a
//! presence flag; queries and candidates with fewer objects than
//! [`MAX_OBJECTS`] are zero-padded, which keeps the model's input shape
//! fixed regardless of query arity.

use crate::clip::Clip;
use serde::{Deserialize, Serialize};

/// Maximum number of object slots the encoder supports. The demo paper's
/// queries use one or two objects; we leave headroom for richer events.
pub const MAX_OBJECTS: usize = 4;

/// Features per object slot: cx, cy, w, h, vx, vy, curvature, presence.
pub const SLOT_DIM: usize = 8;

/// Dimension of one time-step token.
pub const TOKEN_DIM: usize = MAX_OBJECTS * SLOT_DIM;

/// Default number of time steps the encoder sees per clip.
pub const DEFAULT_STEPS: usize = 32;

/// A fixed-shape feature tensor extracted from one clip:
/// `steps x TOKEN_DIM`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipFeatures {
    /// Number of time steps (rows).
    pub steps: usize,
    /// Row-major `steps x TOKEN_DIM` data.
    pub data: Vec<f32>,
}

impl ClipFeatures {
    /// One row (time-step token).
    pub fn token(&self, t: usize) -> &[f32] {
        &self.data[t * TOKEN_DIM..(t + 1) * TOKEN_DIM]
    }
}

/// Errors from feature extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatureError {
    /// The clip contains no observations.
    EmptyClip,
    /// The clip has more objects than the encoder supports.
    TooManyObjects {
        /// Number of objects in the clip.
        got: usize,
        /// Supported maximum.
        max: usize,
    },
}

impl std::fmt::Display for FeatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureError::EmptyClip => write!(f, "cannot extract features from an empty clip"),
            FeatureError::TooManyObjects { got, max } => {
                write!(
                    f,
                    "clip has {got} objects but the encoder supports at most {max}"
                )
            }
        }
    }
}

impl std::error::Error for FeatureError {}

/// Extracts encoder features from a clip.
///
/// The clip is canonicalized (normalized to the unit square and resampled to
/// `steps` shared time steps) first, so features are invariant to screen
/// position and apparent size, then per-slot features are emitted. Velocities
/// are first differences of the canonical centers, scaled by the step count
/// so magnitudes are O(1).
pub fn extract_features(clip: &Clip, steps: usize) -> Result<ClipFeatures, FeatureError> {
    if clip.is_empty() {
        return Err(FeatureError::EmptyClip);
    }
    if clip.num_objects() > MAX_OBJECTS {
        return Err(FeatureError::TooManyObjects {
            got: clip.num_objects(),
            max: MAX_OBJECTS,
        });
    }
    let canon = clip.canonical(steps);
    // Canonical slot ordering: objects are assigned to feature slots sorted
    // by class label (stable within a class). Without this, the same event
    // sketched as [person, car] and tracked as [car, person] would land in
    // different slots and embed differently.
    let mut order: Vec<usize> = (0..canon.objects.len()).collect();
    order.sort_by_key(|&i| canon.objects[i].class.label());
    let mut data = vec![0.0f32; steps * TOKEN_DIM];
    for (slot, &obj_idx) in order.iter().enumerate() {
        let traj = &canon.objects[obj_idx];
        let pts = traj.points();
        if pts.is_empty() {
            continue;
        }
        debug_assert_eq!(pts.len(), steps);
        // Velocities: first differences scaled by step count (a traversal
        // of the unit square in one clip gives |v| ~ 1); the last step
        // repeats the previous velocity.
        let mut vel = vec![(0.0f32, 0.0f32); steps];
        for t in 0..steps {
            if t + 1 < steps {
                let a = pts[t].bbox;
                let b = pts[t + 1].bbox;
                vel[t] = (
                    (b.cx - a.cx) * (steps as f32 - 1.0),
                    (b.cy - a.cy) * (steps as f32 - 1.0),
                );
            } else if t > 0 {
                vel[t] = vel[t - 1];
            }
        }
        // Signed curvature: sine of the turn between consecutive motion
        // directions. Steps with negligible motion contribute 0, which
        // keeps the channel quiet for parked objects (whose jitter would
        // otherwise random-walk it).
        let mut curv = vec![0.0f32; steps];
        const MIN_SPEED: f32 = 0.05;
        for t in 1..steps {
            let (ax, ay) = vel[t - 1];
            let (bx, by) = vel[t];
            let na = (ax * ax + ay * ay).sqrt();
            let nb = (bx * bx + by * by).sqrt();
            if na > MIN_SPEED && nb > MIN_SPEED {
                curv[t] = (ax * by - ay * bx) / (na * nb);
            }
        }
        for (t, p) in pts.iter().enumerate() {
            let base = t * TOKEN_DIM + slot * SLOT_DIM;
            let b = p.bbox;
            data[base] = b.cx;
            data[base + 1] = b.cy;
            data[base + 2] = b.w;
            data[base + 3] = b.h;
            data[base + 4] = vel[t].0;
            data[base + 5] = vel[t].1;
            data[base + 6] = curv[t] * 3.0; // amplify the subtle channel
            data[base + 7] = 1.0; // presence
        }
    }
    Ok(ClipFeatures { steps, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;
    use crate::object::ObjectClass;
    use crate::trajectory::{TrajPoint, Trajectory};

    fn line_clip(n_obj: usize) -> Clip {
        let objects = (0..n_obj)
            .map(|k| {
                Trajectory::from_points(
                    k as u64,
                    ObjectClass::Car,
                    (0..20)
                        .map(|f| {
                            TrajPoint::new(f, BBox::new(f as f32 * 5.0, k as f32 * 30.0, 8.0, 8.0))
                        })
                        .collect(),
                )
            })
            .collect();
        Clip::new(200.0, 200.0, objects)
    }

    #[test]
    fn feature_shape() {
        let f = extract_features(&line_clip(2), 16).unwrap();
        assert_eq!(f.steps, 16);
        assert_eq!(f.data.len(), 16 * TOKEN_DIM);
        assert_eq!(f.token(0).len(), TOKEN_DIM);
    }

    #[test]
    fn presence_flags_mark_used_slots() {
        let f = extract_features(&line_clip(2), 8).unwrap();
        for t in 0..8 {
            let tok = f.token(t);
            assert_eq!(tok[7], 1.0, "slot 0 present");
            assert_eq!(tok[SLOT_DIM + 7], 1.0, "slot 1 present");
            assert_eq!(tok[2 * SLOT_DIM + 7], 0.0, "slot 2 empty");
            assert_eq!(tok[3 * SLOT_DIM + 7], 0.0, "slot 3 empty");
        }
    }

    #[test]
    fn padded_slots_are_all_zero() {
        let f = extract_features(&line_clip(1), 8).unwrap();
        for t in 0..8 {
            let tok = f.token(t);
            for v in &tok[SLOT_DIM..] {
                assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn features_are_translation_invariant() {
        let a = line_clip(1);
        let moved = Clip::new(
            1000.0,
            1000.0,
            a.objects
                .iter()
                .map(|t| {
                    let pts = t
                        .points()
                        .iter()
                        .map(|p| {
                            TrajPoint::new(
                                p.frame,
                                p.bbox.translated(crate::geom::Point2::new(300.0, 150.0)),
                            )
                        })
                        .collect();
                    Trajectory::from_points(t.id, t.class, pts)
                })
                .collect(),
        );
        let fa = extract_features(&a, 16).unwrap();
        let fb = extract_features(&moved, 16).unwrap();
        for (x, y) in fa.data.iter().zip(&fb.data) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn velocity_points_along_motion() {
        let f = extract_features(&line_clip(1), 16).unwrap();
        // Motion is +x: vx > 0, vy == 0 throughout.
        for t in 0..15 {
            let tok = f.token(t);
            assert!(tok[4] > 0.0, "vx at {t}");
            assert!(tok[5].abs() < 1e-5, "vy at {t}");
        }
        // Last token repeats previous velocity.
        assert!((f.token(15)[4] - f.token(14)[4]).abs() < 1e-6);
    }

    #[test]
    fn curvature_sign_encodes_chirality() {
        // A quarter turn: right then up (screen y down) = negative cross.
        let mut pts = Vec::new();
        for f in 0..10u32 {
            pts.push(TrajPoint::new(
                f,
                BBox::new(f as f32 * 10.0, 100.0, 8.0, 8.0),
            ));
        }
        for f in 10..20u32 {
            pts.push(TrajPoint::new(
                f,
                BBox::new(90.0, 100.0 - (f - 9) as f32 * 10.0, 8.0, 8.0),
            ));
        }
        let clip = Clip::new(
            200.0,
            200.0,
            vec![Trajectory::from_points(1, ObjectClass::Car, pts)],
        );
        let f = extract_features(&clip, 20).unwrap();
        let total_curv: f32 = (0..20).map(|t| f.token(t)[6]).sum();
        assert!(
            total_curv < -0.5,
            "left-ish screen turn should be negative: {total_curv}"
        );
        // The mirror has opposite sign.
        let fm = extract_features(&clip.mirrored_x(), 20).unwrap();
        let total_mirror: f32 = (0..20).map(|t| fm.token(t)[6]).sum();
        assert!(total_mirror > 0.5, "mirror flips curvature: {total_mirror}");
        assert!((total_curv + total_mirror).abs() < 0.2);
    }

    #[test]
    fn stationary_objects_have_zero_curvature() {
        let pts = (0..12u32)
            .map(|f| TrajPoint::new(f, BBox::new(50.0, 50.0, 8.0, 8.0)))
            .collect();
        let clip = Clip::new(
            100.0,
            100.0,
            vec![Trajectory::from_points(1, ObjectClass::Car, pts)],
        );
        let f = extract_features(&clip, 12).unwrap();
        for t in 0..12 {
            assert_eq!(f.token(t)[6], 0.0);
        }
    }

    #[test]
    fn slot_assignment_is_class_canonical() {
        // The same two-object event listed as [car, person] and
        // [person, car] must produce identical features.
        let car = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..10)
                .map(|f| TrajPoint::new(f, BBox::new(f as f32 * 8.0, 100.0, 40.0, 25.0)))
                .collect(),
        );
        let person = Trajectory::from_points(
            2,
            ObjectClass::Person,
            (0..10)
                .map(|f| TrajPoint::new(f, BBox::new(50.0, f as f32 * 6.0, 15.0, 40.0)))
                .collect(),
        );
        let a = Clip::new(640.0, 480.0, vec![car.clone(), person.clone()]);
        let b = Clip::new(640.0, 480.0, vec![person, car]);
        let fa = extract_features(&a, 8).unwrap();
        let fb = extract_features(&b, 8).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn empty_clip_is_error() {
        let c = Clip::new(10.0, 10.0, vec![]);
        assert_eq!(extract_features(&c, 8), Err(FeatureError::EmptyClip));
    }

    #[test]
    fn too_many_objects_is_error() {
        let c = line_clip(MAX_OBJECTS + 1);
        match extract_features(&c, 8) {
            Err(FeatureError::TooManyObjects { got, max }) => {
                assert_eq!(got, MAX_OBJECTS + 1);
                assert_eq!(max, MAX_OBJECTS);
            }
            other => panic!("expected TooManyObjects, got {other:?}"),
        }
    }
}
