//! Tracking quality metrics (a MOTA-style subset).
//!
//! Used by tests to assert the tracker actually tracks, and by the
//! robustness experiments (T3) to report how much tracking degradation the
//! learned similarity survives.

use sketchql_trajectory::{Clip, Trajectory};

/// Minimum IoU for a tracked box to count as covering a ground-truth box.
pub const MATCH_IOU: f32 = 0.5;

/// Summary of how well a set of tracks reproduces a ground-truth clip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingReport {
    /// Fraction of ground-truth (object, frame) boxes covered by some track.
    pub coverage: f32,
    /// Total identity switches across ground-truth objects (the matched
    /// track id changed between consecutive covered frames).
    pub id_switches: usize,
    /// Sum over ground-truth objects of `(distinct matched tracks - 1)`.
    pub fragmentation: usize,
    /// Fraction of tracked boxes that match some ground-truth box
    /// (1 - false-track rate).
    pub precision: f32,
}

/// Compares tracker output against the ground-truth clip it was derived
/// from.
pub fn evaluate_tracking(truth: &Clip, tracks: &[Trajectory]) -> TrackingReport {
    let mut covered = 0usize;
    let mut total = 0usize;
    let mut id_switches = 0usize;
    let mut fragmentation = 0usize;

    for gt in &truth.objects {
        let mut last_id: Option<u64> = None;
        let mut seen_ids = std::collections::HashSet::new();
        for p in gt.points() {
            total += 1;
            // Best matching track box at this frame.
            let mut best: Option<(u64, f32)> = None;
            for tr in tracks {
                if let Some(bb) = tr.bbox_at(p.frame) {
                    let iou = bb.iou(&p.bbox);
                    if iou >= MATCH_IOU && best.is_none_or(|(_, b)| iou > b) {
                        best = Some((tr.id, iou));
                    }
                }
            }
            if let Some((id, _)) = best {
                covered += 1;
                if let Some(prev) = last_id {
                    if prev != id {
                        id_switches += 1;
                    }
                }
                last_id = Some(id);
                seen_ids.insert(id);
            }
        }
        fragmentation += seen_ids.len().saturating_sub(1);
    }

    // Precision: tracked boxes that correspond to some GT box.
    let mut matched_track_boxes = 0usize;
    let mut total_track_boxes = 0usize;
    for tr in tracks {
        for p in tr.points() {
            total_track_boxes += 1;
            let hit = truth.objects.iter().any(|gt| {
                gt.bbox_at(p.frame)
                    .is_some_and(|bb| bb.iou(&p.bbox) >= MATCH_IOU)
            });
            if hit {
                matched_track_boxes += 1;
            }
        }
    }

    TrackingReport {
        coverage: if total == 0 {
            0.0
        } else {
            covered as f32 / total as f32
        },
        id_switches,
        fragmentation,
        precision: if total_track_boxes == 0 {
            0.0
        } else {
            matched_track_boxes as f32 / total_track_boxes as f32
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchql_trajectory::{BBox, ObjectClass, TrajPoint};

    fn gt_clip() -> Clip {
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..30)
                .map(|f| TrajPoint::new(f, BBox::new(f as f32 * 4.0, 100.0, 40.0, 20.0)))
                .collect(),
        );
        Clip::new(1280.0, 720.0, vec![t])
    }

    #[test]
    fn perfect_tracking_scores_perfectly() {
        let truth = gt_clip();
        let tracks = vec![truth.objects[0].clone()];
        let r = evaluate_tracking(&truth, &tracks);
        assert_eq!(r.coverage, 1.0);
        assert_eq!(r.id_switches, 0);
        assert_eq!(r.fragmentation, 0);
        assert_eq!(r.precision, 1.0);
    }

    #[test]
    fn missing_tracks_lower_coverage() {
        let truth = gt_clip();
        let r = evaluate_tracking(&truth, &[]);
        assert_eq!(r.coverage, 0.0);
    }

    #[test]
    fn split_track_counts_switch_and_fragment() {
        let truth = gt_clip();
        let gt = &truth.objects[0];
        let first = Trajectory::from_points(10, ObjectClass::Car, gt.points()[..15].to_vec());
        let second = Trajectory::from_points(11, ObjectClass::Car, gt.points()[15..].to_vec());
        let r = evaluate_tracking(&truth, &[first, second]);
        assert_eq!(r.coverage, 1.0);
        assert_eq!(r.id_switches, 1);
        assert_eq!(r.fragmentation, 1);
    }

    #[test]
    fn false_tracks_lower_precision() {
        let truth = gt_clip();
        let ghost = Trajectory::from_points(
            99,
            ObjectClass::Car,
            (0..30)
                .map(|f| TrajPoint::new(f, BBox::new(1000.0, 600.0, 40.0, 20.0)))
                .collect(),
        );
        let tracks = vec![truth.objects[0].clone(), ghost];
        let r = evaluate_tracking(&truth, &tracks);
        assert!((r.precision - 0.5).abs() < 1e-5);
        assert_eq!(r.coverage, 1.0);
    }

    #[test]
    fn offset_boxes_below_iou_do_not_count() {
        let truth = gt_clip();
        let shifted = Trajectory::from_points(
            5,
            ObjectClass::Car,
            truth.objects[0]
                .points()
                .iter()
                .map(|p| {
                    TrajPoint::new(
                        p.frame,
                        p.bbox
                            .translated(sketchql_trajectory::Point2::new(35.0, 0.0)),
                    )
                })
                .collect(),
        );
        let r = evaluate_tracking(&truth, &[shifted]);
        assert_eq!(r.coverage, 0.0);
    }
}
