//! The flight recorder: a fixed-size, lock-light ring buffer retaining
//! the last N complete query traces.
//!
//! Always on (capacity is small and writes are one slot-mutex store),
//! so when a query misbehaves in production its trace is already there
//! to fetch — no need to reproduce under instrumentation. The server
//! exposes it through the `Trace` wire request; in-process callers use
//! [`flight_recorder`] directly.
//!
//! Each slot has its own mutex and writers claim slots with one atomic
//! fetch-add, so concurrent workers recording traces never contend on a
//! shared lock (two writers only touch the same mutex when the ring
//! wraps onto a slot mid-read).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::span::SpanRecord;
use crate::trace::TraceOutcome;

/// Traces retained by the global flight recorder by default; override
/// before first use with [`configure_flight_capacity`].
pub const FLIGHT_CAPACITY: usize = 256;

/// An immutable snapshot of one finished query trace.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The trace id minted at the query's origin.
    pub trace_id: u64,
    /// Human-readable label, usually `dataset/query`.
    pub label: String,
    /// How the query ended.
    pub outcome: TraceOutcome,
    /// Fused batch size the query executed under (1 = ran alone).
    pub batch_size: usize,
    /// When the trace started, nanoseconds since the process telemetry
    /// epoch. Span `start_nanos` values share the same epoch, so
    /// `span.start_nanos - trace.start_nanos` is the span's offset into
    /// the query.
    pub start_nanos: u64,
    /// Wall time from trace creation to finalization, nanoseconds.
    pub total_nanos: u64,
    /// Heap bytes allocated inside the query's attribution scopes (all
    /// threads that entered the trace, summed). 0 when the counting
    /// allocator is compiled out.
    pub alloc_bytes: u64,
    /// Heap allocations inside the query's attribution scopes.
    pub alloc_count: u64,
    /// CPU nanoseconds burned inside the query's attribution scopes
    /// (wall-clock upper bound on platforms without a thread CPU clock).
    pub cpu_nanos: u64,
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl QueryTrace {
    /// The spans as `(name, depth, offset_nanos, nanos)` sorted by
    /// start offset — the waterfall view. Offsets are relative to the
    /// trace start (saturating at 0 for spans recorded before it).
    pub fn waterfall(&self) -> Vec<(&'static str, usize, u64, u64)> {
        let mut rows: Vec<_> = self
            .spans
            .iter()
            .map(|s| {
                (
                    s.name,
                    s.depth,
                    s.start_nanos.saturating_sub(self.start_nanos),
                    s.nanos,
                )
            })
            .collect();
        rows.sort_by_key(|&(_, depth, offset, _)| (offset, depth));
        rows
    }
}

struct Slot {
    /// `(sequence, trace)`: the sequence number orders entries across
    /// slots so `recent` can return newest-first after the ring wraps.
    entry: Mutex<Option<(u64, Arc<QueryTrace>)>>,
}

/// Fixed-size ring buffer of finished query traces.
///
/// The global instance behind [`flight_recorder`] serves production;
/// the type is public so tests can hammer a private instance and assert
/// exact retention.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    seq: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder retaining the last `capacity` traces
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity)
                .map(|_| Slot {
                    entry: Mutex::new(None),
                })
                .collect(),
            seq: AtomicU64::new(0),
        }
    }

    /// How many traces this recorder retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces recorded over the recorder's lifetime (not capped
    /// by capacity).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records a finished trace, evicting the oldest entry once the
    /// ring is full.
    pub fn record(&self, trace: Arc<QueryTrace>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.entry.lock().unwrap() = Some((seq, trace));
    }

    /// The most recent traces, newest first, at most `limit`.
    pub fn recent(&self, limit: usize) -> Vec<Arc<QueryTrace>> {
        let mut entries: Vec<(u64, Arc<QueryTrace>)> = self
            .slots
            .iter()
            .filter_map(|s| s.entry.lock().unwrap().clone())
            .collect();
        entries.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
        entries.truncate(limit);
        entries.into_iter().map(|(_, t)| t).collect()
    }

    /// Looks up a retained trace by id (the most recent one, should an
    /// id ever collide).
    pub fn find(&self, trace_id: u64) -> Option<Arc<QueryTrace>> {
        self.slots
            .iter()
            .filter_map(|s| s.entry.lock().unwrap().clone())
            .filter(|(_, t)| t.trace_id == trace_id)
            .max_by_key(|(seq, _)| *seq)
            .map(|(_, t)| t)
    }
}

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

/// Capacity the global recorder will be built with; read exactly once,
/// inside the `get_or_init` closure.
static CONFIGURED_CAPACITY: AtomicUsize = AtomicUsize::new(FLIGHT_CAPACITY);

/// Sets the capacity of the process-wide flight recorder. Must run
/// before the first call to [`flight_recorder`] (directly or through
/// any trace finalization): returns `true` if the configuration took
/// effect, `false` if the recorder already existed (its capacity is
/// then unchanged — the ring cannot be resized while writers hold
/// slots). `capacity` is clamped to a minimum of 1.
pub fn configure_flight_capacity(capacity: usize) -> bool {
    CONFIGURED_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    // Initialization is the only consumer of the configured value; if
    // the recorder is already live the store above changed nothing.
    GLOBAL.get().is_none() && {
        // Re-check under the OnceLock by comparing the built capacity:
        // a racing first-use may have initialized between the check and
        // here, but then it read either the old or the new value — only
        // report success when the live ring matches the request.
        flight_recorder().capacity() == capacity.max(1)
    }
}

/// The process-wide flight recorder ([`FLIGHT_CAPACITY`] traces unless
/// [`configure_flight_capacity`] ran before first use).
pub fn flight_recorder() -> &'static FlightRecorder {
    GLOBAL
        .get_or_init(|| FlightRecorder::with_capacity(CONFIGURED_CAPACITY.load(Ordering::Relaxed)))
}
