//! Clip similarity functions: the learned encoder and classical baselines
//! behind one interface.
//!
//! The Matcher is generic over a [`Similarity`] so experiments can swap the
//! paper's learned similarity against DTW/Fréchet/etc. baselines without
//! touching the search loop. Queries are `prepare`d once (for the learned
//! similarity this embeds the query a single time) and scored against many
//! candidate windows.

use sketchql_nn::{cosine_similarity, ParamStore, TrajectoryEncoder};
use sketchql_telemetry::{self as telemetry, names};
use sketchql_trajectory::{
    clip_distance, distance_to_similarity, extract_features, Clip, DistanceKind,
};
use std::sync::OnceLock;

/// Cached handle for the similarity-eval counter: `score` runs once per
/// candidate combination, so the registry lookup is paid only once per
/// process instead of per call.
fn evals_counter() -> &'static telemetry::Counter {
    static C: OnceLock<&'static telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| telemetry::counter(names::SIMILARITY_EVALS))
}

/// Cached handle for the embedding counter (see [`evals_counter`]).
fn embeds_counter() -> &'static telemetry::Counter {
    static C: OnceLock<&'static telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| telemetry::counter(names::EMBEDDINGS_COMPUTED))
}

/// A prepared (pre-processed) query, produced by [`Similarity::prepare`].
#[derive(Debug, Clone)]
pub enum PreparedQuery {
    /// The query's embedding vector (learned similarity).
    Embedding(Vec<f32>),
    /// The raw query clip (classical distances re-align per candidate).
    Clip(Clip),
}

/// A similarity measure between a visual query and a candidate video clip.
/// Scores are in `[0, 1]`, higher = more similar.
pub trait Similarity: Send + Sync {
    /// Short name used in experiment tables.
    fn name(&self) -> String;

    /// Pre-processes the query once.
    fn prepare(&self, query: &Clip) -> PreparedQuery;

    /// Scores a candidate clip against a prepared query.
    fn score(&self, prepared: &PreparedQuery, candidate: &Clip) -> f32;

    /// Convenience: prepare + score in one call.
    fn score_pair(&self, query: &Clip, candidate: &Clip) -> f32 {
        let p = self.prepare(query);
        self.score(&p, candidate)
    }
}

/// The paper's learned similarity: transformer embeddings + cosine.
pub struct LearnedSimilarity {
    /// The trained encoder (architecture + hyper-parameters).
    pub encoder: TrajectoryEncoder,
    /// The encoder's trained weights.
    pub store: ParamStore,
}

impl LearnedSimilarity {
    /// Wraps a trained encoder.
    pub fn new(encoder: TrajectoryEncoder, store: ParamStore) -> Self {
        LearnedSimilarity { encoder, store }
    }

    /// Embeds a clip into the encoder's unit-norm embedding space.
    /// Returns `None` for clips the feature extractor rejects (empty or
    /// too many objects).
    pub fn embed(&self, clip: &Clip) -> Option<Vec<f32>> {
        let steps = self.encoder.config.steps;
        let feats = extract_features(clip, steps).ok()?;
        let t = sketchql_nn::Tensor::from_vec(steps, feats.data.len() / steps, feats.data);
        embeds_counter().inc();
        Some(self.encoder.embed(&self.store, &t))
    }
}

impl Similarity for LearnedSimilarity {
    fn name(&self) -> String {
        "sketchql".to_string()
    }

    fn prepare(&self, query: &Clip) -> PreparedQuery {
        match self.embed(query) {
            Some(e) => PreparedQuery::Embedding(e),
            None => PreparedQuery::Clip(query.clone()),
        }
    }

    fn score(&self, prepared: &PreparedQuery, candidate: &Clip) -> f32 {
        evals_counter().inc();
        let PreparedQuery::Embedding(qe) = prepared else {
            return 0.0;
        };
        match self.embed(candidate) {
            // Map cosine in [-1, 1] to [0, 1].
            Some(ce) => (cosine_similarity(qe, &ce) + 1.0) * 0.5,
            None => 0.0,
        }
    }
}

/// A classical trajectory-distance baseline lifted to clip similarity.
pub struct ClassicalSimilarity {
    /// Which distance to apply.
    pub kind: DistanceKind,
    /// Scale applied to distances before converting to similarity; the
    /// canonical clips live in the unit square, so distances are O(0.1).
    pub distance_scale: f32,
}

impl ClassicalSimilarity {
    /// A baseline using `kind` with the default distance scale.
    pub fn new(kind: DistanceKind) -> Self {
        ClassicalSimilarity {
            kind,
            distance_scale: 8.0,
        }
    }
}

impl Similarity for ClassicalSimilarity {
    fn name(&self) -> String {
        self.kind.name().to_string()
    }

    fn prepare(&self, query: &Clip) -> PreparedQuery {
        PreparedQuery::Clip(query.clone())
    }

    fn score(&self, prepared: &PreparedQuery, candidate: &Clip) -> f32 {
        evals_counter().inc();
        let PreparedQuery::Clip(q) = prepared else {
            return 0.0;
        };
        let d = clip_distance(self.kind, q, candidate);
        distance_to_similarity(d * self.distance_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketchql_nn::EncoderConfig;
    use sketchql_trajectory::{BBox, ObjectClass, TrajPoint, Trajectory, TOKEN_DIM};

    fn clip_line(slope: f32) -> Clip {
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..24)
                .map(|f| {
                    TrajPoint::new(
                        f,
                        BBox::new(f as f32 * 5.0, 200.0 + f as f32 * slope, 30.0, 20.0),
                    )
                })
                .collect(),
        );
        Clip::new(640.0, 480.0, vec![t])
    }

    fn untrained_learned() -> LearnedSimilarity {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = EncoderConfig {
            input_dim: TOKEN_DIM,
            steps: 16,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut rng, "enc", cfg);
        LearnedSimilarity::new(enc, store)
    }

    #[test]
    fn learned_scores_self_highest() {
        let sim = untrained_learned();
        let a = clip_line(0.0);
        let b = clip_line(8.0);
        let p = sim.prepare(&a);
        let saa = sim.score(&p, &a);
        let sab = sim.score(&p, &b);
        assert!(
            (saa - 1.0).abs() < 1e-4,
            "self-similarity should be 1, got {saa}"
        );
        assert!(sab <= saa + 1e-5);
        assert!((0.0..=1.0).contains(&sab));
    }

    #[test]
    fn learned_handles_empty_candidate() {
        let sim = untrained_learned();
        let p = sim.prepare(&clip_line(0.0));
        let empty = Clip::new(10.0, 10.0, vec![]);
        assert_eq!(sim.score(&p, &empty), 0.0);
    }

    #[test]
    fn classical_scores_self_as_one() {
        for &k in DistanceKind::ALL {
            let sim = ClassicalSimilarity::new(k);
            let a = clip_line(2.0);
            let s = sim.score_pair(&a, &a);
            assert!((s - 1.0).abs() < 1e-3, "{k:?} self-score {s}");
        }
    }

    #[test]
    fn classical_ranks_similar_above_dissimilar() {
        let sim = ClassicalSimilarity::new(DistanceKind::Dtw);
        let straight = clip_line(0.0);
        let nearly_straight = clip_line(0.3);
        let diagonal = clip_line(6.0);
        let p = sim.prepare(&straight);
        assert!(sim.score(&p, &nearly_straight) > sim.score(&p, &diagonal));
    }

    #[test]
    fn arity_mismatch_scores_zero_for_classical() {
        let sim = ClassicalSimilarity::new(DistanceKind::Euclidean);
        let one = clip_line(0.0);
        let two = Clip::new(
            640.0,
            480.0,
            vec![one.objects[0].clone(), one.objects[0].clone()],
        );
        assert_eq!(sim.score_pair(&one, &two), 0.0);
    }

    #[test]
    fn names_are_distinct() {
        let mut names = std::collections::HashSet::new();
        names.insert(untrained_learned().name());
        for &k in DistanceKind::ALL {
            names.insert(ClassicalSimilarity::new(k).name());
        }
        assert_eq!(names.len(), DistanceKind::ALL.len() + 1);
    }
}
