//! Unit-style tests for the telemetry crate, run as an integration test
//! so metrics registered here don't leak into other tests' snapshots.
//!
//! Written to pass in both feature configurations: assertions about
//! observed values are gated on `sketchql_telemetry::is_enabled()`,
//! while API-shape assertions (valid JSON, no panics) always run.

use sketchql_telemetry as tel;
use std::sync::Mutex;

/// Serializes tests that assert on deltas of the shared pipeline
/// counters; without this, parallel tests inflate each other's numbers.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn counters_accumulate_and_reset() {
    let c = tel::counter("test.counters.accumulate");
    let before = c.get();
    c.inc();
    c.add(4);
    if tel::is_enabled() {
        assert_eq!(c.get(), before + 5);
    } else {
        assert_eq!(c.get(), 0);
    }
}

#[test]
fn gauges_hold_last_value() {
    let g = tel::gauge("test.gauges.hold");
    g.set(2.5);
    if tel::is_enabled() {
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    } else {
        assert_eq!(g.get(), 0.0);
    }
}

#[test]
fn histograms_bucket_cumulatively() {
    let h = tel::histogram("test.histograms.buckets", &[1.0, 2.0, 4.0]);
    for v in [0.5, 1.5, 1.6, 3.0, 100.0] {
        h.observe(v);
    }
    if tel::is_enabled() {
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.6).abs() < 1e-9);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (2.0, 3));
        assert_eq!(buckets[2], (4.0, 4));
        assert_eq!(buckets[3].1, 5);
        assert!(buckets[3].0.is_infinite());
    } else {
        assert_eq!(h.count(), 0);
        assert!(h.cumulative_buckets().is_empty());
    }
}

#[test]
fn spans_nest_by_depth() {
    let _ = tel::take_finished_spans();
    {
        let _outer = tel::span("test.spans.outer");
        {
            let _inner = tel::span("test.spans.inner");
            std::hint::black_box(0u64);
        }
    }
    let spans = tel::take_finished_spans();
    if tel::is_enabled() {
        assert_eq!(spans.len(), 2);
        // Completion order: inner finishes first, at depth 1.
        assert_eq!(spans[0].name, "test.spans.inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "test.spans.outer");
        assert_eq!(spans[1].depth, 0);
        assert!(spans[1].nanos >= spans[0].nanos);
    } else {
        assert!(spans.is_empty());
    }
}

#[test]
fn recorder_reports_counter_deltas_and_stages() {
    let _serial = RECORDER_LOCK.lock().unwrap();
    let rec = tel::Recorder::begin();
    tel::counter(tel::names::WINDOWS_ENUMERATED).add(7);
    tel::counter(tel::names::SIMILARITY_EVALS).add(3);
    {
        let _stage = tel::span(tel::names::MATCHER_SCAN);
        std::hint::black_box(0u64);
    }
    let report = rec.finish("unit/query");
    assert_eq!(report.label, "unit/query");
    if tel::is_enabled() {
        assert_eq!(report.windows_enumerated, 7);
        assert_eq!(report.similarity_evals, 3);
        assert_eq!(report.stages().len(), 1);
        assert_eq!(report.stages()[0].0, tel::names::MATCHER_SCAN);
        assert!(report.stage_nanos_sum() > 0);
    } else {
        assert_eq!(report.windows_enumerated, 0);
        assert!(report.stages().is_empty());
    }
}

#[test]
fn recorder_isolates_consecutive_queries() {
    let _serial = RECORDER_LOCK.lock().unwrap();
    let rec1 = tel::Recorder::begin();
    tel::counter(tel::names::EMBEDDINGS_COMPUTED).add(10);
    let r1 = rec1.finish("q1");
    let rec2 = tel::Recorder::begin();
    tel::counter(tel::names::EMBEDDINGS_COMPUTED).add(2);
    let r2 = rec2.finish("q2");
    if tel::is_enabled() {
        assert_eq!(r1.embeddings_computed, 10);
        assert_eq!(r2.embeddings_computed, 2);
    }
}

#[test]
fn json_exports_parse() {
    tel::counter("test.export.hits").add(3);
    tel::gauge("test.export.level").set(0.5);
    tel::histogram("test.export.lat", &[0.1, 1.0]).observe(0.2);

    let snap = tel::snapshot_json();
    let parsed: serde::Value =
        serde_json::from_str(&snap).expect("snapshot_json must be valid JSON");
    let serde::Value::Obj(fields) = &parsed else {
        panic!("snapshot must be a JSON object");
    };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["counters", "gauges", "histograms"]);

    let rec = tel::Recorder::begin();
    tel::counter(tel::names::WINDOWS_ENUMERATED).inc();
    let report = rec.finish("json/check");
    let parsed: serde::Value =
        serde_json::from_str(&report.to_json()).expect("QueryReport::to_json must be valid JSON");
    assert!(matches!(parsed, serde::Value::Obj(_)));
}

#[test]
fn prometheus_export_is_well_formed() {
    tel::counter("test.prom.hits").add(2);
    tel::histogram("test.prom.lat", &[0.5]).observe(0.1);
    let text = tel::snapshot_prometheus();
    if tel::is_enabled() {
        assert!(text.contains("# TYPE test_prom_hits counter"));
        assert!(text.lines().any(|l| l.starts_with("test_prom_hits ")));
        assert!(text.contains("test_prom_lat_bucket{le=\"+Inf\"}"));
        assert!(text.contains("test_prom_lat_sum"));
        assert!(text.contains("test_prom_lat_count"));
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(name, val)| !name.is_empty() && !val.is_empty()),
                "malformed exposition line: {line:?}"
            );
        }
    } else {
        assert!(text.is_empty());
    }
}

#[test]
fn table_renderer_includes_stages_and_counters() {
    let rec = tel::Recorder::begin();
    {
        let _s = tel::span(tel::names::MATCHER_PREPARE);
        std::hint::black_box(0u64);
    }
    tel::counter(tel::names::TOPK_HEAP_OPS).add(5);
    let report = rec.finish("table/check");
    let table = report.render_table();
    assert!(table.contains("query report: table/check"));
    assert!(table.contains(tel::names::TOPK_HEAP_OPS));
    if tel::is_enabled() {
        assert!(table.contains(tel::names::MATCHER_PREPARE));
    }
}
