//! Quickstart: the six-step SketchQL workflow from the demo paper (§3.1,
//! Figure 3) on a synthetic traffic surveillance video.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sketchql::prelude::*;
use sketchql_datasets::{EventKind, SceneFamily};

fn main() {
    // The zero-shot similarity model: trained once on simulator-generated
    // contrastive pairs, cached under target/sketchql-cache/.
    println!("Loading (or training) the zero-shot similarity model...");
    let model = sketchql_suite::demo_model();
    println!(
        "  encoder: {} params, final training loss {:.3}\n",
        model.store.num_scalars(),
        model.loss_history.last().copied().unwrap_or(f32::NAN)
    );
    let mut sq = SketchQL::new(model);

    // Step 1: upload a dataset. Initialization extracts object tracks with
    // the (simulated) detector + ByteTrack tracker.
    println!("Step 1: Upload dataset & initialization");
    let video = sketchql_suite::demo_video(SceneFamily::UrbanIntersection, 7);
    let summary = sq.upload_dataset("traffic", &video);
    println!(
        "  uploaded {:?}: {} frames, {} object tracks extracted\n",
        summary.name, summary.frames, summary.num_tracks
    );

    // Step 2: create a "Car" object on the canvas.
    println!("Step 2: Object creation (square icon -> type 'Car' -> click canvas)");
    let mut sketch = sq.new_sketch();
    let car = sketch
        .create_object(ObjectClass::Car, Point2::new(150.0, 450.0))
        .expect("create mode is the default");
    println!("  placed object #{car} (car) at (150, 450)\n");

    // Step 3: drag the car through a left turn.
    println!("Step 3: Trajectory creation (cursor icon -> drag the car)");
    sketch.set_mode(MouseMode::Drag);
    let seg = sketch
        .drag_object_along(
            car,
            &[
                Point2::new(250.0, 450.0),
                Point2::new(350.0, 450.0),
                Point2::new(450.0, 448.0),
                Point2::new(560.0, 440.0),
                Point2::new(630.0, 400.0),
                Point2::new(655.0, 330.0),
                Point2::new(660.0, 250.0),
                Point2::new(662.0, 160.0),
                Point2::new(663.0, 90.0),
            ],
        )
        .expect("drag mode set");
    println!(
        "  recorded segment #{seg} ({} ticks)\n",
        sketch.segment(seg).unwrap().ticks
    );

    // Step 4: replay ("Open Query") and edit — make the turn a bit faster
    // by shrinking the segment's box on the trajectory panel.
    println!("Step 4: Trajectory editing (Open Query replay, stretch panel box)");
    let frames = sketch.replay().expect("non-empty query");
    println!(
        "  replay animates {} ticks; the sketched motion:",
        frames.len()
    );
    let query_clip = sketch.compile().unwrap();
    println!(
        "{}",
        sketchql_trajectory::render_storyboard(&query_clip, 72, 16)
    );
    sketch.stretch_segment(seg, 60).unwrap();
    println!("  stretched segment to 60 ticks (a brisker left turn)\n");

    // Step 5: run the query.
    println!("Step 5: Query execution (Run)");
    let results = sq.run_sketch("traffic", &sketch).expect("query runs");
    println!("  matcher returned {} moments\n", results.len());

    // Step 6: display the found clips.
    println!("Step 6: Display videos (sorted by similarity score)");
    let views = sq.display("traffic", &results).unwrap();
    let truth: Vec<_> = video.events_of(EventKind::LeftTurn);
    for v in &views {
        let hit = truth
            .iter()
            .any(|t| t.temporal_iou(results[v.rank - 1].start, results[v.rank - 1].end) >= 0.3);
        println!(
            "  #{:<2} frames {:>5}..{:<5} ({:>6.1}s - {:<6.1}s)  score {:.3}  objects {:?}{}",
            v.rank,
            v.start,
            v.end,
            v.start_seconds,
            v.end_seconds,
            v.score,
            v.classes.iter().map(|c| c.label()).collect::<Vec<_>>(),
            if hit {
                "   <-- ground-truth left turn"
            } else {
                ""
            }
        );
    }
    println!(
        "\nGround truth: {} left-turn events at {:?}",
        truth.len(),
        truth.iter().map(|t| (t.start, t.end)).collect::<Vec<_>>()
    );
}
