//! Engine integration with the sharded store tier: attach must stay
//! lazy (no shard resident until traffic arrives), shard-served answers
//! must be byte-identical to a plain (scan-only) engine, and the
//! store-effectiveness counters must attribute sharded hits.

mod common;

use std::collections::BTreeMap;

use sketchql::{ingest_sharded, IngestConfig, MatcherConfig, ShardSet, StoreTier};
use sketchql_datasets::{query_clip, EventKind};
use sketchql_server::{Engine, EngineConfig, QuerySpec};
use sketchql_telemetry::{self as telemetry, names};

use common::{small_index, tiny_model, two_datasets};

/// Single-object events (multi-object sketches always fall back).
const SINGLE_OBJECT: &[EventKind] = &[
    EventKind::LeftTurn,
    EventKind::StopAndGo,
    EventKind::LaneChange,
];

fn spec(dataset: &str, event: EventKind) -> QuerySpec {
    QuerySpec::new(dataset, query_clip(event))
}

/// One test drives the whole lifecycle so the process-wide residency
/// gauge is observed without interference: build a shard set for
/// `alpha`, attach it cold, check nothing is resident, then compare
/// every answer against a plain engine and watch residency rise.
#[test]
fn sharded_engine_is_lazy_and_matches_plain_engine() {
    let model = tiny_model();
    let alpha = small_index(11);
    let spans: Vec<u32> = SINGLE_OBJECT
        .iter()
        .map(|&k| query_clip(k).span())
        .collect();
    let cfg = IngestConfig::from_matcher(&MatcherConfig::default(), &spans);
    let dir = std::env::temp_dir().join(format!("skql-server-shards-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let set = ingest_sharded(
        &model.similarity(),
        &alpha,
        "alpha",
        &cfg,
        25,
        &dir,
        &|_| {},
    )
    .expect("sharded ingest");
    let shard_count = set.shard_count();
    assert!(shard_count > 1, "fixture must produce several shards");
    drop(set);

    // A plain engine answers from the scan — the reference output.
    let plain = Engine::start(model.clone(), two_datasets(), EngineConfig::default());
    let mut expected = Vec::new();
    for &event in SINGLE_OBJECT {
        expected.push((event, plain.execute(spec("alpha", event)).unwrap().moments));
    }
    plain.shutdown();

    // Cold attach: manifest + headers only. Nothing resident yet.
    let mut set = ShardSet::open(&dir).expect("reattach shard set");
    set.nprobe = set.nlist();
    assert_eq!(set.resident_shards(), 0, "attach must not load any shard");
    let resident_before = telemetry::gauge(names::SHARD_RESIDENT).get();
    let mut stores = BTreeMap::new();
    stores.insert("alpha".to_string(), StoreTier::Sharded(set));
    let engine = Engine::start_with_stores(model, two_datasets(), stores, EngineConfig::default());
    assert_eq!(
        engine.stored_datasets(),
        vec!["alpha".to_string()],
        "sharded tier must pass warm validation"
    );
    if telemetry::is_enabled() {
        assert_eq!(
            telemetry::gauge(names::SHARD_RESIDENT).get(),
            resident_before,
            "engine startup must not fault in any shard"
        );
    }

    for (event, want) in &expected {
        let got = engine.execute(spec("alpha", *event)).unwrap();
        assert_eq!(
            &got.moments, want,
            "{event:?}: sharded engine diverged from plain engine"
        );
        for (a, b) in got.moments.iter().zip(want) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
    let stats = engine.stats();
    assert_eq!(
        stats.store_hits,
        SINGLE_OBJECT.len() as u64,
        "every single-object alpha query must be shard-served"
    );
    assert_eq!(stats.store_fallbacks, 0);
    assert!(stats.store_probed > 0);
    if telemetry::is_enabled() {
        assert!(
            telemetry::gauge(names::SHARD_RESIDENT).get() > resident_before,
            "traffic must fault shards in"
        );
    }
    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
