#!/usr/bin/env bash
# Live ingest bench: an incremental `append` of a streamed continuation
# must cost a small fraction of re-ingesting the grown video from
# scratch, and must produce an equivalent shard set — the same multiset
# of shard checksums (filenames differ: appended tails are
# epoch-stamped) and byte-identical query output.
#
# Bars (full mode): append wall time <= $SKETCHQL_LIVE_APPEND_FRAC
# (default 0.20) of the from-scratch sharded ingest, for a ~10% frame
# append. Quick mode uses a smaller base, so the appended fraction is
# larger and check.sh passes a looser time bar. Writes BENCH_live.json.
#
#   scripts/bench_live.sh                               # full samples
#   SKETCHQL_BENCH_QUICK=1 scripts/bench_live.sh        # fast smoke run
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${SKETCHQL_CLI:-target/release/sketchql-cli}"
QUICK="${SKETCHQL_BENCH_QUICK:-0}"
FRAC_MAX="${SKETCHQL_LIVE_APPEND_FRAC:-0.20}"
OUT_JSON="${SKETCHQL_LIVE_BENCH_JSON:-BENCH_live.json}"
if [ ! -x "$CLI" ]; then
    echo "missing $CLI (run cargo build --release first)" >&2
    exit 2
fi

if [ "$QUICK" != 0 ]; then
    BASE_EVENTS=2 SAMPLES=1
else
    BASE_EVENTS=10 SAMPLES=2
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

now_ns() { date +%s%N; }

echo "== live bench: fixtures (base + ~940-frame streamed continuation)"
"$CLI" generate --out "$work/base.json" --events "$BASE_EVENTS" --distractors 8 --seed 5 \
    | tee "$work/gen_base.out"
"$CLI" generate --out "$work/grown.json" --extend "$work/base.json" \
    --events 1 --distractors 2 --seed 11 \
    | tee "$work/gen_grown.out"
"$CLI" train --out "$work/model.json" --steps 20 >/dev/null
base_frames="$(awk '{ print $3 }' "$work/gen_base.out")"
grown_frames="$(awk '{ print $3 }' "$work/gen_grown.out")"

ingest_full() {
    local dir="$1"
    "$CLI" ingest --video "$work/grown.json" --model "$work/model.json" \
        --dataset traffic --store-dir "$dir" --oracle-tracks \
        --shard-frames 64 --threads 4 >/dev/null
}

echo "== live bench: from-scratch sharded ingest of the grown video ($SAMPLES sample(s))"
full_best=""
for i in $(seq 1 "$SAMPLES"); do
    rm -rf "$work/full"
    t0="$(now_ns)"
    ingest_full "$work/full"
    t1="$(now_ns)"
    ns=$((t1 - t0))
    echo "full ingest sample $i: $((ns / 1000000)) ms"
    if [ -z "$full_best" ] || [ "$ns" -lt "$full_best" ]; then full_best=$ns; fi
done

echo "== live bench: ingest the base once, then time incremental appends"
"$CLI" ingest --video "$work/base.json" --model "$work/model.json" \
    --dataset traffic --store-dir "$work/base_store" --oracle-tracks \
    --shard-frames 64 --threads 4 >/dev/null
append_best=""
for i in $(seq 1 "$SAMPLES"); do
    rm -rf "$work/inc"
    cp -r "$work/base_store" "$work/inc"
    t0="$(now_ns)"
    "$CLI" append --video "$work/grown.json" --model "$work/model.json" \
        --dataset traffic --store-dir "$work/inc" --oracle-tracks \
        --threads 4 >/dev/null
    t1="$(now_ns)"
    ns=$((t1 - t0))
    echo "append sample $i: $((ns / 1000000)) ms"
    if [ -z "$append_best" ] || [ "$ns" -lt "$append_best" ]; then append_best=$ns; fi
done

echo "== live bench: append-equivalence (shard grid + query output)"
# Identical shard grid: same frame ranges and row counts per shard.
# (Shard checksums may differ — the coarse quantizer is trained per
# ingest and never retrained on append, so list assignments can vary;
# rows, vectors, and exhaustive-probe query results do not.)
sums() {
    grep -o '"frame_start":[0-9]*,"frame_end":[0-9]*,"rows":[0-9]*' \
        "$work/$1/traffic.skset/manifest.json"
}
sums full > "$work/full.grid"
sums inc > "$work/inc.grid"
[ -s "$work/full.grid" ] || { echo "FAIL: could not read the manifest shard grid" >&2; exit 1; }
diff -u "$work/full.grid" "$work/inc.grid" \
    || { echo "FAIL: appended shard grid differs from from-scratch ingest" >&2; exit 1; }
# Byte-identical ranked output under exhaustive probing (a huge
# --nprobe clamps to every list, removing the only allowed divergence).
for dir in full inc; do
    "$CLI" query --video "$work/grown.json" --model "$work/model.json" \
        --event left_turn --oracle-tracks --store-dir "$work/$dir" \
        --nprobe 1000000 > "$work/$dir.query"
    grep -q "store: index-backed" "$work/$dir.query" \
        || { echo "FAIL: $dir query bypassed the store" >&2; exit 1; }
    grep -E "^[0-9]+ " "$work/$dir.query" > "$work/$dir.rows" || true
    [ -s "$work/$dir.rows" ] || { echo "FAIL: $dir query returned no moments" >&2; exit 1; }
done
diff -u "$work/full.rows" "$work/inc.rows" \
    || { echo "FAIL: query output differs between append and re-ingest" >&2; exit 1; }

awk -v full="$full_best" -v append="$append_best" -v fracmax="$FRAC_MAX" \
    -v basef="$base_frames" -v grownf="$grown_frames" \
    -v quick="$QUICK" -v out="$OUT_JSON" '
    BEGIN {
        appended_frac = (grownf - basef) / grownf
        time_frac = append / full
        printf "appended frames:   %d of %d (%.1f%% of the grown video)\n",
            grownf - basef, grownf, appended_frac * 100
        printf "full re-ingest:    %.1f ms\n", full / 1e6
        printf "incremental append: %.1f ms\n", append / 1e6
        printf "append/full:       %.3f (bar: <=%s)\n", time_frac, fracmax
        printf "{\n" \
               "  \"bench\": \"live_append\",\n" \
               "  \"quick\": %s,\n" \
               "  \"base_frames\": %d,\n" \
               "  \"grown_frames\": %d,\n" \
               "  \"appended_frac\": %.4f,\n" \
               "  \"full_ingest_ns\": %.0f,\n" \
               "  \"append_ns\": %.0f,\n" \
               "  \"append_over_full\": %.4f,\n" \
               "  \"max_frac\": %s,\n" \
               "  \"equivalent\": true\n" \
               "}\n", (quick != 0) ? "true" : "false", basef, grownf, \
               appended_frac, full, append, time_frac, fracmax > out
        printf "wrote %s\n", out
        if (time_frac > fracmax + 0.0) {
            print "FAIL: incremental append too slow relative to re-ingest"
            exit 1
        }
        exit 0
    }
'

echo "ok: live bench passed"
